"""TLS session resumption: tickets, warm revisits, session clearing."""

import numpy as np
import pytest

from repro.h2 import H2ClientSession, H2Server, ServerConfig, \
    TlsClientConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore


@pytest.fixture
def world():
    network = Network(
        loop=EventLoop(),
        # Slow link so the certificate bytes are visible in timings.
        latency=LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                              bandwidth_bpms=50.0)),
    )
    ca = CertificateAuthority("Resume CA", rng=np.random.default_rng(5))
    trust = TrustStore([ca])
    edge = network.add_host(Host("edge", "us", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "us", ["10.9.0.1"]))
    cert = ca.issue("www.example.com", ("www.example.com",))
    server = H2Server(network, edge, ServerConfig(
        chains=[ca.chain_for(cert)],
        serves=["www.example.com"],
    ))
    server.listen_all()

    cache = {}

    def session():
        tls = TlsClientConfig(
            sni="www.example.com", trust_store=trust, authorities=[ca],
            now=network.loop.now, session_cache=cache,
        )
        return H2ClientSession(network, client_host, "10.0.0.1", tls)

    return network, server, session, cache


def connect(network, client):
    client.connect()
    network.loop.run_until_idle()
    assert client.ready, client.failed


class TestResumption:
    def test_first_connection_receives_a_ticket(self, world):
        network, _, session, cache = world
        client = session()
        connect(network, client)
        assert not client.channel.resumed
        assert "www.example.com" in cache

    def test_second_connection_resumes(self, world):
        network, server, session, cache = world
        first = session()
        connect(network, first)
        second = session()
        connect(network, second)
        assert second.channel.resumed
        assert server.ticket_manager.resumptions == 1
        # The chain was restored from the cache, not re-transmitted.
        assert second.leaf_certificate is not None
        assert second.leaf_certificate.covers("www.example.com")

    def test_resumed_handshake_is_faster(self, world):
        network, _, session, _ = world
        first = session()
        start = network.loop.now()
        connect(network, first)
        full_duration = first.connected_at - start

        second = session()
        start = network.loop.now()
        connect(network, second)
        resumed_duration = second.connected_at - start
        # No certificate bytes on the slow link: visibly faster.
        assert resumed_duration < full_duration

    def test_requests_work_on_resumed_connection(self, world):
        network, _, session, _ = world
        first = session()
        connect(network, first)
        second = session()
        responses = []
        second.connect(
            on_ready=lambda: second.request("www.example.com", "/",
                                            responses.append)
        )
        network.loop.run_until_idle()
        assert responses[0].status == 200
        assert second.channel.resumed

    def test_bogus_ticket_falls_back_to_full_handshake(self, world):
        network, server, session, cache = world
        cache["www.example.com"] = ("ticket-99999999", [])
        client = session()
        connect(network, client)
        assert not client.channel.resumed
        assert client.leaf_certificate is not None  # full chain sent

    def test_resumption_disabled_server_issues_no_tickets(self):
        network = Network(
            loop=EventLoop(),
            latency=LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                                  bandwidth_bpms=1e5)),
        )
        ca = CertificateAuthority("NR CA", rng=np.random.default_rng(5))
        trust = TrustStore([ca])
        edge = network.add_host(Host("edge", "us", ["10.0.0.1"]))
        client_host = network.add_host(Host("client", "us",
                                            ["10.9.0.1"]))
        cert = ca.issue("www.example.com", ())
        server = H2Server(network, edge, ServerConfig(
            chains=[ca.chain_for(cert)],
            serves=["www.example.com"],
            enable_resumption=False,
        ))
        server.listen_all()
        cache = {}
        tls = TlsClientConfig(
            sni="www.example.com", trust_store=trust, authorities=[ca],
            now=network.loop.now, session_cache=cache,
        )
        client = H2ClientSession(network, client_host, "10.0.0.1", tls)
        connect(network, client)
        assert cache == {}

    def test_engine_new_session_clears_tickets(self, world):
        from repro.browser import BrowserContext, BrowserEngine, \
            ChromiumPolicy
        from repro.dnssim import AuthoritativeServer, CachingResolver, \
            Zone

        network, _, _, cache = world
        authority = AuthoritativeServer()
        zone = Zone("example.com")
        zone.add_a("www.example.com", ["10.0.0.1"])
        authority.add_zone(zone)
        cache["www.example.com"] = ("ticket-00000001", [])
        context = BrowserContext(
            network=network,
            client_host=network.host("client"),
            resolver=CachingResolver(network.loop, authority),
            trust_store=TrustStore([]),
            authorities=[],
            policy=ChromiumPolicy(),
            tls_session_cache=cache,
        )
        BrowserEngine(context).new_session()
        assert cache == {}
