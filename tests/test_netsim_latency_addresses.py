"""Unit tests for the latency model and address helpers."""

import numpy as np
import pytest

from repro.netsim import AddressAllocator, LatencyModel, LinkSpec, is_valid_ipv4
from repro.netsim.addresses import int_to_ipv4, ipv4_to_int
from repro.netsim.latency import DEFAULT_RTT_MS


class TestLinkSpec:
    def test_valid_spec(self):
        spec = LinkSpec(rtt_ms=20.0, jitter_ms=2.0)
        assert spec.rtt_ms == 20.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rtt_ms": -1.0},
            {"rtt_ms": 10.0, "jitter_ms": -0.1},
            {"rtt_ms": 10.0, "bandwidth_bpms": 0.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)


class TestLatencyModel:
    def test_default_rtt_applies_to_unknown_pairs(self):
        model = LatencyModel()
        assert model.rtt("a", "b") == DEFAULT_RTT_MS

    def test_explicit_link_overrides_default(self):
        model = LatencyModel()
        model.set_link("us", "eu", LinkSpec(rtt_ms=90.0))
        assert model.rtt("us", "eu") == 90.0

    def test_links_are_symmetric(self):
        model = LatencyModel()
        model.set_link("us", "eu", LinkSpec(rtt_ms=90.0))
        assert model.rtt("eu", "us") == 90.0

    def test_one_way_is_half_rtt(self):
        model = LatencyModel()
        model.set_link("a", "b", LinkSpec(rtt_ms=40.0))
        assert model.one_way("a", "b") == 20.0

    def test_jitter_requires_rng(self):
        model = LatencyModel()
        model.set_link("a", "b", LinkSpec(rtt_ms=40.0, jitter_ms=10.0))
        # No RNG: deterministic base value.
        assert model.rtt("a", "b") == 40.0

    def test_jitter_with_rng_stays_in_bounds(self):
        rng = np.random.default_rng(7)
        model = LatencyModel(rng=rng)
        model.set_link("a", "b", LinkSpec(rtt_ms=40.0, jitter_ms=10.0))
        samples = [model.rtt("a", "b") for _ in range(200)]
        assert all(30.0 <= s <= 50.0 for s in samples)
        assert len(set(samples)) > 1

    def test_serialization_delay_scales_with_bytes(self):
        model = LatencyModel(default=LinkSpec(rtt_ms=0.0, bandwidth_bpms=100.0))
        assert model.serialization_delay("a", "b", 1000) == 10.0

    def test_serialization_rejects_negative_size(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.serialization_delay("a", "b", -1)

    def test_transfer_delay_combines_propagation_and_serialization(self):
        model = LatencyModel(default=LinkSpec(rtt_ms=20.0, bandwidth_bpms=100.0))
        assert model.transfer_delay("a", "b", 500) == 10.0 + 5.0


class TestAddressHelpers:
    @pytest.mark.parametrize(
        "address", ["10.0.0.1", "255.255.255.255", "0.0.0.0", "192.168.1.7"]
    )
    def test_valid_ipv4(self, address):
        assert is_valid_ipv4(address)

    @pytest.mark.parametrize(
        "address",
        ["10.0.0", "10.0.0.256", "a.b.c.d", "10.00.0.1", "10.0.0.1.2", ""],
    )
    def test_invalid_ipv4(self, address):
        assert not is_valid_ipv4(address)

    def test_int_roundtrip(self):
        for address in ["10.0.0.1", "172.16.5.9", "255.0.255.0"]:
            assert int_to_ipv4(ipv4_to_int(address)) == address

    def test_int_to_ipv4_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ipv4(-1)
        with pytest.raises(ValueError):
            int_to_ipv4(2**32)

    def test_ipv4_to_int_rejects_invalid(self):
        with pytest.raises(ValueError):
            ipv4_to_int("not-an-ip")


class TestAddressAllocator:
    def test_allocates_requested_count(self):
        alloc = AddressAllocator()
        addresses = alloc.allocate(10)
        assert len(addresses) == 10
        assert all(is_valid_ipv4(a) for a in addresses)

    def test_addresses_are_unique(self):
        alloc = AddressAllocator()
        addresses = alloc.allocate(600)  # spans multiple /24 blocks
        assert len(set(addresses)) == 600

    def test_allocation_is_deterministic(self):
        assert AddressAllocator().allocate(5) == AddressAllocator().allocate(5)

    def test_blocks_do_not_overlap(self):
        alloc = AddressAllocator()
        block_a = list(alloc.allocate_block())
        block_b = list(alloc.allocate_block())
        assert not set(block_a) & set(block_b)
        assert len(block_a) == 254

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator().allocate(-1)
