"""Unit tests for the connection pool's lookup logic."""

import pytest

from repro.audit import AuditLog, ReasonCode
from repro.browser.policy import (
    ChromiumPolicy,
    ConnectionFacts,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
)
from repro.browser.pool import ConnectionPool, MAX_H1_CONNECTIONS_PER_HOST


class FakeSession:
    def __init__(self, multiplex=True, busy=False, san=(), origins=()):
        self.can_multiplex = multiplex
        self.h1_busy = busy
        self.closed = False
        self.failed = None
        self._san = set(san)
        self._origins = set(origins)

    def close(self):
        self.closed = True

    def certificate_covers(self, hostname):
        return hostname in self._san

    def origin_set_covers(self, hostname):
        return hostname in self._origins


def make_pool(policy=None):
    return ConnectionPool(
        policy=policy or FirefoxPolicy(origin_frames=True),
    )


def add(pool, sni, **kwargs):
    anonymous = kwargs.pop("anonymous", False)
    available = kwargs.pop("available", ("10.0.0.1",))
    facts = ConnectionFacts(
        session=FakeSession(**kwargs),
        sni=sni,
        connected_ip=list(available)[0],
        available_set=frozenset(available),
        anonymous_partition=anonymous,
    )
    pool.connections.append(facts)
    return facts


class TestFindSameHost:
    def test_finds_h2_session(self):
        pool = make_pool()
        facts = add(pool, "www.a.com")
        outcome = pool.find_same_host("www.a.com")
        assert outcome.facts is facts
        assert outcome.reason is ReasonCode.POOL_HIT_SAME_HOST

    def test_ignores_other_hosts(self):
        pool = make_pool()
        add(pool, "www.a.com")
        outcome = pool.find_same_host("www.b.com")
        assert not outcome
        assert outcome.facts is None
        assert outcome.reason is ReasonCode.MISS_NO_CONNECTION

    def test_ignores_closed_sessions(self):
        pool = make_pool()
        facts = add(pool, "www.a.com")
        facts.session.closed = True
        outcome = pool.find_same_host("www.a.com")
        assert not outcome
        assert outcome.reason is ReasonCode.MISS_CLOSED_STALE

    def test_anonymous_partition_isolated(self):
        pool = make_pool()
        add(pool, "www.a.com", anonymous=False)
        outcome = pool.find_same_host("www.a.com", anonymous=True)
        assert not outcome
        assert outcome.reason is ReasonCode.MISS_ANONYMOUS_PARTITION

    def test_busy_h1_skipped_until_cap(self):
        pool = make_pool()
        add(pool, "www.a.com", multiplex=False, busy=True)
        # One busy H1 connection: the caller should open another.
        outcome = pool.find_same_host("www.a.com")
        assert not outcome
        assert outcome.reason is ReasonCode.MISS_CANNOT_MULTIPLEX

    def test_idle_h1_preferred(self):
        pool = make_pool()
        add(pool, "www.a.com", multiplex=False, busy=True)
        idle = add(pool, "www.a.com", multiplex=False, busy=False)
        outcome = pool.find_same_host("www.a.com")
        assert outcome.facts is idle
        assert outcome.reason is ReasonCode.POOL_HIT_H1_IDLE

    def test_h1_cap_forces_reuse(self):
        pool = make_pool()
        for _ in range(MAX_H1_CONNECTIONS_PER_HOST):
            add(pool, "www.a.com", multiplex=False, busy=True)
        # All busy and at the cap: queue on an existing connection.
        outcome = pool.find_same_host("www.a.com")
        assert outcome.facts is not None
        assert outcome.reason is ReasonCode.POOL_HIT_H1_CAP


class TestFindCoalescable:
    def test_policy_match(self):
        pool = make_pool()
        facts = add(pool, "www.a.com",
                    san=("www.a.com", "cdn.a.com"),
                    origins=("cdn.a.com",))
        outcome = pool.find_coalescable("cdn.a.com", ["10.9.9.9"])
        assert outcome.facts is facts
        assert outcome.reason is ReasonCode.POOL_HIT_ORIGIN_FRAME

    def test_same_host_excluded(self):
        pool = make_pool()
        add(pool, "www.a.com", san=("www.a.com",))
        assert not pool.find_coalescable("www.a.com", ["10.0.0.1"])

    def test_anonymous_requests_never_coalesce(self):
        pool = make_pool()
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
            origins=("cdn.a.com",))
        outcome = pool.find_coalescable("cdn.a.com", ["10.0.0.1"],
                                        anonymous=True)
        assert not outcome
        assert outcome.reason is ReasonCode.MISS_ANONYMOUS_PARTITION

    def test_anonymous_connections_never_donate(self):
        pool = make_pool()
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
            origins=("cdn.a.com",), anonymous=True)
        assert not pool.find_coalescable("cdn.a.com", ["10.0.0.1"])

    def test_ip_overlap_path(self):
        pool = make_pool()
        facts = add(pool, "www.a.com",
                    san=("www.a.com", "shard.a.com"),
                    available=("10.0.0.1", "10.0.0.2"))
        outcome = pool.find_coalescable("shard.a.com",
                                        ["10.0.0.2", "10.0.0.3"])
        assert outcome.facts is facts
        assert outcome.reason is ReasonCode.POOL_HIT_IP_SAN


class TestIndexes:
    """The sni/IP indexes answer lookups without full scans and stay
    consistent under append and prune."""

    def test_registry_indexes_track_appends(self):
        pool = make_pool()
        facts = add(pool, "www.a.com",
                    available=("10.0.0.1", "10.0.0.2"))
        registry = pool.connections
        assert registry.for_host("www.a.com") == [facts]
        assert registry.by_ip["10.0.0.1"] == [facts]
        assert registry.by_ip["10.0.0.2"] == [facts]
        assert facts.pool_seq == 0

    def test_same_host_lookup_is_indexed(self):
        pool = make_pool()
        for index in range(50):
            add(pool, f"host{index:02d}.example")
        target = add(pool, "www.a.com")
        found = pool.find_same_host("www.a.com")
        assert found.facts is target
        # The lookup examined only the target's bucket, not the pool.
        assert pool.stats.candidates_examined == 1
        assert pool.stats.indexed_lookups == 1

    def test_ip_policy_coalesce_lookup_is_indexed(self):
        pool = make_pool(policy=ChromiumPolicy())
        for index in range(40):
            add(pool, f"host{index:02d}.example",
                available=(f"10.1.{index}.1",))
        target = add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
                     available=("10.9.9.9",))
        found = pool.find_coalescable("cdn.a.com", ["10.9.9.9"])
        assert found.facts is target
        assert pool.stats.indexed_lookups == 1
        assert pool.stats.full_scans == 0
        assert pool.stats.candidates_examined == 1

    def test_origin_policy_falls_back_to_full_scan(self):
        pool = make_pool(policy=FirefoxPolicy(origin_frames=True))
        add(pool, "www.b.com")
        target = add(pool, "www.a.com",
                     san=("www.a.com", "cdn.a.com"),
                     origins=("cdn.a.com",))
        # ORIGIN-frame reuse needs no IP overlap, so the IP index
        # cannot bound the candidate set.
        found = pool.find_coalescable("cdn.a.com", ["10.200.0.1"])
        assert found.facts is target
        assert pool.stats.full_scans == 1

    def test_no_coalescing_policy_skips_lookup_entirely(self):
        pool = make_pool(policy=NoCoalescingPolicy())
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"))
        outcome = pool.find_coalescable("cdn.a.com", ["10.0.0.1"])
        assert not outcome
        assert outcome.reason is ReasonCode.MISS_POLICY_FORBIDS
        assert pool.stats.candidates_examined == 0

    @pytest.mark.parametrize("policy_factory", [
        ChromiumPolicy,
        lambda: FirefoxPolicy(origin_frames=False),
        lambda: FirefoxPolicy(origin_frames=True),
        IdealOriginPolicy,
        NoCoalescingPolicy,
    ])
    def test_indexed_lookup_matches_reference_scan(self, policy_factory):
        """The indexed path picks exactly what the pre-index full scan
        picked, for every policy and a mixed pool."""
        pool = make_pool(policy=policy_factory())
        add(pool, "www.a.com", san=("www.a.com",),
            available=("10.0.0.1",))
        add(pool, "www.b.com", san=("www.b.com", "cdn.x.com"),
            available=("10.0.0.2", "10.0.0.3"))
        add(pool, "www.c.com", san=("www.c.com", "cdn.x.com"),
            origins=("cdn.x.com",), available=("10.0.0.4",))
        add(pool, "www.d.com", san=("www.d.com", "cdn.x.com"),
            available=("10.0.0.3",), anonymous=True)
        dead = add(pool, "www.e.com", san=("www.e.com", "cdn.x.com"),
                   available=("10.0.0.3",))
        dead.session.closed = True
        for candidate_ips in (["10.0.0.3"], ["10.0.0.2", "10.0.0.4"],
                              ["10.99.0.1"], []):
            expected = pool._scan_coalescable("cdn.x.com", candidate_ips)
            assert pool.find_coalescable(
                "cdn.x.com", candidate_ips
            ).facts is expected


class TestPruning:
    """Dead sessions leave the registry and the indexes."""

    def test_lookup_prunes_closed_connections(self):
        pool = make_pool()
        facts = add(pool, "www.a.com")
        facts.session.closed = True
        assert not pool.find_same_host("www.a.com")
        assert len(pool.connections) == 0
        assert pool.connections.for_host("www.a.com") == []
        assert pool.stats.pruned_connections == 1

    def test_coalesce_lookup_prunes_failed_connections(self):
        pool = make_pool()
        facts = add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
                    origins=("cdn.a.com",))
        facts.session.failed = "handshake failure"
        assert not pool.find_coalescable("cdn.a.com", ["10.0.0.1"])
        assert len(pool.connections) == 0
        assert "10.0.0.1" not in pool.connections.by_ip

    def test_open_count_prunes_dead_entries(self):
        pool = make_pool()
        alive = add(pool, "www.a.com")
        dead = add(pool, "www.b.com")
        dead.session.closed = True
        assert pool.open_count == 1
        assert list(pool.connections) == [alive]
        assert pool.stats.pruned_connections == 1

    def test_close_all_empties_registry_and_indexes(self):
        pool = make_pool()
        add(pool, "www.a.com")
        add(pool, "www.b.com", available=("10.0.0.7",))
        pool.close_all()
        assert len(pool.connections) == 0
        assert pool.connections.by_sni == {}
        assert pool.connections.by_ip == {}
        assert pool.open_count == 0
        assert pool.stats.pruned_connections == 2

    def test_pruned_connection_not_found_again(self):
        pool = make_pool()
        first = add(pool, "www.a.com")
        second = add(pool, "www.a.com")
        first.session.closed = True
        assert pool.find_same_host("www.a.com").facts is second
        # Only the live connection remains in the bucket.
        assert pool.connections.for_host("www.a.com") == [second]


class TestMidPathRstEviction:
    """A connection torn down by an on-path RST (``Transport.abort``)
    reads as failed; the next lookup must evict it from the registry
    and every index, never hand it out again."""

    def test_aborted_connection_evicted_everywhere(self):
        pool = make_pool()
        facts = add(pool, "www.a.com", san=("www.a.com",),
                    available=("10.0.0.1",))
        facts.session.failed = "connection aborted by mid-path RST"
        outcome = pool.find_same_host("www.a.com")
        assert not outcome
        assert outcome.reason is ReasonCode.MISS_CLOSED_STALE
        registry = pool.connections
        assert len(registry) == 0
        assert registry.for_host("www.a.com") == []
        assert registry.by_ip.get("10.0.0.1", []) == []
        assert registry.for_endpoint("www.a.com", "tcp-tls") == []
        assert pool.stats.pruned_connections == 1

    def test_eviction_records_exactly_one_audit_event(self):
        audit = AuditLog()
        pool = ConnectionPool(
            policy=FirefoxPolicy(origin_frames=True),
            audit=audit,
            page="https://www.a.com/",
        )
        facts = add(pool, "www.a.com")
        facts.session.failed = "connection aborted by mid-path RST"
        assert not pool.find_same_host("www.a.com")
        assert len(audit.events) == 1
        assert audit.events[0].code is ReasonCode.MISS_CLOSED_STALE

    def test_replacement_connection_is_found_after_rst(self):
        pool = make_pool()
        dead = add(pool, "www.a.com")
        dead.session.failed = "connection aborted by mid-path RST"
        assert not pool.find_same_host("www.a.com")
        fresh = add(pool, "www.a.com")
        assert pool.find_same_host("www.a.com").facts is fresh
        assert list(pool.connections) == [fresh]


class TestRegistryChurn:
    """Open/close storms: the registry's three indexes and the pool's
    counters stay exactly consistent however connections churn."""

    @staticmethod
    def check_indexes(registry):
        """Every live entry is indexed everywhere it should be, no
        index holds anything else, and no bucket is empty."""
        for facts in registry:
            assert facts in registry.by_sni[facts.sni]
            assert facts in registry.by_endpoint[
                (facts.sni, facts.transport_name)
            ]
            for ip in facts.available_set | {facts.connected_ip}:
                assert facts in registry.by_ip[ip]
        indexed = {
            id(facts) for bucket in registry.by_sni.values()
            for facts in bucket
        }
        assert indexed == {id(facts) for facts in registry}
        for index in (registry.by_sni, registry.by_ip,
                      registry.by_endpoint):
            for bucket in index.values():
                assert bucket  # empty buckets are deleted, not kept

    def test_open_close_storm_keeps_indexes_consistent(self):
        import random

        rng = random.Random(2022)
        pool = make_pool(policy=ChromiumPolicy())
        live = []
        opened = closed = 0
        for step in range(400):
            if live and rng.random() < 0.45:
                victim = rng.choice(live)
                # Half the closures die loudly (failed), half quietly.
                if rng.random() < 0.5:
                    victim.session.failed = "storm"
                else:
                    victim.session.closed = True
                closed += 1
            else:
                host = f"host{rng.randrange(12):02d}.example"
                facts = add(
                    pool, host,
                    san=(host, "cdn.x.com"),
                    available=(f"10.0.{rng.randrange(6)}.1",),
                )
                live.append(facts)
                opened += 1
            # Lookups are what prune dead entries; interleave them.
            pool.find_same_host(f"host{rng.randrange(12):02d}.example")
            pool.find_coalescable(
                "cdn.x.com", [f"10.0.{rng.randrange(6)}.1"]
            )
            live = [facts for facts in live
                    if not facts.session.closed
                    and facts.session.failed is None]
            self.check_indexes(pool.connections)
        assert opened > 0 and closed > 0
        assert pool.stats.pruned_connections > 0
        assert pool.stats.pruned_connections <= closed
        # A final sweep leaves exactly the live entries, every one of
        # them still indexed, and the prune counter reconciles with
        # the closures.
        assert pool.open_count == len(live)
        assert {id(facts) for facts in pool.connections} == \
            {id(facts) for facts in live}
        self.check_indexes(pool.connections)
        assert pool.stats.pruned_connections == closed

    def test_storm_then_drain_empties_every_index(self):
        pool = make_pool(policy=ChromiumPolicy())
        for index in range(40):
            add(pool, f"host{index:02d}.example",
                available=(f"10.1.{index}.1", "10.9.9.9"))
        for facts in list(pool.connections):
            facts.session.closed = True
        # open_count prunes everything dead in one sweep.
        assert pool.open_count == 0
        assert pool.stats.pruned_connections == 40
        registry = pool.connections
        assert list(registry) == []
        assert registry.by_sni == {}
        assert registry.by_ip == {}
        assert registry.by_endpoint == {}

    def test_pool_seq_survives_churn_and_keeps_ordering(self):
        pool = make_pool(policy=ChromiumPolicy())
        first = add(pool, "www.a.com", available=("10.0.0.1",))
        second = add(pool, "www.b.com", available=("10.0.0.1",))
        pool.connections.discard(first)
        third = add(pool, "www.c.com", available=("10.0.0.1",))
        # Sequence numbers never recycle, so insertion order is total.
        assert second.pool_seq < third.pool_seq
        candidates = pool.connections.candidates_for_ips(["10.0.0.1"])
        assert candidates == [second, third]

    def test_discard_is_by_identity_not_equality(self):
        pool = make_pool()
        kept = add(pool, "www.a.com")
        twin = add(pool, "www.a.com")
        assert pool.connections.discard(twin)
        assert list(pool.connections) == [kept]
        assert pool.connections.for_host("www.a.com") == [kept]
        assert not pool.connections.discard(twin)  # already gone
