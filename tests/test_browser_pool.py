"""Unit tests for the connection pool's lookup logic."""

import pytest

from repro.browser.policy import ConnectionFacts, FirefoxPolicy
from repro.browser.pool import ConnectionPool, MAX_H1_CONNECTIONS_PER_HOST


class FakeSession:
    def __init__(self, multiplex=True, busy=False, san=(), origins=()):
        self.can_multiplex = multiplex
        self.h1_busy = busy
        self.closed = False
        self.failed = None
        self._san = set(san)
        self._origins = set(origins)

    def certificate_covers(self, hostname):
        return hostname in self._san

    def origin_set_covers(self, hostname):
        return hostname in self._origins


def make_pool():
    return ConnectionPool(
        network=None, client_host=None,
        policy=FirefoxPolicy(origin_frames=True),
        tls_config_factory=lambda sni: None,
    )


def add(pool, sni, **kwargs):
    anonymous = kwargs.pop("anonymous", False)
    available = kwargs.pop("available", ("10.0.0.1",))
    facts = ConnectionFacts(
        session=FakeSession(**kwargs),
        sni=sni,
        connected_ip=list(available)[0],
        available_set=frozenset(available),
        anonymous_partition=anonymous,
    )
    pool.connections.append(facts)
    return facts


class TestFindSameHost:
    def test_finds_h2_session(self):
        pool = make_pool()
        facts = add(pool, "www.a.com")
        assert pool.find_same_host("www.a.com") is facts

    def test_ignores_other_hosts(self):
        pool = make_pool()
        add(pool, "www.a.com")
        assert pool.find_same_host("www.b.com") is None

    def test_ignores_closed_sessions(self):
        pool = make_pool()
        facts = add(pool, "www.a.com")
        facts.session.closed = True
        assert pool.find_same_host("www.a.com") is None

    def test_anonymous_partition_isolated(self):
        pool = make_pool()
        add(pool, "www.a.com", anonymous=False)
        assert pool.find_same_host("www.a.com", anonymous=True) is None

    def test_busy_h1_skipped_until_cap(self):
        pool = make_pool()
        add(pool, "www.a.com", multiplex=False, busy=True)
        # One busy H1 connection: the caller should open another.
        assert pool.find_same_host("www.a.com") is None

    def test_idle_h1_preferred(self):
        pool = make_pool()
        add(pool, "www.a.com", multiplex=False, busy=True)
        idle = add(pool, "www.a.com", multiplex=False, busy=False)
        assert pool.find_same_host("www.a.com") is idle

    def test_h1_cap_forces_reuse(self):
        pool = make_pool()
        for _ in range(MAX_H1_CONNECTIONS_PER_HOST):
            add(pool, "www.a.com", multiplex=False, busy=True)
        # All busy and at the cap: queue on an existing connection.
        assert pool.find_same_host("www.a.com") is not None


class TestFindCoalescable:
    def test_policy_match(self):
        pool = make_pool()
        facts = add(pool, "www.a.com",
                    san=("www.a.com", "cdn.a.com"),
                    origins=("cdn.a.com",))
        found = pool.find_coalescable("cdn.a.com", ["10.9.9.9"])
        assert found is facts

    def test_same_host_excluded(self):
        pool = make_pool()
        add(pool, "www.a.com", san=("www.a.com",))
        assert pool.find_coalescable("www.a.com", ["10.0.0.1"]) is None

    def test_anonymous_requests_never_coalesce(self):
        pool = make_pool()
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
            origins=("cdn.a.com",))
        assert pool.find_coalescable("cdn.a.com", ["10.0.0.1"],
                                     anonymous=True) is None

    def test_anonymous_connections_never_donate(self):
        pool = make_pool()
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
            origins=("cdn.a.com",), anonymous=True)
        assert pool.find_coalescable("cdn.a.com", ["10.0.0.1"]) is None

    def test_ip_overlap_path(self):
        pool = make_pool()
        facts = add(pool, "www.a.com",
                    san=("www.a.com", "shard.a.com"),
                    available=("10.0.0.1", "10.0.0.2"))
        found = pool.find_coalescable("shard.a.com",
                                      ["10.0.0.2", "10.0.0.3"])
        assert found is facts
