"""Sharded parallel crawling: partitioning, seeds, and determinism.

The load-bearing guarantee: a crawl's archives depend on the shard
*layout* (part of the experiment definition) but never on the number
of worker processes -- ``jobs=4`` must equal ``jobs=1``
archive-for-archive.
"""

import pytest

from repro.dataset.generator import DatasetConfig, PageGenerator
from repro.dataset.shard import (
    CrawlParams,
    ParallelCrawler,
    ShardSpec,
    crawl_shard,
    default_shard_count,
    derive_seed,
    plan_shards,
)


class TestPlanShards:
    def test_partition_covers_all_sites_contiguously(self):
        config = DatasetConfig(site_count=103)
        shards = plan_shards(config, 4)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert shards[0].lo == 0
        assert shards[-1].hi == 103
        for left, right in zip(shards, shards[1:]):
            assert left.hi == right.lo
        # Near-equal: sizes differ by at most one.
        sizes = [s.site_count for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_count_clamped_to_site_count(self):
        shards = plan_shards(DatasetConfig(site_count=3), 8)
        assert len(shards) == 3
        assert all(s.site_count == 1 for s in shards)

    def test_default_layout_is_about_100_sites_per_shard(self):
        assert default_shard_count(1) == 1
        assert default_shard_count(100) == 1
        assert default_shard_count(101) == 2
        assert default_shard_count(400) == 4

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(DatasetConfig(site_count=10), -1)

    def test_records_are_the_sliced_full_generation(self):
        config = DatasetConfig(site_count=20, seed=9)
        full = PageGenerator(config).generate_all()
        shards = plan_shards(config, 3)
        sliced = [r for s in shards for r in s.records()]
        assert [r.entry.domain for r in sliced] == \
            [r.entry.domain for r in full]
        assert [r.cert_san for r in sliced] == [r.cert_san for r in full]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2022, 0, 1, 4) == derive_seed(2022, 0, 1, 4)

    def test_varies_with_every_input(self):
        base = derive_seed(2022, 0, 1, 4)
        assert derive_seed(2023, 0, 1, 4) != base
        assert derive_seed(2022, 1, 1, 4) != base
        assert derive_seed(2022, 0, 2, 4) != base
        assert derive_seed(2022, 0, 1, 5) != base

    def test_world_and_crawler_domains_disjoint(self):
        config = DatasetConfig(site_count=8, seed=2022)
        spec = plan_shards(config, 2)[0]
        assert spec.world_seed != spec.crawler_seed(config.seed)


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def config(self):
        return DatasetConfig(site_count=12, seed=41)

    @pytest.fixture(scope="class")
    def params(self):
        return CrawlParams(policy="chromium", speculative_rate=0.10)

    @pytest.fixture(scope="class")
    def serial(self, config, params):
        return ParallelCrawler(
            config, params, shard_count=4, jobs=1
        ).crawl()

    @pytest.fixture(scope="class")
    def parallel(self, config, params):
        return ParallelCrawler(
            config, params, shard_count=4, jobs=4
        ).crawl()

    def test_jobs_do_not_change_results(self, serial, parallel):
        """jobs=4 equals jobs=1 archive-for-archive."""
        assert serial.attempted == parallel.attempted
        assert serial.archives == parallel.archives

    def test_page_order_follows_rank(self, config, serial):
        hostnames = [a.page.hostname for a in serial.archives]
        expected = [
            f"www.{entry.domain}" for entry in config.tranco()
        ]
        assert hostnames == expected

    def test_per_page_stats_match(self, serial, parallel):
        for a, b in zip(serial.archives, parallel.archives):
            assert a.page.on_load == b.page.on_load
            assert a.dns_query_count() == b.dns_query_count()
            assert a.tls_connection_count() == b.tls_connection_count()
            assert [e.url for e in a.entries] == \
                [e.url for e in b.entries]

    def test_shard_crawl_is_reproducible(self, config, params):
        spec = plan_shards(config, 4)[1]
        first = crawl_shard(spec, params)
        second = crawl_shard(spec, params)
        assert first.archives == second.archives

    def test_progress_reports_each_shard(self, config, params):
        seen = []
        ParallelCrawler(config, params, shard_count=3, jobs=1).crawl(
            progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestShardSpec:
    def test_spec_is_picklable(self):
        import pickle

        spec = plan_shards(DatasetConfig(site_count=10), 2)[1]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_world_contains_only_the_slice(self):
        config = DatasetConfig(site_count=10, seed=13)
        spec = plan_shards(config, 2)[1]
        world = spec.build_world()
        domains = [h.record.entry.domain for h in world.sites]
        expected = [r.entry.domain for r in spec.records()]
        assert domains == expected
        assert len(domains) == 5
