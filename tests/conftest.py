"""Shared fixtures: a small simulated world for browser-level tests."""

import numpy as np
import pytest

from repro.browser import BrowserContext, BrowserEngine, ChromiumPolicy
from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.h2 import H2Server, ServerConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.web import AsDatabase


class SmallWorld:
    """One CDN edge (two IPs), one independent origin, one client.

    Hostnames:
      www.site.com, static.site.com, thirdparty.cdn.com -> CDN edge
      other.com                                         -> separate origin
    """

    def __init__(self, rtt=20.0, origin_set=None, dns_ttl=300_000.0):
        self.latency = LatencyModel(
            default=LinkSpec(rtt_ms=rtt, bandwidth_bpms=1e5)
        )
        self.network = Network(loop=EventLoop(), latency=self.latency)
        self.rng = np.random.default_rng(42)

        self.root_ca = CertificateAuthority("Root CA", rng=self.rng)
        self.issuer = CertificateAuthority(
            "CDN CA", parent=self.root_ca, rng=self.rng
        )
        self.trust = TrustStore([self.root_ca])
        self.authorities = [self.root_ca, self.issuer]

        self.edge = self.network.add_host(
            Host("edge", "us-east", ["10.0.0.1", "10.0.0.2"])
        )
        self.origin = self.network.add_host(
            Host("origin", "us-east", ["10.5.0.1"])
        )
        self.client_host = self.network.add_host(
            Host("client", "us-east", ["10.9.0.1"])
        )

        if origin_set is None:
            origin_set = (
                "https://static.site.com",
                "https://thirdparty.cdn.com",
            )
        self.site_cert = self.issuer.issue(
            "www.site.com",
            ("www.site.com", "static.site.com", "thirdparty.cdn.com"),
        )
        self.edge_config = ServerConfig(
            chains=[self.issuer.chain_for(self.site_cert)],
            serves=["www.site.com", "static.site.com",
                    "thirdparty.cdn.com"],
            origin_sets={"*": tuple(origin_set)},
        )
        self.edge_server = H2Server(self.network, self.edge,
                                    self.edge_config)
        self.edge_server.listen_all()

        self.other_cert = self.issuer.issue("other.com", ("other.com",))
        self.origin_config = ServerConfig(
            chains=[self.issuer.chain_for(self.other_cert)],
            serves=["other.com"],
            origin_sets={},
        )
        self.origin_server = H2Server(self.network, self.origin,
                                      self.origin_config)
        self.origin_server.listen_all()

        self.authority = AuthoritativeServer()
        site_zone = Zone("site.com")
        site_zone.add_a("www.site.com", ["10.0.0.1"], ttl=dns_ttl)
        site_zone.add_a("static.site.com", ["10.0.0.1"], ttl=dns_ttl)
        self.authority.add_zone(site_zone)
        cdn_zone = Zone("cdn.com")
        cdn_zone.add_a("thirdparty.cdn.com", ["10.0.0.2"], ttl=dns_ttl)
        self.authority.add_zone(cdn_zone)
        other_zone = Zone("other.com")
        other_zone.add_a("other.com", ["10.5.0.1"], ttl=dns_ttl)
        self.authority.add_zone(other_zone)

        self.asdb = AsDatabase()
        self.asdb.register("10.0.0.0/16", 13335, "CDN-AS")
        self.asdb.register("10.5.0.0/16", 64500, "Origin-AS")

        self.resolver = CachingResolver(
            self.network.loop, self.authority, median_latency_ms=15.0
        )

    def context(self, policy=None, **kwargs) -> BrowserContext:
        return BrowserContext(
            network=self.network,
            client_host=self.client_host,
            resolver=self.resolver,
            trust_store=self.trust,
            authorities=self.authorities,
            policy=policy or ChromiumPolicy(),
            asdb=self.asdb,
            **kwargs,
        )

    def engine(self, policy=None, **kwargs) -> BrowserEngine:
        return BrowserEngine(self.context(policy=policy, **kwargs))


@pytest.fixture
def small_world():
    return SmallWorld()


@pytest.fixture
def make_world():
    return SmallWorld
