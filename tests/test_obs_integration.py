"""End-to-end tests of the run ledger through the CLI.

Small crawls, real records: determinism across ``--jobs``, the
``report``/``compare`` surfaces and their exit codes, SLO gating, and
the guarantee that ledger instrumentation never perturbs decisions
(``repro audit-diff`` stays clean against an unledgered run).
"""

import pytest

from repro.cli import main
from repro.obs.ledger import load_record

CRAWL = ["crawl", "--sites", "8", "--seed", "3", "--shards", "2",
         "--no-cache", "--tables", "1"]
TRAFFIC = ["traffic", "--users", "30", "--sites", "8",
           "--duration", "10", "--shards", "2"]


def _crawl_record(tmp_path, name, extra=(), jobs=1):
    ledger = tmp_path / name
    argv = CRAWL + ["--jobs", str(jobs), "--ledger", str(ledger),
                    *extra]
    assert main(argv) == 0
    (path,) = ledger.glob("*.jsonl")
    return path


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One shared baseline crawl record (read-only across tests)."""
    return _crawl_record(tmp_path_factory.mktemp("baseline"), "a")


class TestCrawlLedger:
    def test_record_byte_identical_across_jobs(self, baseline,
                                               tmp_path):
        b = _crawl_record(tmp_path, "b", jobs=2)
        assert baseline.name == b.name
        assert baseline.read_bytes() == b.read_bytes()

    def test_record_contents(self, baseline):
        record = load_record(baseline)
        assert record.kind == "crawl"
        assert record.meta["sites"] == 8
        assert record.meta["shards"] == 2
        assert "jobs" not in record.meta
        assert record.headline["pages_attempted"] == 8
        names = {doc["name"] for doc in record.phases}
        assert {"phase.dns", "phase.connect", "phase.tls",
                "phase.ttfb"} <= names

    def test_slo_verdicts_stored(self, tmp_path, capsys):
        slo = tmp_path / "slo.toml"
        slo.write_text(
            '[[slo]]\nname = "dns-lenient"\nphase = "dns"\n'
            'quantile = 0.9\nmax_ms = 100000\n'
        )
        path = _crawl_record(tmp_path, "a", extra=["--slo", str(slo)])
        record = load_record(path)
        assert [row["name"] for row in record.slo] == ["dns-lenient"]
        assert record.slo[0]["ok"] is True

    def test_bad_slo_file_aborts_before_crawling(self, tmp_path):
        slo = tmp_path / "slo.toml"
        slo.write_text("[[slo]]\nphase = broken\n")
        with pytest.raises(SystemExit) as excinfo:
            main(CRAWL + ["--ledger", str(tmp_path / "l"),
                          "--slo", str(slo)])
        assert excinfo.value.code == 2
        assert not (tmp_path / "l").exists()


class TestReportCommand:
    def test_report_renders_both_formats(self, baseline, capsys):
        assert main(["report", str(baseline)]) == 0
        ascii_out = capsys.readouterr().out
        assert "phase latency" in ascii_out
        assert main(["report", baseline.stem, "--ledger",
                     str(baseline.parent), "--format",
                     "markdown"]) == 0
        assert "## Run" in capsys.readouterr().out

    def test_report_check_gates_on_slo(self, baseline, tmp_path,
                                       capsys):
        path = baseline
        slo = tmp_path / "slo.toml"
        slo.write_text(
            '[[slo]]\nname = "impossible"\nphase = "dns"\n'
            'quantile = 0.5\nmax_ms = 0.001\n'
        )
        assert main(["report", str(path), "--slo", str(slo),
                     "--check"]) == 1
        assert main(["report", str(path), "--slo", str(slo)]) == 0

    def test_missing_record_exits_2(self, capsys):
        assert main(["report", "no-such-run"]) == 2


class TestCompareCommand:
    def test_identical_seed_runs_compare_clean(self, baseline,
                                               tmp_path, capsys):
        b = _crawl_record(tmp_path, "b", jobs=2)
        assert main(["compare", str(baseline), str(b)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_degraded_run_regresses_naming_phase(self, baseline,
                                                 tmp_path, capsys):
        slow = _crawl_record(tmp_path, "slow",
                             extra=["--dns-latency", "400"])
        assert main(["compare", str(baseline), str(slow)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "phase.dns p50" in out

    def test_run_ids_resolve_in_ledger_dir(self, baseline, capsys):
        assert main(["compare", baseline.stem, baseline.stem,
                     "--ledger", str(baseline.parent)]) == 0

    def test_missing_record_exits_2(self, capsys):
        assert main(["compare", "nope", "also-nope"]) == 2

    def test_cross_kind_records_incomparable(self, baseline,
                                             tmp_path, capsys):
        crawl = baseline
        traffic_ledger = tmp_path / "t"
        assert main(TRAFFIC + ["--ledger", str(traffic_ledger)]) == 0
        (traffic_path,) = traffic_ledger.glob("*.jsonl")
        assert main(["compare", str(crawl), str(traffic_path)]) == 2
        assert "incomparable" in capsys.readouterr().out


class TestTrafficLedger:
    def test_record_byte_identical_across_jobs(self, tmp_path,
                                               capsys):
        for name, jobs in (("a", 1), ("b", 2)):
            assert main(TRAFFIC + ["--jobs", str(jobs), "--ledger",
                                   str(tmp_path / name)]) == 0
        (a,) = (tmp_path / "a").glob("*.jsonl")
        (b,) = (tmp_path / "b").glob("*.jsonl")
        assert a.read_bytes() == b.read_bytes()
        record = load_record(a)
        assert record.kind == "traffic"
        assert record.meta["scenario"] == "baseline"
        cohorts = {doc["labels"].get("cohort")
                   for doc in record.phases}
        assert "chromium" in cohorts

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_out = tmp_path / "spans.jsonl"
        assert main(TRAFFIC + ["--trace", str(trace_out),
                               "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics -- histograms" in out
        assert "phase.ttfb" in out
        assert trace_out.exists()
        first = trace_out.read_text().splitlines()[0]
        assert first.startswith("{")

    def test_chrome_trace_export(self, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        assert main(TRAFFIC + ["--trace", str(trace_out)]) == 0
        assert trace_out.read_text().startswith("{")


class TestLedgerDoesNotPerturbDecisions:
    def test_audit_diff_clean_ledgered_vs_unledgered(self, tmp_path,
                                                     capsys):
        plain = tmp_path / "plain.jsonl"
        ledgered = tmp_path / "ledgered.jsonl"
        assert main(CRAWL + ["--audit", str(plain)]) == 0
        assert main(CRAWL + ["--audit", str(ledgered), "--ledger",
                             str(tmp_path / "ledger")]) == 0
        assert main(["audit-diff", str(plain), str(ledgered)]) == 0
