"""Unit tests for the §4.1 waterfall reconstruction on hand-built HARs."""

import pytest

from repro.core import (
    ReconstructionOptions,
    by_asn,
    by_hostname,
    by_ip,
    by_single_asn,
    reconstruct,
)
from repro.web.har import HarArchive, HarEntry, HarPage, HarTimings


def entry(hostname, path, start, *, asn=1, ip="10.0.0.1", dns=-1.0,
          connect=-1.0, ssl=-1.0, wait=30.0, receive=20.0,
          initiator="/", status=200, protocol="h2", fetch_mode="normal",
          secure=True):
    return HarEntry(
        url=f"https://{hostname}{path}",
        hostname=hostname,
        path=path,
        started_at=start,
        timings=HarTimings(dns=dns, connect=connect, ssl=ssl, wait=wait,
                           receive=receive),
        status=status,
        server_ip=ip,
        protocol=protocol,
        asn=asn,
        as_org=f"AS{asn}",
        fetch_mode=fetch_mode,
        secure=secure,
        initiator_path=initiator,
    )


def archive(entries, on_load=None):
    root = entries[0]
    if on_load is None:
        on_load = max(e.started_at + e.timings.total() for e in entries)
    return HarArchive(
        page=HarPage(url=root.url, hostname=root.hostname,
                     on_load=on_load, on_content_load=on_load),
        entries=entries,
    )


def figure2_archive():
    """The paper's Figure 2 page: root + 5 subresources, 4 coalescable."""
    root = entry("www.example.com", "/", 0.0, asn=10, ip="10.0.0.1",
                 dns=20.0, connect=30.0, ssl=30.0, initiator="")
    # Requests 2-4: sharded/CDN hostnames on the same AS as the root.
    r2 = entry("assets.cdnhost.com", "/js/bootstrap.js", 120.0, asn=10,
               ip="10.0.0.2", dns=25.0, connect=30.0, ssl=30.0)
    r3 = entry("static.example.com", "/js/jquery.js", 122.0, asn=10,
               ip="10.0.0.3", dns=18.0, connect=30.0, ssl=30.0)
    r4 = entry("static.example.com", "/css/style.css", 124.0, asn=10,
               ip="10.0.0.3", dns=17.0, connect=30.0, ssl=30.0)
    # Request 5: a font discovered from the CSS.
    r5 = entry("fonts.cdnhost.com", "/fonts/arial.woff", 320.0, asn=10,
               ip="10.0.0.4", dns=22.0, connect=30.0, ssl=30.0,
               initiator="/css/style.css")
    # Request 6: an unrelated tracker on a different AS.
    r6 = entry("analytics.tracker.com", "/script.js", 130.0, asn=99,
               ip="10.9.9.9", dns=40.0, connect=35.0, ssl=35.0)
    return archive([root, r2, r3, r4, r5, r6])


class TestFigure2Reconstruction:
    def test_coalescable_requests_identified(self):
        result = reconstruct(figure2_archive(), by_asn)
        hosts = {url.split("/")[2] for url in result.coalesced_urls}
        assert hosts == {
            "assets.cdnhost.com", "static.example.com",
            "fonts.cdnhost.com",
        }

    def test_root_never_coalesced(self):
        result = reconstruct(figure2_archive(), by_asn)
        assert not any("www.example.com" in url
                       for url in result.coalesced_urls)

    def test_other_as_not_coalesced(self):
        result = reconstruct(figure2_archive(), by_asn)
        assert not any("analytics.tracker.com" in url
                       for url in result.coalesced_urls)

    def test_plt_improves(self):
        result = reconstruct(figure2_archive(), by_asn)
        assert result.reconstructed.page.on_load < \
            result.original.page.on_load
        assert result.time_saved_ms > 0
        assert 0 < result.plt_improvement < 1

    def test_coalesced_entries_lose_connection_setup(self):
        result = reconstruct(figure2_archive(), by_asn)
        for rebuilt in result.reconstructed.entries:
            if rebuilt.coalesced:
                assert rebuilt.timings.connect == -1.0
                assert rebuilt.timings.ssl == -1.0

    def test_font_child_starts_earlier(self):
        result = reconstruct(figure2_archive(), by_asn)
        font = [e for e in result.reconstructed.entries
                if "arial" in e.path][0]
        original_font = [e for e in result.original.entries
                         if "arial" in e.path][0]
        assert font.started_at < original_font.started_at

    def test_discovery_gap_preserved(self):
        """CPU time between initiator finish and child start is kept."""
        original = figure2_archive()
        result = reconstruct(original, by_asn)
        css_old = [e for e in original.entries if "style" in e.path][0]
        font_old = [e for e in original.entries if "arial" in e.path][0]
        gap_old = font_old.started_at - css_old.finished_at
        css_new = [e for e in result.reconstructed.entries
                   if "style" in e.path][0]
        font_new = [e for e in result.reconstructed.entries
                    if "arial" in e.path][0]
        gap_new = font_new.started_at - (
            css_new.started_at + css_new.timings.total()
        )
        assert gap_new == pytest.approx(gap_old, abs=1e-6)


class TestConcurrentDnsConservatism:
    def test_min_dns_removed_difference_retained(self):
        """§4.1: for concurrent coalescable requests, remove only the
        minimum DNS time; slower lookups keep the difference."""
        root = entry("www.example.com", "/", 0.0, asn=10, dns=20.0,
                     connect=30.0, ssl=30.0, initiator="")
        fast = entry("a.example.com", "/a.js", 100.0, asn=10,
                     dns=10.0, connect=30.0, ssl=30.0)
        slow = entry("b.example.com", "/b.js", 101.0, asn=10,
                     dns=25.0, connect=30.0, ssl=30.0)
        result = reconstruct(archive([root, fast, slow]), by_asn)
        rebuilt = {e.hostname: e for e in result.reconstructed.entries}
        assert rebuilt["a.example.com"].timings.dns == -1.0  # min removed
        assert rebuilt["b.example.com"].timings.dns == pytest.approx(15.0)

    def test_singleton_group_loses_all_dns(self):
        root = entry("www.example.com", "/", 0.0, asn=10, dns=20.0,
                     connect=30.0, ssl=30.0, initiator="")
        sub = entry("a.example.com", "/a.js", 500.0, asn=10, dns=12.0,
                    connect=30.0, ssl=30.0)
        result = reconstruct(archive([root, sub]), by_asn)
        rebuilt = {e.hostname: e for e in result.reconstructed.entries}
        assert rebuilt["a.example.com"].timings.dns == -1.0

    def test_drop_dns_false_retains_queries(self):
        """Firefox's conservative behaviour: query anyway (§6.8)."""
        root = entry("www.example.com", "/", 0.0, asn=10, dns=20.0,
                     connect=30.0, ssl=30.0, initiator="")
        sub = entry("a.example.com", "/a.js", 500.0, asn=10, dns=12.0,
                    connect=30.0, ssl=30.0)
        options = ReconstructionOptions(drop_dns=False)
        result = reconstruct(archive([root, sub]), by_asn, options)
        rebuilt = {e.hostname: e for e in result.reconstructed.entries}
        assert rebuilt["a.example.com"].timings.dns == 12.0
        assert rebuilt["a.example.com"].timings.connect == -1.0


class TestEligibility:
    def base_entries(self, **sub_kwargs):
        root = entry("www.example.com", "/", 0.0, asn=10, dns=20.0,
                     connect=30.0, ssl=30.0, initiator="")
        sub = entry("a.example.com", "/a.js", 500.0, asn=10, dns=12.0,
                    connect=30.0, ssl=30.0, **sub_kwargs)
        return archive([root, sub])

    def test_h1_entries_not_coalesced_by_default(self):
        result = reconstruct(self.base_entries(protocol="http/1.1"),
                             by_asn)
        assert result.coalesced_urls == []

    def test_h1_entries_coalesced_when_allowed(self):
        options = ReconstructionOptions(require_h2=False)
        result = reconstruct(self.base_entries(protocol="http/1.1"),
                             by_asn, options)
        assert result.coalesced_urls

    def test_fetch_modes_ignored_by_default(self):
        # The §4 model predates the §5.3 crossorigin discovery.
        result = reconstruct(
            self.base_entries(fetch_mode="cors-anonymous"), by_asn
        )
        assert result.coalesced_urls

    def test_fetch_modes_respected_when_asked(self):
        options = ReconstructionOptions(respect_fetch_modes=True)
        result = reconstruct(
            self.base_entries(fetch_mode="cors-anonymous"), by_asn,
            options,
        )
        assert result.coalesced_urls == []

    def test_insecure_entries_excluded(self):
        result = reconstruct(self.base_entries(secure=False), by_asn)
        assert result.coalesced_urls == []

    def test_failed_entries_excluded(self):
        result = reconstruct(self.base_entries(status=0), by_asn)
        assert result.coalesced_urls == []

    def test_empty_archive(self):
        empty = HarArchive(page=HarPage(url="u", hostname="h"))
        result = reconstruct(empty, by_asn)
        assert result.time_saved_ms == 0.0


class TestGroupers:
    def test_by_asn_and_ip_keys(self):
        e = entry("a.com", "/", 0.0, asn=7, ip="10.1.1.1")
        assert by_asn(e) == "asn:7"
        assert by_ip(e) == "ip:10.1.1.1"
        assert by_hostname(e) == "host:a.com"

    def test_missing_data_gives_none(self):
        e = entry("a.com", "/", 0.0, asn=0, ip="")
        assert by_asn(e) is None
        assert by_ip(e) is None

    def test_single_asn_grouper(self):
        grouper = by_single_asn(13335)
        cdn = entry("a.com", "/", 0.0, asn=13335)
        other = entry("b.com", "/", 0.0, asn=15169)
        assert grouper(cdn) == "asn:13335"
        assert grouper(other) is None

    def test_ip_grouping_narrower_than_asn(self):
        """Same AS, different IPs: ORIGIN coalesces, IP does not."""
        root = entry("www.example.com", "/", 0.0, asn=10, ip="10.0.0.1",
                     dns=20.0, connect=30.0, ssl=30.0, initiator="")
        sub = entry("a.example.com", "/a.js", 500.0, asn=10,
                    ip="10.0.0.9", dns=12.0, connect=30.0, ssl=30.0)
        arc = archive([root, sub])
        assert reconstruct(arc, by_asn).coalesced_urls
        assert not reconstruct(arc, by_ip).coalesced_urls
