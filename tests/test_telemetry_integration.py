"""Telemetry end-to-end: determinism, no-op equivalence, and the
trace-validated Figure 2 waterfall oracle."""

import json

import pytest

from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import (
    CrawlParams,
    ParallelCrawler,
    crawl_shard,
    crawl_shard_traced,
    plan_shards,
)
from repro.telemetry.validation import (
    assert_trace_valid,
    validate_crawl_trace,
)

CONFIG = DatasetConfig(site_count=10, seed=17)
PARAMS = CrawlParams()


@pytest.fixture(scope="module")
def traced():
    crawler = ParallelCrawler(CONFIG, PARAMS, shard_count=2, jobs=1)
    return crawler.crawl_traced()


class TestTracedCrawl:
    def test_spans_cover_every_layer(self, traced):
        _, trace = traced
        names = {span.name for span in trace.spans}
        assert {"shard", "site", "fetch", "pool.lookup", "dns.query",
                "tls.handshake", "h2.connection", "h2.stream"} <= names

    def test_fetch_spans_carry_page_attrs(self, traced):
        result, trace = traced
        fetches = [s for s in trace.spans if s.name == "fetch"]
        assert fetches
        for span in fetches:
            assert span.category == "browser"
            assert "page" in span.attrs
            assert "hostname" in span.attrs
            assert span.finished

    def test_metrics_merged_across_shards(self, traced):
        result, trace = traced
        attempted = trace.metrics.value("crawler.pages_attempted")
        assert attempted == result.attempted
        assert trace.metrics.value("pool.connections_opened") > 0
        assert trace.metrics.value("dns.queries") > 0

    def test_tracing_does_not_change_archives(self, traced):
        """The zero-overhead claim's other half: a traced crawl yields
        byte-identical archives to an untraced crawl."""
        result, _ = traced
        untraced = ParallelCrawler(
            CONFIG, PARAMS, shard_count=2, jobs=1
        ).crawl()
        assert [a.to_json() for a in untraced.archives] \
            == [a.to_json() for a in result.archives]

    def test_single_shard_traced_matches_untraced(self):
        spec = plan_shards(CONFIG, 2)[0]
        shard_result = crawl_shard_traced(spec, PARAMS)
        traced_result, spans = shard_result.payload, shard_result.spans
        plain = crawl_shard(spec, PARAMS)
        assert [a.to_json() for a in traced_result.archives] \
            == [a.to_json() for a in plain.archives]
        assert spans


class TestTraceDeterminism:
    def test_same_seed_same_trace(self, traced):
        _, trace = traced
        again = ParallelCrawler(
            CONFIG, PARAMS, shard_count=2, jobs=1
        ).crawl_traced()[1]
        assert again.to_jsonl() == trace.to_jsonl()
        assert json.dumps(again.metrics.snapshot()) \
            == json.dumps(trace.metrics.snapshot())

    def test_jobs_do_not_change_trace(self, traced):
        result, trace = traced
        parallel_result, parallel_trace = ParallelCrawler(
            CONFIG, PARAMS, shard_count=2, jobs=2
        ).crawl_traced()
        assert parallel_trace.to_jsonl() == trace.to_jsonl()
        assert json.dumps(parallel_trace.metrics.snapshot()) \
            == json.dumps(trace.metrics.snapshot())
        assert [a.to_json() for a in parallel_result.archives] \
            == [a.to_json() for a in result.archives]


class TestFigure2Validation:
    def test_seeded_crawl_validates_clean(self, traced):
        result, trace = traced
        assert validate_crawl_trace(result, trace.spans) == []
        assert_trace_valid(result, trace.spans)

    def test_validates_across_seeds(self):
        config = DatasetConfig(site_count=8, seed=99)
        result, trace = ParallelCrawler(
            config, PARAMS, shard_count=2, jobs=1
        ).crawl_traced()
        assert validate_crawl_trace(result, trace.spans) == []

    def test_corrupted_handshake_span_detected(self, traced):
        result, trace = traced
        # Deep-copy via dict round trip so the fixture stays pristine.
        from repro.telemetry import Span
        spans = [Span.from_dict(s.to_dict()) for s in trace.spans]
        victim = next(
            s for s in spans
            if s.name == "h2.connection" and "tls_ms" in s.attrs
            and s.attrs["tls_ms"] > 0
        )
        victim.attrs["tls_ms"] += 5.0
        problems = validate_crawl_trace(result, spans)
        assert problems
        assert any("h2.connection" in p or "handshake" in p
                   for p in problems)

    def test_shifted_fetch_span_detected(self, traced):
        result, trace = traced
        from repro.telemetry import Span
        spans = [Span.from_dict(s.to_dict()) for s in trace.spans]
        victim = next(s for s in spans if s.name == "fetch"
                      and s.attrs.get("status") == 200)
        victim.end_ms += 3.0
        problems = validate_crawl_trace(result, spans)
        assert any("traced fetch ended" in p for p in problems)

    def test_missing_page_spans_detected(self, traced):
        result, trace = traced
        succeeded = {a.page.url for a in result.successes}
        assert succeeded
        url = sorted(succeeded)[0]
        spans = [s for s in trace.spans
                 if not (s.name == "fetch"
                         and s.attrs.get("page") == url)]
        problems = validate_crawl_trace(result, spans)
        assert any(url in p for p in problems)

    def test_assert_raises_on_problem(self, traced):
        result, trace = traced
        from repro.telemetry import Span
        spans = [Span.from_dict(s.to_dict()) for s in trace.spans]
        victim = next(s for s in spans if s.name == "fetch"
                      and s.attrs.get("status") == 200)
        victim.end_ms += 1.0
        with pytest.raises(AssertionError, match="trace/waterfall"):
            assert_trace_valid(result, spans)


class TestCliTracing:
    def test_crawl_trace_writes_valid_chrome_trace(self, capsys,
                                                   tmp_path):
        from repro.cli import main

        out = tmp_path / "crawl.trace.json"
        assert main(["crawl", "--sites", "8", "--seed", "3",
                     "--no-cache", "--tables", "1",
                     "--trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err
        assert "trace:" not in captured.out
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        assert any(e["name"] == "fetch" for e in events)

    def test_crawl_trace_jsonl_deterministic(self, capsys, tmp_path):
        from repro.cli import main

        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        argv = ["crawl", "--sites", "8", "--seed", "3", "--no-cache",
                "--tables", "1"]
        assert main(argv + ["--trace", str(first)]) == 0
        assert main(argv + ["--trace", str(second), "--jobs", "2"]) == 0
        capsys.readouterr()
        assert first.read_text() == second.read_text()
        assert first.read_text().strip()

    def test_metrics_flag_prints_summary(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["crawl", "--sites", "8", "--seed", "3",
                     "--no-cache", "--tables", "1", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "metrics -- counters and gauges" in captured.out
        assert "dns.queries" in captured.out

    def test_tracing_bypasses_cache_but_stores(self, capsys, tmp_path):
        from repro.cli import main

        cache_dir = str(tmp_path)
        argv = ["crawl", "--sites", "8", "--seed", "3",
                "--cache-dir", cache_dir, "--tables", "1"]
        out = tmp_path / "t.json"
        assert main(argv + ["--trace", str(out)]) == 0
        first = capsys.readouterr()
        assert "cache: bypassed for tracing" in first.err
        # The traced run stored the archives: an untraced rerun hits.
        assert main(argv) == 0
        assert "cache: hit" in capsys.readouterr().err
        # And tracing again still re-crawls rather than reading back.
        assert main(argv + ["--trace", str(out)]) == 0
        assert "cache: bypassed for tracing" in capsys.readouterr().err
