"""SETTINGS parameter validation (RFC 7540 §6.5.2)."""

import pytest

from repro.h2 import H2ConnectionError, SettingId, Settings
from repro.h2.settings import (
    DEFAULT_SETTINGS,
    MAX_MAX_FRAME_SIZE,
    MAX_WINDOW_SIZE,
    MIN_MAX_FRAME_SIZE,
    validate_setting,
)


class TestDefaults:
    def test_protocol_defaults(self):
        settings = Settings()
        assert settings.header_table_size == 4096
        assert settings.enable_push is True
        assert settings.initial_window_size == 65_535
        assert settings.max_frame_size == 16_384

    def test_defaults_match_rfc(self):
        assert DEFAULT_SETTINGS[SettingId.INITIAL_WINDOW_SIZE] == 65_535
        assert DEFAULT_SETTINGS[SettingId.MAX_FRAME_SIZE] == 16_384


class TestValidation:
    def test_enable_push_must_be_boolean(self):
        validate_setting(SettingId.ENABLE_PUSH, 0)
        validate_setting(SettingId.ENABLE_PUSH, 1)
        with pytest.raises(H2ConnectionError):
            validate_setting(SettingId.ENABLE_PUSH, 2)

    def test_window_size_bound(self):
        validate_setting(SettingId.INITIAL_WINDOW_SIZE, MAX_WINDOW_SIZE)
        with pytest.raises(H2ConnectionError):
            validate_setting(SettingId.INITIAL_WINDOW_SIZE,
                             MAX_WINDOW_SIZE + 1)

    def test_max_frame_size_bounds(self):
        validate_setting(SettingId.MAX_FRAME_SIZE, MIN_MAX_FRAME_SIZE)
        validate_setting(SettingId.MAX_FRAME_SIZE, MAX_MAX_FRAME_SIZE)
        for bad in (MIN_MAX_FRAME_SIZE - 1, MAX_MAX_FRAME_SIZE + 1):
            with pytest.raises(H2ConnectionError):
                validate_setting(SettingId.MAX_FRAME_SIZE, bad)

    def test_unknown_identifiers_ignored(self):
        settings = Settings()
        settings.apply(0x99, 12345)  # must not raise, must not store
        assert settings.get(0x99) == 0

    def test_apply_updates_known_values(self):
        settings = Settings()
        settings.apply(SettingId.MAX_CONCURRENT_STREAMS, 100)
        assert settings.max_concurrent_streams == 100

    def test_apply_validates(self):
        settings = Settings()
        with pytest.raises(H2ConnectionError):
            settings.apply(SettingId.ENABLE_PUSH, 7)
