"""Unit tests for transports, hosts, services, and connections."""

import pytest

from repro.netsim import (
    ConnectionRefused,
    EventLoop,
    Host,
    LatencyModel,
    LinkSpec,
    Network,
    Transport,
    TransportClosed,
)


def make_network(rtt=20.0, bandwidth=1e9):
    latency = LatencyModel(default=LinkSpec(rtt_ms=rtt, bandwidth_bpms=bandwidth))
    return Network(loop=EventLoop(), latency=latency)


class TestHost:
    def test_requires_address(self):
        with pytest.raises(ValueError):
            Host("h", "us", [])

    def test_primary_address_is_first(self):
        host = Host("h", "us", ["10.0.0.1", "10.0.0.2"])
        assert host.primary_address == "10.0.0.1"


class TestHostRegistry:
    def test_lookup_by_name_and_address(self):
        net = make_network()
        host = net.add_host(Host("server", "us", ["10.0.0.1"]))
        assert net.host("server") is host
        assert net.host_for_address("10.0.0.1") is host

    def test_duplicate_name_rejected(self):
        net = make_network()
        net.add_host(Host("server", "us", ["10.0.0.1"]))
        with pytest.raises(ValueError):
            net.add_host(Host("server", "us", ["10.0.0.2"]))

    def test_duplicate_address_rejected(self):
        net = make_network()
        net.add_host(Host("a", "us", ["10.0.0.1"]))
        with pytest.raises(ValueError):
            net.add_host(Host("b", "us", ["10.0.0.1"]))

    def test_add_and_remove_address(self):
        net = make_network()
        host = net.add_host(Host("a", "us", ["10.0.0.1"]))
        net.add_address(host, "10.9.9.9")
        assert net.host_for_address("10.9.9.9") is host
        net.remove_address(host, "10.9.9.9")
        assert net.host_for_address("10.9.9.9") is None

    def test_remove_foreign_address_rejected(self):
        net = make_network()
        host = net.add_host(Host("a", "us", ["10.0.0.1"]))
        with pytest.raises(ValueError):
            net.remove_address(host, "10.0.0.99")


class TestConnect:
    def test_connect_completes_after_one_rtt(self):
        net = make_network(rtt=20.0)
        server = net.add_host(Host("server", "us", ["10.0.0.1"]))
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        accepted, connected = [], []
        net.listen(server, "10.0.0.1", 443, accepted.append)
        net.connect(client, "10.0.0.1", 443,
                    lambda t: connected.append(net.loop.now()))
        net.loop.run_until_idle()
        assert connected == [20.0]
        assert len(accepted) == 1

    def test_server_accepts_at_half_rtt(self):
        net = make_network(rtt=20.0)
        server = net.add_host(Host("server", "us", ["10.0.0.1"]))
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        accept_times = []
        net.listen(server, "10.0.0.1", 443,
                   lambda t: accept_times.append(net.loop.now()))
        net.connect(client, "10.0.0.1", 443, lambda t: None)
        net.loop.run_until_idle()
        assert accept_times == [10.0]

    def test_refused_when_no_listener(self):
        net = make_network()
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        errors = []
        net.connect(client, "10.0.0.9", 443, lambda t: None,
                    on_refused=errors.append)
        net.loop.run_until_idle()
        assert len(errors) == 1
        assert isinstance(errors[0], ConnectionRefused)

    def test_listen_requires_owned_address(self):
        net = make_network()
        host = net.add_host(Host("server", "us", ["10.0.0.1"]))
        with pytest.raises(ValueError):
            net.listen(host, "10.0.0.99", 443, lambda t: None)

    def test_duplicate_listener_rejected(self):
        net = make_network()
        host = net.add_host(Host("server", "us", ["10.0.0.1"]))
        net.listen(host, "10.0.0.1", 443, lambda t: None)
        with pytest.raises(ValueError):
            net.listen(host, "10.0.0.1", 443, lambda t: None)

    def test_connection_counters(self):
        net = make_network()
        server = net.add_host(Host("server", "us", ["10.0.0.1"]))
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        service = net.listen(server, "10.0.0.1", 443, lambda t: None)
        for _ in range(3):
            net.connect(client, "10.0.0.1", 443, lambda t: None)
        net.loop.run_until_idle()
        assert net.connections_opened == 3
        assert service.connections_accepted == 3


class TestTransportDataFlow:
    def _connected_pair(self, net):
        server = net.add_host(Host("server", "us", ["10.0.0.1"]))
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        ends = {}
        net.listen(server, "10.0.0.1", 443,
                   lambda t: ends.__setitem__("server", t))
        net.connect(client, "10.0.0.1", 443,
                    lambda t: ends.__setitem__("client", t))
        net.loop.run_until_idle()
        return ends["client"], ends["server"]

    def test_round_trip_bytes(self):
        net = make_network(rtt=20.0)
        client_end, server_end = self._connected_pair(net)
        received = []
        server_end.on_data = received.append
        client_end.send(b"hello")
        net.loop.run_until_idle()
        assert received == [b"hello"]

    def test_delivery_takes_one_way_delay(self):
        net = make_network(rtt=20.0)
        client_end, server_end = self._connected_pair(net)
        arrival = []
        server_end.on_data = lambda d: arrival.append(net.loop.now())
        start = net.loop.now()
        client_end.send(b"x")
        net.loop.run_until_idle()
        assert arrival == [pytest.approx(start + 10.0)]

    def test_in_order_delivery_despite_serialization(self):
        # A large chunk followed by a small one: the small one must not
        # overtake the large one even though its serialization is faster.
        net = make_network(rtt=20.0, bandwidth=10.0)  # 10 bytes/ms
        client_end, server_end = self._connected_pair(net)
        received = []
        server_end.on_data = received.append
        client_end.send(b"L" * 1000)  # 100ms serialization
        client_end.send(b"s")
        net.loop.run_until_idle()
        assert received == [b"L" * 1000, b"s"]

    def test_byte_counters(self):
        net = make_network()
        client_end, server_end = self._connected_pair(net)
        server_end.on_data = lambda d: None
        client_end.send(b"12345")
        net.loop.run_until_idle()
        assert client_end.bytes_sent == 5
        assert server_end.bytes_received == 5

    def test_send_after_close_raises(self):
        net = make_network()
        client_end, _ = self._connected_pair(net)
        client_end.close()
        with pytest.raises(TransportClosed):
            client_end.send(b"x")

    def test_close_notifies_peer_after_delay(self):
        net = make_network(rtt=20.0)
        client_end, server_end = self._connected_pair(net)
        closed_at = []
        server_end.on_close = lambda: closed_at.append(net.loop.now())
        start = net.loop.now()
        client_end.close()
        net.loop.run_until_idle()
        assert closed_at == [start + 10.0]

    def test_abort_closes_both_ends_immediately(self):
        net = make_network()
        client_end, server_end = self._connected_pair(net)
        client_end.abort()
        assert client_end.closed and server_end.closed

    def test_double_close_is_noop(self):
        net = make_network()
        client_end, _ = self._connected_pair(net)
        client_end.close()
        client_end.close()  # must not raise
        net.loop.run_until_idle()

    def test_data_to_closed_peer_is_dropped(self):
        net = make_network(rtt=20.0)
        client_end, server_end = self._connected_pair(net)
        received = []
        server_end.on_data = received.append
        client_end.send(b"in-flight")
        server_end.closed = True  # peer goes away before delivery
        net.loop.run_until_idle()
        assert received == []

    def test_empty_send_is_noop(self):
        net = make_network()
        client_end, server_end = self._connected_pair(net)
        client_end.send(b"")
        net.loop.run_until_idle()
        assert server_end.bytes_received == 0


class TestNetworkTap:
    def test_tap_sees_new_connections(self):
        net = make_network()
        server = net.add_host(Host("server", "us", ["10.0.0.1"]))
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        net.listen(server, "10.0.0.1", 443, lambda t: None)
        seen = []
        net.add_tap(lambda host, ip, port, c, s: seen.append((host.name, ip, port)))
        net.connect(client, "10.0.0.1", 443, lambda t: None)
        net.loop.run_until_idle()
        assert seen == [("client", "10.0.0.1", 443)]

    def test_tap_can_be_removed(self):
        net = make_network()
        server = net.add_host(Host("server", "us", ["10.0.0.1"]))
        client = net.add_host(Host("client", "us", ["10.1.0.1"]))
        net.listen(server, "10.0.0.1", 443, lambda t: None)
        seen = []
        tap = lambda host, ip, port, c, s: seen.append(ip)
        net.add_tap(tap)
        net.remove_tap(tap)
        net.connect(client, "10.0.0.1", 443, lambda t: None)
        net.loop.run_until_idle()
        assert seen == []
