"""Tests for the CT log, handshake model, and OCSP responder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tlspki import (
    CertificateAuthority,
    CtLog,
    HandshakeConfig,
    OcspResponder,
    OcspStatus,
    TLS_RECORD_SIZE,
    TlsVersion,
    simulate_handshake,
)
from repro.tlspki.ctlog import verify_inclusion
from repro.tlspki.handshake import INITIAL_CWND_BYTES, chain_bytes


@pytest.fixture
def ca():
    return CertificateAuthority("Test CA", rng=np.random.default_rng(1))


def issue_many(ca, count):
    return [ca.issue(f"site{i}.example.com", ()) for i in range(count)]


class TestCtLog:
    def test_append_returns_sequential_indices(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 3)
        assert [log.append(c) for c in certs] == [0, 1, 2]
        assert log.tree_size == 3

    def test_root_changes_on_append(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 2)
        log.append(certs[0])
        r1 = log.root_hash()
        log.append(certs[1])
        assert log.root_hash() != r1

    def test_historical_roots_are_stable(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 5)
        roots = []
        for cert in certs:
            log.append(cert)
            roots.append(log.root_hash())
        for size, root in enumerate(roots, start=1):
            assert log.root_hash(size) == root

    def test_inclusion_proofs_verify(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 7)
        for cert in certs:
            log.append(cert)
        for index, cert in enumerate(certs):
            proof = log.inclusion_proof(index)
            assert log.verify_inclusion(cert, proof)

    def test_inclusion_proof_fails_for_wrong_cert(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 4)
        for cert in certs:
            log.append(cert)
        proof = log.inclusion_proof(0)
        assert not log.verify_inclusion(certs[1], proof)

    def test_module_level_verify(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 4)
        for cert in certs:
            log.append(cert)
        proof = log.inclusion_proof(2)
        entry = certs[2].fingerprint().encode("ascii")
        assert verify_inclusion(entry, proof, log.root_hash())

    def test_historical_inclusion_proof(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 6)
        for cert in certs:
            log.append(cert)
        proof = log.inclusion_proof(1, tree_size=3)
        assert log.verify_inclusion(certs[1], proof)

    def test_consistency_proofs_verify(self, ca):
        log = CtLog("op")
        for cert in issue_many(ca, 9):
            log.append(cert)
        for old in (1, 2, 5, 9):
            proof = log.consistency_proof(old)
            assert log.verify_consistency(proof)

    def test_invalid_proof_requests_rejected(self, ca):
        log = CtLog("op")
        log.append(issue_many(ca, 1)[0])
        with pytest.raises(ValueError):
            log.inclusion_proof(5)
        with pytest.raises(ValueError):
            log.consistency_proof(0)
        with pytest.raises(ValueError):
            log.root_hash(10)

    def test_append_window_counting(self, ca):
        log = CtLog("op")
        certs = issue_many(ca, 4)
        times = [0.0, 10.0, 20.0, 30.0]
        for cert, t in zip(certs, times):
            log.append(cert, now=t)
        assert log.appends_in_window(5.0, 25.0) == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=40))
    def test_all_leaves_provable_at_any_size(self, n):
        ca = CertificateAuthority("Prop CA", rng=np.random.default_rng(n))
        log = CtLog("op")
        certs = issue_many(ca, n)
        for cert in certs:
            log.append(cert)
        for index in range(n):
            proof = log.inclusion_proof(index)
            assert log.verify_inclusion(certs[index], proof)


class TestHandshake:
    def small_chain(self, ca):
        leaf = ca.issue("www.example.com", ())
        return ca.chain_for(leaf)

    def test_tls13_uses_one_rtt(self, ca):
        result = simulate_handshake(
            self.small_chain(ca),
            HandshakeConfig(version=TlsVersion.TLS13, rtt_ms=30.0),
        )
        assert result.rtts_used == 1.0

    def test_tls12_uses_two_rtts(self, ca):
        result = simulate_handshake(
            self.small_chain(ca),
            HandshakeConfig(version=TlsVersion.TLS12, rtt_ms=30.0),
        )
        assert result.rtts_used == 2.0

    def test_duration_scales_with_rtt(self, ca):
        chain = self.small_chain(ca)
        fast = simulate_handshake(chain, HandshakeConfig(rtt_ms=10.0))
        slow = simulate_handshake(chain, HandshakeConfig(rtt_ms=100.0))
        assert slow.duration_ms > fast.duration_ms

    def test_resumed_tls13_is_free(self, ca):
        result = simulate_handshake(
            self.small_chain(ca),
            HandshakeConfig(resumed=True, sni_hostname="www.example.com"),
        )
        assert result.duration_ms == 0.0
        assert result.signature_checks == 0

    def test_large_certificate_spills_records_and_flights(self):
        ca = CertificateAuthority(
            "Big CA",
            policy=__import__(
                "repro.tlspki.ca", fromlist=["IssuancePolicy"]
            ).IssuancePolicy(max_san_names=10_000),
        )
        names = tuple(f"host-{i:05d}.example.com" for i in range(2_000))
        leaf = ca.issue("www.example.com", names)
        chain = ca.chain_for(leaf)
        assert chain_bytes(chain) > TLS_RECORD_SIZE
        result = simulate_handshake(chain, HandshakeConfig(rtt_ms=30.0))
        assert result.records_needed > 1
        assert result.extra_flights >= 1
        small = simulate_handshake(
            ca.chain_for(ca.issue("small.example.com", ())),
            HandshakeConfig(rtt_ms=30.0),
        )
        assert result.duration_ms > small.duration_ms + 30.0

    def test_flights_follow_cwnd(self, ca):
        chain = self.small_chain(ca)
        assert chain_bytes(chain) + 1500 < INITIAL_CWND_BYTES
        result = simulate_handshake(chain, HandshakeConfig())
        assert result.extra_flights == 0

    def test_sni_leaks_without_ech(self, ca):
        result = simulate_handshake(
            self.small_chain(ca),
            HandshakeConfig(sni_hostname="secret.example.com"),
        )
        assert result.sni_leaked
        assert result.sni_plaintext == "secret.example.com"

    def test_ech_hides_sni(self, ca):
        result = simulate_handshake(
            self.small_chain(ca),
            HandshakeConfig(sni_hostname="secret.example.com",
                            ech_enabled=True),
        )
        assert not result.sni_leaked

    def test_cpu_cost_scales_with_chain(self, ca):
        result = simulate_handshake(self.small_chain(ca), HandshakeConfig())
        assert result.signature_checks == 2
        assert result.cpu_ms == pytest.approx(2 * 0.15)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            HandshakeConfig(rtt_ms=-1.0)
        with pytest.raises(ValueError):
            HandshakeConfig(bandwidth_bpms=0.0)


class TestOcsp:
    def test_registered_certificate_is_good(self, ca):
        responder = OcspResponder()
        cert = ca.issue("www.example.com", ())
        responder.register(cert)
        assert responder.status(cert) is OcspStatus.GOOD

    def test_unknown_certificate(self, ca):
        responder = OcspResponder()
        cert = ca.issue("www.example.com", ())
        assert responder.status(cert) is OcspStatus.UNKNOWN

    def test_revocation(self, ca):
        responder = OcspResponder()
        cert = ca.issue("www.example.com", ())
        responder.register(cert)
        responder.revoke(cert, now=500.0)
        assert responder.status(cert) is OcspStatus.REVOKED
        assert responder.revocation_time(cert) == 500.0

    def test_revoking_unknown_certificate_raises(self, ca):
        responder = OcspResponder()
        cert = ca.issue("www.example.com", ())
        with pytest.raises(KeyError):
            responder.revoke(cert)

    def test_staple_verifies_when_fresh_and_good(self, ca):
        responder = OcspResponder()
        cert = ca.issue("www.example.com", ())
        responder.register(cert)
        staple = responder.staple(cert, now=0.0)
        assert responder.verify_staple(cert, staple, now=1000.0)

    def test_stale_staple_rejected(self, ca):
        responder = OcspResponder(staple_lifetime_ms=100.0)
        cert = ca.issue("www.example.com", ())
        responder.register(cert)
        staple = responder.staple(cert, now=0.0)
        assert not responder.verify_staple(cert, staple, now=200.0)

    def test_staple_for_other_cert_rejected(self, ca):
        responder = OcspResponder()
        a = ca.issue("a.example.com", ())
        b = ca.issue("b.example.com", ())
        responder.register(a)
        responder.register(b)
        staple = responder.staple(a, now=0.0)
        assert not responder.verify_staple(b, staple, now=1.0)

    def test_query_counter(self, ca):
        responder = OcspResponder()
        cert = ca.issue("www.example.com", ())
        responder.register(cert)
        responder.status(cert)
        responder.status(cert)
        assert responder.queries == 2
