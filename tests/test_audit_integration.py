"""End-to-end audit guarantees: determinism across ``--jobs``, one
decision per request, and the acceptance criterion -- the per-reason
breakdown reconciles *exactly* with the measured-vs-ideal Figure 3
gaps, for every policy."""

import json

import pytest

from repro.audit import ReasonCode, events_to_jsonl
from repro.audit.diff import diff_decisions, render_diff
from repro.audit.explain import render_explanation
from repro.audit.reconcile import (
    METRICS,
    decision_index,
    reconcile_result,
)
from repro.cli import main
from repro.core.predictions import figure3
from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import CrawlParams, ParallelCrawler

CONFIG = DatasetConfig(site_count=8, seed=11)

ALL_POLICIES = ("chromium", "firefox", "firefox+origin",
                "ideal-origin", "none")


def audited_crawl(policy, jobs=1):
    crawler = ParallelCrawler(
        CONFIG, CrawlParams(policy=policy, speculative_rate=0.10),
        shard_count=2, jobs=jobs,
    )
    return crawler.crawl_traced(trace=False, audit=True)


@pytest.fixture(scope="module")
def audited():
    """One audited crawl per policy, shared across the module."""
    return {policy: audited_crawl(policy) for policy in ALL_POLICIES}


class TestDeterminism:
    def test_audit_jsonl_byte_identical_across_jobs(self, audited):
        _, serial = audited["chromium"]
        _, parallel = audited_crawl("chromium", jobs=2)
        assert serial.audit_jsonl() == parallel.audit_jsonl()
        assert serial.audit_jsonl()  # non-empty

    def test_audit_diff_clean_across_jobs(self, audited):
        _, serial = audited["chromium"]
        _, parallel = audited_crawl("chromium", jobs=2)
        diff = diff_decisions(serial.audit, parallel.audit)
        assert diff.clean
        assert diff.common > 0
        assert "no changes" in render_diff(diff)

    def test_events_merge_in_shard_order_with_dense_seqs(self, audited):
        _, trace = audited["chromium"]
        assert [event.seq for event in trace.audit] \
            == list(range(len(trace.audit)))
        shards = [event.shard for event in trace.audit]
        assert shards == sorted(shards)


class TestDecisionCoverage:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_request_gets_exactly_one_decision(
        self, audited, policy
    ):
        result, trace = audited[policy]
        decisions = decision_index(trace.audit)
        entries = {
            (archive.page.url, entry.hostname, entry.path)
            for archive in result.archives
            for entry in archive.entries
        }
        assert set(decisions) == entries
        decision_events = [e for e in trace.audit
                           if e.kind == "decision"]
        total_entries = sum(len(archive.entries)
                            for archive in result.archives)
        assert len(decision_events) == total_entries

    def test_all_reason_codes_are_taxonomy_members(self, audited):
        values = {code.value for code in ReasonCode}
        for policy in ALL_POLICIES:
            _, trace = audited[policy]
            assert {event.reason for event in trace.audit} <= values


class TestExactReconciliation:
    """The acceptance criterion: per-reason counts decompose the
    Figure 3 measured-vs-ideal gaps exactly, under every policy."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_breakdown_reconciles_with_figure3(self, audited, policy):
        result, trace = audited[policy]
        breakdowns = reconcile_result(result.archives, trace.audit)
        fig = figure3(result.archives)
        for model in ("origin", "ip"):
            ideal = fig.ideal_origin if model == "origin" \
                else fig.ideal_ip
            for metric in METRICS:
                b = breakdowns[model][metric]
                assert b.reconciles(), (policy, model, metric)
                assert b.ideal == sum(ideal)
                if metric == "dns":
                    assert b.measured == sum(fig.measured_dns)
                else:
                    assert b.measured == sum(fig.measured_tls)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_no_unattributed_spends(self, audited, policy):
        result, trace = audited[policy]
        breakdowns = reconcile_result(result.archives, trace.audit)
        for model in ("origin", "ip"):
            for metric in METRICS:
                b = breakdowns[model][metric]
                assert b.excess[
                    ReasonCode.MISS_UNATTRIBUTED.value
                ] == 0, (policy, model, metric)

    def test_validations_mirror_tls(self, audited):
        result, trace = audited["chromium"]
        breakdowns = reconcile_result(result.archives, trace.audit)
        for model in ("origin", "ip"):
            tls = breakdowns[model]["tls"]
            val = breakdowns[model]["validations"]
            assert (val.measured, val.ideal) == (tls.measured, tls.ideal)
            assert val.excess == tls.excess
            assert val.credits == tls.credits

    def test_rendered_report_shows_reconciled_tables(self, audited):
        result, trace = audited["chromium"]
        report = render_explanation(result.archives, trace.audit,
                                    pages=1)
        assert "gap = sum(excess) - sum(credits)" in report
        assert "DOES NOT RECONCILE" not in report
        assert "more pages not shown" in report


class TestCliIntegration:
    def run(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_explain_stdout_is_report_only(self, capsys, tmp_path):
        code, out, err = self.run(capsys, [
            "explain", "--sites", "6", "--seed", "11",
            "--cache-dir", str(tmp_path), "--pages", "1",
        ])
        assert code == 0
        assert "page https://" in out
        assert "legend:" in out
        assert "gap vs ideal-origin" in out
        assert "gap vs ideal-ip" in out
        # Diagnostics are stderr-only (PR 2 convention).
        assert "explain:" in err
        assert "audit events" in err
        assert "explain:" not in out
        assert "cache:" not in out

    def test_explain_breakdown_subset(self, capsys, tmp_path):
        code, out, _ = self.run(capsys, [
            "explain", "--sites", "6", "--seed", "11",
            "--cache-dir", str(tmp_path), "--pages", "0",
            "--breakdown", "tls",
        ])
        assert code == 0
        assert "tls gap vs ideal-origin" in out
        assert "dns gap" not in out

    def test_explain_taxonomy(self, capsys):
        code, out, err = self.run(capsys, ["explain", "--taxonomy"])
        assert code == 0
        for reason in ReasonCode:
            assert reason.value in out

    def test_crawl_audit_export_and_diff_clean(
        self, capsys, tmp_path
    ):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        base = ["crawl", "--sites", "6", "--seed", "11",
                "--cache-dir", str(tmp_path)]
        assert main(base + ["--audit", str(a)]) == 0
        assert main(base + ["--audit", str(b), "--jobs", "2"]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        code, out, err = self.run(
            capsys, ["audit-diff", str(a), str(b)]
        )
        assert code == 0
        assert "no changes" in out

    def test_audit_diff_reports_changes(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(["crawl", "--sites", "6", "--seed", "11",
                     "--cache-dir", str(tmp_path),
                     "--audit", str(a)]) == 0
        assert main(["crawl", "--sites", "6", "--seed", "12",
                     "--cache-dir", str(tmp_path),
                     "--audit", str(b)]) == 0
        capsys.readouterr()
        code, out, _ = self.run(
            capsys, ["audit-diff", str(a), str(b)]
        )
        assert code == 1
        assert "decisions compared" in out

    def test_audit_diff_rejects_unknown_code(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        doc = {"seq": 0, "kind": "decision", "reason": "MISS_BOGUS",
               "at_ms": 0.0, "shard": 0}
        a.write_text(json.dumps(doc) + "\n")
        code, out, err = self.run(
            capsys, ["audit-diff", str(a), str(a)]
        )
        assert code == 2
        assert "MISS_BOGUS" in err
        assert out == ""

    def test_audit_diff_missing_file(self, capsys, tmp_path):
        code, _, err = self.run(capsys, [
            "audit-diff", str(tmp_path / "missing.jsonl"),
            str(tmp_path / "missing.jsonl"),
        ])
        assert code == 2
        assert err


class TestJsonlExportMatchesTrace:
    def test_audit_jsonl_is_canonical(self, audited):
        _, trace = audited["chromium"]
        assert trace.audit_jsonl() == events_to_jsonl(trace.audit)
