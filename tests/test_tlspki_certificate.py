"""Unit + property tests for certificates and hostname matching."""

import pytest
from hypothesis import given, strategies as st

from repro.tlspki import (
    Certificate,
    CertificateError,
    estimate_certificate_size,
    hostname_matches,
)
from repro.tlspki.certificate import (
    BASE_CERTIFICATE_BYTES,
    SAN_ENTRY_OVERHEAD_BYTES,
)


def make_cert(**kwargs):
    defaults = dict(
        subject="www.example.com",
        san=("www.example.com", "example.com"),
        issuer="Test CA",
        serial=1,
        not_before=0.0,
        not_after=1000.0,
    )
    defaults.update(kwargs)
    return Certificate(**defaults)


class TestHostnameMatching:
    @pytest.mark.parametrize(
        "pattern,hostname,expected",
        [
            ("www.example.com", "www.example.com", True),
            ("www.example.com", "WWW.EXAMPLE.COM", True),
            ("www.example.com", "example.com", False),
            ("*.example.com", "foo.example.com", True),
            ("*.example.com", "example.com", False),
            ("*.example.com", "a.b.example.com", False),
            ("*.cdnjs.cloudflare.com", "x.cdnjs.cloudflare.com", True),
            ("f*o.example.com", "foo.example.com", False),  # partial wildcard
            ("*.*.example.com", "a.b.example.com", False),  # double wildcard
            ("", "example.com", False),
            ("example.com", "", False),
        ],
    )
    def test_matching_rules(self, pattern, hostname, expected):
        assert hostname_matches(pattern, hostname) is expected

    @given(st.from_regex(r"[a-z]{1,10}(\.[a-z]{1,10}){1,3}", fullmatch=True))
    def test_exact_match_is_reflexive(self, name):
        assert hostname_matches(name, name)

    @given(st.from_regex(r"[a-z]{1,10}\.[a-z]{1,10}\.[a-z]{2,3}",
                         fullmatch=True))
    def test_wildcard_covers_any_single_left_label(self, name):
        parent = name.split(".", 1)[1]
        assert hostname_matches("*." + parent, name)


class TestCertificate:
    def test_san_is_normalized(self):
        cert = make_cert(san=("WWW.Example.COM.",))
        assert cert.san == ("www.example.com",)

    def test_empty_validity_rejected(self):
        with pytest.raises(CertificateError):
            make_cert(not_before=10.0, not_after=10.0)

    def test_empty_subject_rejected(self):
        with pytest.raises(CertificateError):
            make_cert(subject="")

    def test_empty_san_entry_rejected(self):
        with pytest.raises(CertificateError):
            make_cert(san=("",))

    def test_malformed_wildcard_rejected(self):
        with pytest.raises(CertificateError):
            make_cert(san=("foo.*.example.com",))

    def test_covers_consults_san_only(self):
        cert = make_cert(subject="cn-only.example.com", san=("other.example.com",))
        assert not cert.covers("cn-only.example.com")
        assert cert.covers("other.example.com")

    def test_empty_san_falls_back_to_subject_cn(self):
        cert = make_cert(san=())
        assert cert.covers("www.example.com")  # subject CN, legacy match
        assert not cert.covers("other.example.com")
        assert cert.san_count == 0

    def test_with_added_san_appends_and_dedupes(self):
        cert = make_cert()
        updated = cert.with_added_san("cdn.example.com", "www.example.com")
        assert updated.san == (
            "www.example.com", "example.com", "cdn.example.com",
        )

    def test_with_added_san_clears_signature(self):
        cert = make_cert(signature=b"sig")
        assert cert.with_added_san("new.example.com").signature == b""

    def test_validity_window(self):
        cert = make_cert(not_before=100.0, not_after=200.0)
        assert not cert.valid_at(50.0)
        assert cert.valid_at(100.0)
        assert cert.valid_at(200.0)
        assert not cert.valid_at(201.0)

    def test_size_grows_with_san(self):
        small = make_cert(san=("a.example.com",))
        big = small.with_added_san(*[f"host{i}.example.com" for i in range(50)])
        assert big.size_bytes > small.size_bytes

    def test_size_formula(self):
        names = ("www.example.com", "cdn.example.com")
        expected = BASE_CERTIFICATE_BYTES + sum(
            len(n) + SAN_ENTRY_OVERHEAD_BYTES for n in names
        )
        assert estimate_certificate_size(names) == expected
        assert make_cert(san=names).size_bytes == expected

    def test_fingerprint_changes_with_content(self):
        a = make_cert()
        b = make_cert(serial=2)
        assert a.fingerprint() != b.fingerprint()

    def test_tbs_bytes_deterministic(self):
        assert make_cert().tbs_bytes() == make_cert().tbs_bytes()

    @given(
        st.lists(
            st.from_regex(r"[a-z]{1,8}\.[a-z]{1,8}\.[a-z]{2,3}",
                          fullmatch=True),
            min_size=0,
            max_size=20,
            unique=True,
        )
    )
    def test_covers_every_literal_san_entry(self, names):
        cert = make_cert(san=tuple(names) or ("placeholder.example.com",))
        for name in cert.san:
            assert cert.covers(name)
