"""Unit tests for repro.telemetry: tracer, metrics, exporters."""

import json
import math

import pytest

from repro.telemetry import (
    CrawlTrace,
    MetricsRegistry,
    NULL_TELEMETRY,
    NULL_TRACER,
    RegistryStats,
    Span,
    Telemetry,
    Tracer,
)
from repro.telemetry.exporters import (
    CATEGORY_TIDS,
    chrome_trace_document,
    chrome_trace_events,
    render_metrics_summary,
    spans_from_jsonl,
    spans_to_jsonl,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestTracer:
    def test_begin_end_records_interval(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.begin("fetch", category="browser", hostname="a.com")
        clock.t = 12.5
        tracer.end(span, status=200)
        assert span.start_ms == 0.0
        assert span.end_ms == 12.5
        assert span.duration_ms == 12.5
        assert span.attrs == {"hostname": "a.com", "status": 200}

    def test_ids_sequential_and_parenting(self):
        tracer = Tracer(FakeClock())
        parent = tracer.begin("site")
        child = tracer.begin("fetch", parent=parent)
        assert parent.span_id == 0
        assert child.span_id == 1
        assert child.parent_id == 0

    def test_instant_has_zero_duration(self):
        clock = FakeClock()
        clock.t = 3.0
        span = Tracer(clock).instant("pool.lookup", hit=True)
        assert span.finished
        assert span.start_ms == span.end_ms == 3.0

    def test_context_manager_span(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("work") as span:
            clock.t = 5.0
        assert span.end_ms == 5.0

    def test_unfinished_span_not_in_finished_spans(self):
        tracer = Tracer(FakeClock())
        open_span = tracer.begin("a")
        done = tracer.begin("b")
        tracer.end(done)
        assert done in tracer.finished_spans()
        assert open_span not in tracer.finished_spans()

    def test_span_round_trips_through_dict(self):
        span = Span(span_id=7, name="fetch", category="browser",
                    start_ms=1.0, end_ms=2.0, parent_id=3, shard=2,
                    attrs={"status": 200})
        assert Span.from_dict(span.to_dict()) == span

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.begin("anything", foo=1)
        NULL_TRACER.end(span, bar=2)
        NULL_TRACER.instant("x")
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.finished_spans() == []

    def test_telemetry_bundles_tracer_and_metrics(self):
        telemetry = Telemetry(clock=FakeClock())
        assert telemetry.tracer.enabled
        assert isinstance(telemetry.metrics, MetricsRegistry)
        assert NULL_TELEMETRY.tracer is NULL_TRACER


class TestMetricsRegistry:
    def test_counter_identity_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("dns.queries")
        counter.inc()
        counter.inc(2)
        assert registry.counter("dns.queries") is counter
        assert registry.value("dns.queries") == 3

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", shard=0).inc()
        registry.counter("hits", shard=1).inc(5)
        assert registry.value("hits", shard=0) == 1
        assert registry.value("hits", shard=1) == 5

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_percentiles_conservative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10.0, 100.0))
        for value in (1.0, 2.0, 3.0, 250.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.percentile(0.5) == 10.0
        assert histogram.percentile(1.0) == 250.0  # inf bucket -> max
        assert histogram.min == 1.0 and histogram.max == 250.0

    def test_percentile_extremes_are_exact(self):
        histogram = MetricsRegistry().histogram(
            "lat", buckets=(10.0, 100.0)
        )
        for value in (3.0, 7.0, 42.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 3.0
        assert histogram.percentile(-0.5) == 3.0
        assert histogram.percentile(1.0) == 42.0
        assert histogram.percentile(1.5) == 42.0

    def test_percentile_empty_histogram_reads_zero(self):
        histogram = MetricsRegistry().histogram("lat")
        assert histogram.percentile(0.0) == 0.0
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(1.0) == 0.0

    def test_percentile_clamped_to_observed_max(self):
        # The p90 bucket bound (200) exceeds every observation; the
        # estimate must not report latency the run never saw.
        histogram = MetricsRegistry().histogram(
            "lat", buckets=(100.0, 200.0)
        )
        for value in (120.0, 130.0, 140.0):
            histogram.observe(value)
        assert histogram.percentile(0.9) == 140.0

    def test_observe_bisect_matches_bucket_semantics(self):
        # Upper-bound buckets: a value exactly on a bound lands in
        # that bound's bucket (bisect_left keeps the linear-scan
        # behaviour of `value <= bound`).
        histogram = MetricsRegistry().histogram(
            "lat", buckets=(10.0, 100.0)
        )
        histogram.observe(10.0)
        histogram.observe(10.5)
        histogram.observe(2500.0)
        assert histogram.bucket_counts == [1, 1, 1]

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(3.0)
        text = json.dumps(registry.snapshot())
        assert "Infinity" not in text

    def test_absorb_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.absorb(b)
        assert a.value("c") == 3
        assert a.value("g") == 9

    def test_absorb_merges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(5.0)
        b.histogram("h").observe(500.0)
        a.absorb(b.snapshot())
        merged = a.histogram("h")
        assert merged.count == 2
        assert merged.min == 5.0 and merged.max == 500.0

    def test_absorb_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, math.inf)).observe(0.5)
        b.histogram("h", buckets=(2.0, math.inf)).observe(0.5)
        with pytest.raises(ValueError):
            a.absorb(b)


class _DemoStats(RegistryStats):
    _prefix = "demo."
    _counters = ("hits", "misses")


class TestRegistryStats:
    def test_attribute_api(self):
        stats = _DemoStats()
        assert stats.hits == 0
        stats.hits += 1
        stats.hits += 1
        stats.misses = 7
        assert stats.hits == 2
        assert stats.misses == 7

    def test_backed_by_registry_series(self):
        stats = _DemoStats()
        stats.hits += 3
        assert stats.registry.value("demo.hits") == 3

    def test_shared_registry_with_labels(self):
        registry = MetricsRegistry()
        a = _DemoStats(registry=registry, pool="a")
        b = _DemoStats(registry=registry, pool="b")
        a.hits += 1
        b.hits += 5
        assert registry.value("demo.hits", pool="a") == 1
        assert registry.value("demo.hits", pool="b") == 5

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            _DemoStats().bogus


class TestExporters:
    def _spans(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        a = tracer.begin("site", category="crawler", url="u")
        b = tracer.begin("dns.query", category="dns", parent=a)
        clock.t = 4.0
        tracer.end(b, wire=True)
        clock.t = 10.0
        tracer.end(a)
        tracer.instant("pool.lookup", category="pool", hit=False)
        return tracer.spans

    def test_jsonl_round_trip(self):
        spans = self._spans()
        text = spans_to_jsonl(spans)
        assert text.endswith("\n")
        assert spans_from_jsonl(text) == spans
        assert spans_to_jsonl([]) == ""

    def test_jsonl_is_canonical(self):
        spans = self._spans()
        assert spans_to_jsonl(spans) == spans_to_jsonl(
            spans_from_jsonl(spans_to_jsonl(spans))
        )

    def test_chrome_events_complete_and_instant(self):
        events = chrome_trace_events(self._spans())
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2
        assert len(instants) == 1
        dns = next(e for e in complete if e["name"] == "dns.query")
        assert dns["ts"] == 0.0
        assert dns["dur"] == 4000.0  # 4 ms in µs
        assert dns["tid"] == CATEGORY_TIDS["dns"]

    def test_chrome_events_thread_metadata_per_shard(self):
        spans = self._spans()
        for span in spans:
            span.shard = 3
        events = chrome_trace_events(spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert {"ph": "M", "name": "process_name", "pid": 3, "tid": 0,
                "args": {"name": "crawl shard 3"}} in meta
        assert all(e["pid"] == 3 for e in events)

    def test_chrome_unfinished_span_flagged(self):
        tracer = Tracer(FakeClock())
        tracer.begin("open")
        events = chrome_trace_events(tracer.spans)
        span_events = [e for e in events if e["ph"] != "M"]
        assert span_events[0]["args"]["unfinished"] is True

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, self._spans())
        assert count == 3
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document == chrome_trace_document(self._spans())

    def test_render_metrics_summary(self):
        registry = MetricsRegistry()
        registry.counter("dns.queries").inc(4)
        registry.histogram("page.load_ms").observe(120.0)
        text = render_metrics_summary(registry)
        assert "dns.queries" in text
        assert "4" in text
        assert "page.load_ms" in text
        assert render_metrics_summary(MetricsRegistry()) \
            == "(no metrics recorded)"

    def test_summary_empty_histogram_renders_dash_max(self):
        registry = MetricsRegistry()
        registry.histogram("phase.dns")  # registered, never observed
        text = render_metrics_summary(registry)
        line = next(l for l in text.splitlines() if "phase.dns" in l)
        assert line.rstrip().endswith("-")  # Max column
        assert " 0 " in line  # Count column

    def test_summary_single_bucket_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(50.0,))
        histogram.observe(10.0)
        histogram.observe(20.0)
        text = render_metrics_summary(registry)
        line = next(l for l in text.splitlines() if l.startswith("h"))
        # p50/p90 land in the only finite bucket, clamped to max.
        assert "20.0" in line
        assert "15.0" in line  # mean

    def test_summary_renders_merged_shard_histograms(self):
        shard0, shard1, merged = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        )
        shard0.histogram("phase.ttfb", policy="chromium").observe(10.0)
        shard1.histogram("phase.ttfb", policy="chromium").observe(400.0)
        merged.absorb(shard0.snapshot())
        merged.absorb(shard1.snapshot())
        text = render_metrics_summary(merged)
        line = next(
            l for l in text.splitlines() if "phase.ttfb" in l
        )
        assert "policy=chromium" in line
        assert " 2 " in line  # merged count
        assert "400.0" in line  # merged max


class TestCrawlTrace:
    def test_extend_renumbers_and_tags_shards(self):
        trace = CrawlTrace()
        first = [Span(0, "a", "", 0.0, 1.0),
                 Span(1, "b", "", 0.0, 1.0, parent_id=0)]
        second = [Span(0, "c", "", 0.0, 1.0),
                  Span(1, "d", "", 0.0, 1.0, parent_id=0)]
        trace.extend(first, shard=0)
        trace.extend(second, shard=1)
        assert [s.span_id for s in trace.spans] == [0, 1, 2, 3]
        assert trace.spans[3].parent_id == 2
        assert [s.shard for s in trace.spans] == [0, 0, 1, 1]
