"""Secondary certificate frames (§6.5's alternative to large SANs)."""

import numpy as np
import pytest

from repro.h2 import H2ClientSession, H2Server, ServerConfig, \
    TlsClientConfig, UnknownFrame, parse_frame
from repro.h2.frames import (
    CertificateFrame,
    FLAG_TO_BE_CONTINUED,
    TYPE_CERTIFICATE,
)
from repro.h2.tls_channel import serialize_chain
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore


class TestCertificateFrameWire:
    def test_roundtrip(self):
        frame = CertificateFrame(cert_id=3, fragment=b"chunk")
        parsed, rest = parse_frame(frame.serialize())
        assert rest == b""
        assert isinstance(parsed, CertificateFrame)
        assert parsed.cert_id == 3
        assert parsed.fragment == b"chunk"
        assert not parsed.to_be_continued

    def test_continuation_flag(self):
        frame = CertificateFrame(cert_id=1, fragment=b"part",
                                 flags=FLAG_TO_BE_CONTINUED)
        parsed, _ = parse_frame(frame.serialize())
        assert parsed.to_be_continued

    def test_nonzero_stream_rejected_at_build(self):
        from repro.h2 import H2ConnectionError

        with pytest.raises(H2ConnectionError):
            CertificateFrame(stream_id=3, cert_id=1)

    def test_nonzero_stream_ignored_at_parse(self):
        body = bytes([1]) + b"x"
        header = bytes([0, 0, len(body), TYPE_CERTIFICATE, 0,
                        0, 0, 0, 5])
        parsed, _ = parse_frame(header + body)
        assert isinstance(parsed, UnknownFrame)


@pytest.fixture
def world():
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                              bandwidth_bpms=1e5)),
    )
    ca = CertificateAuthority("SC CA", rng=np.random.default_rng(6))
    trust = TrustStore([ca])
    edge = network.add_host(Host("edge", "us", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "us", ["10.9.0.1"]))

    # The primary certificate covers only the site itself...
    primary = ca.issue("www.example.com", ())
    # ...while a *secondary* chain carries the third party.
    secondary = ca.chain_for(ca.issue("thirdparty.cdn.com", ()))
    config = ServerConfig(
        chains=[ca.chain_for(primary)],
        serves=["www.example.com", "thirdparty.cdn.com"],
        origin_sets={"*": ("https://thirdparty.cdn.com",)},
        secondary_chains={"*": [secondary]},
    )
    server = H2Server(network, edge, config)
    server.listen_all()

    def session(secondary_certs=True):
        tls = TlsClientConfig(
            sni="www.example.com", trust_store=trust, authorities=[ca],
            now=network.loop.now,
        )
        return H2ClientSession(
            network, client_host, "10.0.0.1", tls,
            secondary_certs=secondary_certs,
        )

    return network, server, session, ca, trust


class TestSecondaryCertsEndToEnd:
    def test_client_receives_and_validates_chain(self, world):
        network, _, session, _, _ = world
        client = session()
        received = []
        client.on_secondary_certificate = received.append
        client.connect()
        network.loop.run_until_idle()
        assert len(received) == 1
        assert received[0].subject == "thirdparty.cdn.com"
        assert client.certificate_covers("thirdparty.cdn.com")
        # The primary leaf alone does not cover it.
        assert not client.leaf_certificate.covers("thirdparty.cdn.com")

    def test_coalescing_via_secondary_authority(self, world):
        """ORIGIN set + secondary certificate = coalescing without
        touching the site's primary certificate at all."""
        network, server, session, _, _ = world
        client = session()
        responses = []

        def go():
            client.request("www.example.com", "/", responses.append)
            client.request("thirdparty.cdn.com", "/lib.js",
                           responses.append)

        client.connect(on_ready=go)
        network.loop.run_until_idle()
        assert [r.status for r in responses] == [200, 200]
        assert server.stats.connections == 1
        assert client.origin_set_covers("thirdparty.cdn.com")

    def test_unaware_client_ignores_certificate_frames(self, world):
        network, _, session, _, _ = world
        client = session(secondary_certs=False)
        responses = []
        client.connect(
            on_ready=lambda: client.request("www.example.com", "/",
                                            responses.append)
        )
        network.loop.run_until_idle()
        assert responses[0].status == 200  # fail-open
        assert client.secondary_chains == []
        assert not client.certificate_covers("thirdparty.cdn.com")

    def test_untrusted_secondary_chain_discarded(self, world):
        network, server, session, ca, trust = world
        rogue = CertificateAuthority("Rogue", rng=np.random.default_rng(9))
        rogue_chain = rogue.chain_for(rogue.issue("evil.example.net", ()))
        server.config.secondary_chains["*"] = [rogue_chain]
        client = session()
        client.connect()
        network.loop.run_until_idle()
        assert client.secondary_chains == []
        assert not client.certificate_covers("evil.example.net")

    def test_large_chain_fragments_and_reassembles(self, world):
        network, server, session, ca, _ = world
        from repro.tlspki import IssuancePolicy

        # Issue from the trusted CA so validation passes; lift its SAN
        # cap for this bulk certificate.
        ca.policy = IssuancePolicy(max_san_names=5000)
        names = tuple(f"alt{i:04d}.example.net" for i in range(1500))
        big_leaf = ca.issue("bulk.example.net", names)
        big_chain = ca.chain_for(big_leaf)
        assert len(serialize_chain(big_chain)) > 16_384  # > 1 frame
        server.config.secondary_chains["*"] = [big_chain]
        client = session()
        client.connect()
        network.loop.run_until_idle()
        assert len(client.secondary_chains) == 1
        assert client.certificate_covers("alt0001.example.net")

    def test_primary_handshake_stays_small(self, world):
        """The draft's point: the TLS flight carries only the primary
        certificate; extra authority arrives post-handshake."""
        network, server, session, ca, _ = world
        client = session()
        client.connect()
        network.loop.run_until_idle()
        primary_bytes = sum(c.size_bytes for c in client.server_chain)
        secondary_bytes = sum(
            sum(c.size_bytes for c in chain)
            for chain in client.secondary_chains
        )
        assert secondary_bytes > 0
        # Primary flight did not grow with the secondary authority.
        assert primary_bytes < primary_bytes + secondary_bytes
        assert not client.leaf_certificate.covers("thirdparty.cdn.com")
