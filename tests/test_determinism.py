"""End-to-end determinism: identical seeds give identical results.

The whole point of the simulated substrate is bit-for-bit
reproducibility of every table and figure; this guards it.
"""

import pytest

from repro.browser import FirefoxPolicy
from repro.core import figure3, headline_reductions, plan_certificates
from repro.dataset import characterize
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world


def run_pipeline(seed=77, sites=25):
    world = build_world(DatasetConfig(site_count=sites, seed=seed))
    result = Crawler(world, policy=FirefoxPolicy(),
                     speculative_rate=0.10, seed=seed).crawl()
    return world, result


@pytest.fixture(scope="module")
def pipeline_a():
    return run_pipeline()


@pytest.fixture(scope="module")
def pipeline_b():
    return run_pipeline()


@pytest.fixture(scope="module")
def pipeline_other_seed():
    return run_pipeline(seed=78)


class TestDeterminism:
    def test_identical_seeds_identical_crawls(self, pipeline_a,
                                              pipeline_b):
        _, first = pipeline_a
        _, second = pipeline_b
        assert first.attempted == second.attempted
        assert first.success_count == second.success_count
        for a, b in zip(first.archives, second.archives):
            assert a.page.on_load == b.page.on_load
            assert a.dns_query_count() == b.dns_query_count()
            assert a.tls_connection_count() == b.tls_connection_count()
            assert [e.url for e in a.entries] == \
                [e.url for e in b.entries]
            assert [e.started_at for e in a.entries] == \
                [e.started_at for e in b.entries]

    def test_identical_seeds_identical_analyses(self, pipeline_a,
                                                pipeline_b):
        world_a, first = pipeline_a
        world_b, second = pipeline_b
        assert figure3(first.archives).medians() == \
            figure3(second.archives).medians()
        assert headline_reductions(first.archives) == \
            headline_reductions(second.archives)
        plan_a = plan_certificates(world_a)
        plan_b = plan_certificates(world_b)
        assert plan_a.unchanged_fraction == plan_b.unchanged_fraction
        assert plan_a.existing_san_counts() == \
            plan_b.existing_san_counts()

    def test_identical_seeds_identical_characterization(
        self, pipeline_a, pipeline_b
    ):
        _, first = pipeline_a
        _, second = pipeline_b
        assert characterize.table3(first.successes) == \
            characterize.table3(second.successes)
        assert characterize.table7(first.successes) == \
            characterize.table7(second.successes)

    def test_different_seeds_differ(self, pipeline_a,
                                    pipeline_other_seed):
        _, first = pipeline_a
        _, second = pipeline_other_seed
        assert [a.page.on_load for a in first.archives] != \
            [a.page.on_load for a in second.archives]
