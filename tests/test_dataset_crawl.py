"""Integration tests: world building, crawling, characterization."""

import numpy as np
import pytest

from repro.dataset import characterize
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world


@pytest.fixture(scope="module")
def crawl():
    """One shared 100-site crawl (module-scoped for speed)."""
    config = DatasetConfig(site_count=100, seed=2022)
    world = build_world(config)
    crawler = Crawler(world, speculative_rate=0.10)
    return world, crawler.crawl()


class TestWorldIntegrity:
    def test_every_site_materialized(self, crawl):
        world, _ = crawl
        assert len(world.sites) == 100

    def test_asdb_covers_every_server(self, crawl):
        world, _ = crawl
        for hosted in world.sites:
            for ip in hosted.root_ips:
                assert world.asdb.lookup(ip) is not None

    def test_provider_servers_shared_across_sites(self, crawl):
        world, _ = crawl
        cloudflare_sites = [
            hosted for hosted in world.sites
            if hosted.record.provider == "Cloudflare"
        ]
        if len(cloudflare_sites) >= 2:
            assert cloudflare_sites[0].server is cloudflare_sites[1].server

    def test_dns_resolves_every_page_hostname(self, crawl):
        world, _ = crawl
        resolver = world.make_resolver()
        for hosted in world.sites[:20]:
            for hostname in hosted.record.page.hostnames():
                answer = resolver.resolve_now(hostname)
                assert answer.addresses, hostname


class TestCrawlOutcomes:
    def test_success_rate_near_paper(self, crawl):
        _, result = crawl
        rate = result.success_count / result.attempted
        assert 0.5 <= rate <= 0.8  # paper: 63.5%

    def test_no_request_level_failures_on_successful_pages(self, crawl):
        _, result = crawl
        bad = [
            entry
            for archive in result.successes
            for entry in archive.entries
            if entry.status not in (200,)
        ]
        assert bad == []

    def test_inaccessible_sites_marked_failed(self, crawl):
        _, result = crawl
        failures = [a for a in result.archives if not a.page.success]
        assert failures
        assert all(a.request_count == 0 for a in failures)

    def test_medians_in_paper_ballpark(self, crawl):
        _, result = crawl
        ok = result.successes
        med_requests = np.median([a.request_count for a in ok])
        med_dns = np.median([a.dns_query_count() for a in ok])
        med_tls = np.median([a.tls_connection_count() for a in ok])
        assert 50 <= med_requests <= 130      # paper: 81
        assert 8 <= med_dns <= 22             # paper: 14
        assert 10 <= med_tls <= 30            # paper: 16
        assert med_tls >= med_dns             # races: TLS > DNS (§4.2)

    def test_page_load_times_order_of_magnitude(self, crawl):
        _, result = crawl
        plts = [a.page_load_time for a in result.successes]
        median = np.median(plts)
        assert 1000 <= median <= 10_000  # paper: 5746ms


class TestCharacterization:
    def test_table1_buckets_and_total(self, crawl):
        _, result = crawl
        rows = characterize.table1(result.archives)
        assert rows[-1].bucket_label == "Total"
        assert rows[-1].attempted == 100
        assert sum(r.attempted for r in rows[:-1]) == 100
        assert rows[-1].success == result.success_count

    def test_table2_top_ases(self, crawl):
        _, result = crawl
        rows = characterize.table2(result.successes)
        assert rows, "no AS data"
        shares = [share for _, _, _, share in rows]
        assert shares == sorted(shares, reverse=True)
        orgs = [org for _, org, _, _ in rows[:4]]
        assert "Google" in orgs  # Table 2's #1

    def test_table3_protocol_mix(self, crawl):
        _, result = crawl
        protocols, security = characterize.table3(result.successes)
        total = sum(protocols.values())
        assert protocols["h2"] / total > 0.60       # paper: 73.6%
        assert protocols["http/1.1"] / total > 0.08  # paper: 19.1%
        insecure_share = security["insecure"] / (
            security["secure"] + security["insecure"]
        )
        assert 0.002 < insecure_share < 0.04         # paper: 1.47%

    def test_table4_issuers(self, crawl):
        _, result = crawl
        rows, validations, total = characterize.table4(result.successes)
        assert validations > 0
        assert 0.05 < validations / total < 0.5  # paper: 16.24%
        issuers = [issuer for issuer, _, _ in rows]
        assert any("google trust" in issuer for issuer in issuers) or \
            any("let's encrypt" in issuer for issuer in issuers)

    def test_table5_content_types(self, crawl):
        _, result = crawl
        rows = characterize.table5(result.successes)
        top_types = [content_type for content_type, _, _ in rows[:5]]
        assert "application/javascript" in top_types  # Table 5's #1

    def test_table6_per_as_mix(self, crawl):
        _, result = crawl
        table = characterize.table6(result.successes)
        assert len(table) == 3
        for (asn, org), rows in table.items():
            assert rows
            shares = [share for _, _, share in rows]
            assert shares == sorted(shares, reverse=True)

    def test_table7_popular_hosts(self, crawl):
        _, result = crawl
        rows = characterize.table7(result.successes)
        hostnames = [hostname for hostname, _, _ in rows]
        # The Google staples dominate, as in Table 7.
        assert any("google" in hostname or "gstatic" in hostname
                   for hostname in hostnames[:4])

    def test_figure1_shape(self, crawl):
        _, result = crawl
        data = characterize.figure1(result.successes)
        assert data.cdf[-1][1] == pytest.approx(1.0)
        median_ases = np.median(data.as_counts)
        assert 3 <= median_ases <= 12  # paper: >50% within 6 ASes
        # Some single-AS pages exist (paper: 6.5%).
        assert data.fraction_with(1) >= 0.0

    def test_measured_distributions(self, crawl):
        _, result = crawl
        dists = characterize.measured_distributions(result.successes)
        assert len(dists["dns"]) == len(dists["tls"])
        assert len(dists["dns"]) == result.success_count
