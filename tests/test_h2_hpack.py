"""HPACK tests: integer/string primitives, tables, encoder/decoder."""

import pytest
from hypothesis import given, strategies as st

from repro.h2 import HpackDecoder, HpackEncoder, HpackError
from repro.h2.hpack import (
    DynamicTable,
    STATIC_TABLE,
    decode_integer,
    decode_string,
    encode_integer,
    encode_string,
)


class TestIntegerCoding:
    def test_rfc7541_c11_example(self):
        # Encoding 10 with a 5-bit prefix -> 0x0A.
        assert encode_integer(10, 5) == b"\x0a"

    def test_rfc7541_c12_example(self):
        # Encoding 1337 with a 5-bit prefix -> 1F 9A 0A.
        assert encode_integer(1337, 5) == b"\x1f\x9a\x0a"

    def test_rfc7541_c13_example(self):
        # Encoding 42 in an 8-bit prefix -> 0x2A.
        assert encode_integer(42, 8) == b"\x2a"

    def test_pattern_bits_preserved(self):
        assert encode_integer(2, 7, 0x80) == b"\x82"

    @given(st.integers(0, 2**28), st.integers(1, 8))
    def test_roundtrip(self, value, prefix):
        wire = encode_integer(value, prefix)
        decoded, offset = decode_integer(wire, 0, prefix)
        assert decoded == value
        assert offset == len(wire)

    def test_negative_rejected(self):
        with pytest.raises(HpackError):
            encode_integer(-1, 5)

    def test_truncated_continuation_rejected(self):
        wire = encode_integer(1337, 5)[:-1]
        with pytest.raises(HpackError):
            decode_integer(wire, 0, 5)

    def test_overflow_guard(self):
        with pytest.raises(HpackError):
            decode_integer(b"\x1f" + b"\xff" * 8, 0, 5)


class TestStringCoding:
    @given(st.text(max_size=200))
    def test_roundtrip(self, text):
        wire = encode_string(text)
        decoded, offset = decode_string(wire, 0)
        assert decoded == text
        assert offset == len(wire)

    def test_huffman_flag_rejected(self):
        with pytest.raises(HpackError):
            decode_string(b"\x83abc", 0)

    def test_truncated_string_rejected(self):
        with pytest.raises(HpackError):
            decode_string(b"\x05ab", 0)


class TestDynamicTable:
    def test_fifo_eviction(self):
        table = DynamicTable(max_size=100)
        table.add("a", "1")  # 34 bytes
        table.add("b", "2")  # 34 bytes
        table.add("c", "3")  # 34 bytes -> evicts "a"
        assert table.find("a", "1") is None
        assert table.find("c", "3") == 1  # newest first

    def test_oversized_entry_empties_table(self):
        table = DynamicTable(max_size=50)
        table.add("a", "1")
        table.add("huge", "x" * 100)
        assert len(table) == 0

    def test_resize_evicts(self):
        table = DynamicTable(max_size=200)
        table.add("a", "1")
        table.add("b", "2")
        table.resize(40)
        assert len(table) == 1
        assert table.find("b", "2") == 1

    def test_index_out_of_range(self):
        table = DynamicTable()
        with pytest.raises(HpackError):
            table.get(1)


REQUEST_HEADERS = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.example.com"),
    (":path", "/index.html"),
    ("user-agent", "repro-browser/1.0"),
    ("accept", "text/html"),
]


class TestEncoderDecoder:
    def test_roundtrip_request(self):
        encoder, decoder = HpackEncoder(), HpackDecoder()
        block = encoder.encode(REQUEST_HEADERS)
        assert decoder.decode(block) == REQUEST_HEADERS

    def test_static_table_entries_are_one_byte(self):
        encoder = HpackEncoder()
        assert encoder.encode([(":method", "GET")]) == b"\x82"
        assert encoder.encode([(":scheme", "https")]) == b"\x87"

    def test_repeated_headers_compress_smaller(self):
        encoder = HpackEncoder()
        first = encoder.encode(REQUEST_HEADERS)
        second = encoder.encode(REQUEST_HEADERS)
        assert len(second) < len(first)

    def test_state_consistency_across_blocks(self):
        encoder, decoder = HpackEncoder(), HpackDecoder()
        for _ in range(3):
            block = encoder.encode(REQUEST_HEADERS)
            assert decoder.decode(block) == REQUEST_HEADERS

    def test_sensitive_headers_never_indexed(self):
        encoder, decoder = HpackEncoder(), HpackDecoder()
        headers = [("authorization", "Bearer secret"), ("cookie", "sid=1")]
        encoder.encode(headers)
        block2 = encoder.encode(headers)
        # Values must not have entered the dynamic table.
        assert encoder.table.find("authorization", "Bearer secret") is None
        assert encoder.table.find("cookie", "sid=1") is None
        assert decoder.decode(block2) == headers

    def test_header_names_lowercased(self):
        encoder, decoder = HpackEncoder(), HpackDecoder()
        block = encoder.encode([("Content-Type", "text/html")])
        assert decoder.decode(block) == [("content-type", "text/html")]

    def test_decoder_rejects_index_zero(self):
        with pytest.raises(HpackError):
            HpackDecoder().decode(b"\x80")

    def test_decoder_rejects_unknown_dynamic_index(self):
        with pytest.raises(HpackError):
            HpackDecoder().decode(b"\xff\x7f")  # far beyond any table

    def test_table_size_update_respects_settings_bound(self):
        decoder = HpackDecoder(max_table_size=4096)
        decoder.set_settings_max_table_size(100)
        # 0x20 | size via 5-bit prefix: request 4096 > bound 100.
        update = bytes([0x3f, 0xe1, 0x1f])
        with pytest.raises(HpackError):
            decoder.decode(update)

    def test_table_size_update_applies(self):
        decoder = HpackDecoder(max_table_size=4096)
        decoder.decode(bytes([0x20]))  # resize to 0
        assert decoder.table.max_size == 0

    def test_static_table_has_61_entries(self):
        assert len(STATIC_TABLE) == 61
        assert STATIC_TABLE[0] == (":authority", "")
        assert STATIC_TABLE[60] == ("www-authenticate", "")

    @given(
        st.lists(
            st.tuples(
                st.from_regex(r"[a-z][a-z0-9-]{0,15}", fullmatch=True),
                st.text(
                    alphabet=st.characters(min_codepoint=32,
                                           max_codepoint=126),
                    max_size=30,
                ),
            ),
            max_size=25,
        )
    )
    def test_arbitrary_headers_roundtrip(self, headers):
        encoder, decoder = HpackEncoder(), HpackDecoder()
        block = encoder.encode(headers)
        assert decoder.decode(block) == headers

    @given(st.integers(0, 5))
    def test_multi_block_streams_stay_synchronized(self, extra):
        encoder, decoder = HpackEncoder(), HpackDecoder()
        blocks = []
        for i in range(3 + extra):
            headers = REQUEST_HEADERS + [("x-request-id", str(i))]
            blocks.append((headers, encoder.encode(headers)))
        for headers, block in blocks:
            assert decoder.decode(block) == headers
