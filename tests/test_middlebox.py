"""§6.7: the non-compliant middlebox that tears down on ORIGIN frames."""

import numpy as np
import pytest

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.dataset.world import build_world
from repro.deployment import BuggyMiddlebox, DeploymentExperiment
from repro.deployment.experiment import deployment_world_config
from repro.h2 import H2ClientSession, TlsClientConfig
from repro.telemetry import Telemetry
from repro.transport.framing import REC_APPDATA, parse_records


@pytest.fixture(scope="module")
def world_and_experiment():
    world = build_world(deployment_world_config(site_count=120, seed=77))
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    return world, experiment


def load_site(world, site, policy=None):
    context = BrowserContext(
        network=world.network,
        client_host=world.client_host,
        resolver=world.make_resolver(),
        trust_store=world.trust_store,
        authorities=world.authorities,
        policy=policy or FirefoxPolicy(origin_frames=True),
        asdb=world.asdb,
    )
    return BrowserEngine(context).load_blocking(site.hosted.record.page)


class TestMiddleboxBug:
    def test_origin_frame_kills_protected_clients(self,
                                                  world_and_experiment):
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        middlebox = BuggyMiddlebox(
            world.network,
            protected_clients={world.client_host.name},
        )
        middlebox.install()
        try:
            site = experiment.sample[0]
            archive = load_site(world, site)
            # The TLS connection died when the ORIGIN frame crossed the
            # middlebox; the page cannot load.
            assert not archive.page.success
            assert middlebox.stats.unknown_frames_seen > 0
            assert middlebox.stats.connections_torn_down > 0
        finally:
            middlebox.uninstall()
            experiment.disable_origin_frames()

    def test_unprotected_clients_unaffected(self, world_and_experiment):
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        middlebox = BuggyMiddlebox(
            world.network, protected_clients={"some-other-client"},
        )
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
            assert middlebox.stats.connections_inspected == 0
        finally:
            middlebox.uninstall()
            experiment.disable_origin_frames()

    def test_no_origin_frames_no_breakage(self, world_and_experiment):
        """Before the deployment, the buggy agent passed all traffic --
        RFC 7540 frames are all in its known set."""
        world, experiment = world_and_experiment
        middlebox = BuggyMiddlebox(
            world.network, protected_clients={world.client_host.name},
        )
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
            assert middlebox.stats.frames_inspected > 0
            assert middlebox.stats.connections_torn_down == 0
        finally:
            middlebox.uninstall()

    def test_vendor_fix_restores_service(self, world_and_experiment):
        """September 2022: unknown frames are ignored, pages load even
        with ORIGIN live."""
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        middlebox = BuggyMiddlebox(
            world.network,
            protected_clients={world.client_host.name},
        )
        middlebox.fix()
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
            # The agent still *saw* the unknown frame, it just ignored
            # it as the spec requires.
            assert middlebox.stats.unknown_frames_seen > 0
            assert middlebox.stats.connections_torn_down == 0
        finally:
            middlebox.uninstall()
            experiment.disable_origin_frames()

    def test_pausing_origin_restores_service_with_buggy_box(
        self, world_and_experiment
    ):
        """The CDN's mitigation: pause ORIGIN until the vendor ships."""
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        experiment.disable_origin_frames()  # pause
        middlebox = BuggyMiddlebox(
            world.network,
            protected_clients={world.client_host.name},
        )
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
        finally:
            middlebox.uninstall()


class _RstInjector:
    """An on-path box that silently RSTs the first TCP connection after
    ``kill_after`` client-to-server application-data records.

    The handshake and the first requests pass, so by the time the abort
    fires the pool holds the connection and later requests are in
    flight on it -- the sharpest case for eviction bookkeeping.
    """

    def __init__(self, client_name, kill_after=5):
        self.client_name = client_name
        self.kill_after = kill_after
        self.installed = False
        self.aborts = 0

    def __call__(self, client, server_ip, port, client_end, server_end):
        if client.name != self.client_name or self.installed:
            return
        self.installed = True
        buffer = [b""]
        seen = [0]

        def inspect(data):
            buffer[0] += data
            records, buffer[0] = parse_records(buffer[0])
            for record_type, _ in records:
                if record_type == REC_APPDATA:
                    seen[0] += 1
                    if seen[0] >= self.kill_after:
                        self.aborts += 1
                        return False
            return True

        client_end.outbound_inspector = inspect


class TestMidPathRst:
    """A mid-path RST while the pool holds the connection: every
    in-flight request fails exactly once and the dead entry is
    evicted."""

    def load_with_rst(self, world, experiment):
        telemetry = Telemetry(clock=world.network.loop.now,
                              trace=False, audit=True)
        injector = _RstInjector(world.client_host.name)
        world.network.add_tap(injector)
        try:
            context = BrowserContext(
                network=world.network,
                client_host=world.client_host,
                resolver=world.make_resolver(),
                trust_store=world.trust_store,
                authorities=world.authorities,
                policy=FirefoxPolicy(origin_frames=True),
                asdb=world.asdb,
                telemetry=telemetry,
            )
            engine = BrowserEngine(context)
            archive = engine.load_blocking(
                experiment.sample[0].hosted.record.page
            )
        finally:
            world.network.remove_tap(injector)
        assert injector.aborts == 1  # the RST actually fired
        return archive, engine, telemetry

    def test_inflight_requests_fail_with_one_decision_each(
        self, world_and_experiment
    ):
        world, experiment = world_and_experiment
        archive, _, telemetry = self.load_with_rst(world, experiment)
        failed = [e for e in archive.entries if e.status == 0]
        assert failed  # something was in flight when the RST landed
        # The page as a whole survived on replacement connections.
        assert any(e.status == 200 for e in archive.entries)
        decisions = [e for e in telemetry.audit.events
                     if e.kind == "decision"]
        # One final verdict per request, failed ones included: the
        # abort path must not double-record or drop the decision.
        assert len(decisions) == len(archive.entries)
        for entry in failed:
            matching = [
                e for e in decisions
                if e.hostname == entry.hostname and e.path == entry.path
                and e.attrs.get("status") == 0
            ]
            assert len(matching) == 1
            # The verdict keeps the routing decision (how the request
            # was placed); status 0 is what records the mid-path death.
            assert matching[0].decision == "same-host"

    def test_dead_connection_evicted_from_pool(self,
                                               world_and_experiment):
        world, experiment = world_and_experiment
        archive, engine, _ = self.load_with_rst(world, experiment)
        pool = engine.loads[-1].pool
        # open_count prunes lazily: after it, no aborted session may
        # remain anywhere in the registry.
        pool.open_count
        assert all(
            not facts.session.closed and facts.session.failed is None
            for facts in pool.connections
        )
        assert pool.stats.pruned_connections >= 1
