"""§6.7: the non-compliant middlebox that tears down on ORIGIN frames."""

import numpy as np
import pytest

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.dataset.world import build_world
from repro.deployment import BuggyMiddlebox, DeploymentExperiment
from repro.deployment.experiment import deployment_world_config
from repro.h2 import H2ClientSession, TlsClientConfig


@pytest.fixture(scope="module")
def world_and_experiment():
    world = build_world(deployment_world_config(site_count=120, seed=77))
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    return world, experiment


def load_site(world, site, policy=None):
    context = BrowserContext(
        network=world.network,
        client_host=world.client_host,
        resolver=world.make_resolver(),
        trust_store=world.trust_store,
        authorities=world.authorities,
        policy=policy or FirefoxPolicy(origin_frames=True),
        asdb=world.asdb,
    )
    return BrowserEngine(context).load_blocking(site.hosted.record.page)


class TestMiddleboxBug:
    def test_origin_frame_kills_protected_clients(self,
                                                  world_and_experiment):
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        middlebox = BuggyMiddlebox(
            world.network,
            protected_clients={world.client_host.name},
        )
        middlebox.install()
        try:
            site = experiment.sample[0]
            archive = load_site(world, site)
            # The TLS connection died when the ORIGIN frame crossed the
            # middlebox; the page cannot load.
            assert not archive.page.success
            assert middlebox.stats.unknown_frames_seen > 0
            assert middlebox.stats.connections_torn_down > 0
        finally:
            middlebox.uninstall()
            experiment.disable_origin_frames()

    def test_unprotected_clients_unaffected(self, world_and_experiment):
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        middlebox = BuggyMiddlebox(
            world.network, protected_clients={"some-other-client"},
        )
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
            assert middlebox.stats.connections_inspected == 0
        finally:
            middlebox.uninstall()
            experiment.disable_origin_frames()

    def test_no_origin_frames_no_breakage(self, world_and_experiment):
        """Before the deployment, the buggy agent passed all traffic --
        RFC 7540 frames are all in its known set."""
        world, experiment = world_and_experiment
        middlebox = BuggyMiddlebox(
            world.network, protected_clients={world.client_host.name},
        )
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
            assert middlebox.stats.frames_inspected > 0
            assert middlebox.stats.connections_torn_down == 0
        finally:
            middlebox.uninstall()

    def test_vendor_fix_restores_service(self, world_and_experiment):
        """September 2022: unknown frames are ignored, pages load even
        with ORIGIN live."""
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        middlebox = BuggyMiddlebox(
            world.network,
            protected_clients={world.client_host.name},
        )
        middlebox.fix()
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
            # The agent still *saw* the unknown frame, it just ignored
            # it as the spec requires.
            assert middlebox.stats.unknown_frames_seen > 0
            assert middlebox.stats.connections_torn_down == 0
        finally:
            middlebox.uninstall()
            experiment.disable_origin_frames()

    def test_pausing_origin_restores_service_with_buggy_box(
        self, world_and_experiment
    ):
        """The CDN's mitigation: pause ORIGIN until the vendor ships."""
        world, experiment = world_and_experiment
        experiment.enable_origin_frames()
        experiment.disable_origin_frames()  # pause
        middlebox = BuggyMiddlebox(
            world.network,
            protected_clients={world.client_host.name},
        )
        middlebox.install()
        try:
            archive = load_site(world, experiment.sample[0])
            assert archive.page.success
        finally:
            middlebox.uninstall()
