"""Tests for the statistics and rendering helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    cdf_points,
    format_pct,
    histogram,
    interquartile_range,
    median,
    percentile,
    render_cdf,
    render_series,
    render_table,
)
from repro.analysis.stats import cdf_at


class TestStats:
    def test_median_and_percentiles(self):
        values = [1, 2, 3, 4, 5]
        assert median(values) == 3
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5

    def test_empty_inputs(self):
        assert median([]) == 0.0
        assert percentile([], 50) == 0.0
        assert cdf_points([]) == []
        assert histogram([]) == {}
        assert cdf_at([], 1) == 0.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_iqr(self):
        values = list(range(1, 101))
        assert interquartile_range(values) == pytest.approx(49.5)

    def test_cdf_points_deduplicate(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1.0, 2 / 3), (2.0, 1.0)]

    def test_cdf_at(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 2) == 0.5
        assert cdf_at(values, 0) == 0.0
        assert cdf_at(values, 10) == 1.0

    def test_histogram_fractions(self):
        assert histogram([1, 1, 2, 3]) == {1: 0.5, 2: 0.25, 3: 0.25}

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=100))
    def test_cdf_monotone_and_complete(self, values):
        points = cdf_points(values)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        xs = [x for x, _ in points]
        assert xs == sorted(xs)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_histogram_sums_to_one(self, values):
        assert sum(histogram(values).values()) == pytest.approx(1.0)


class TestRendering:
    def test_format_pct(self):
        assert format_pct(0.5) == "50.00%"
        assert format_pct(0.123456, digits=1) == "12.3%"

    def test_render_table_aligns_columns(self):
        text = render_table("T", ["a", "long-header"],
                            [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[2]
        # All data rows start at the same column offsets.
        assert lines[4].startswith("x   ")
        assert lines[5].startswith("yyyy")

    def test_render_cdf_probes(self):
        text = render_cdf("C", [("s", [1, 2, 3, 4, 5])])
        assert "p50" in text
        assert "3.0" in text

    def test_render_cdf_empty_series(self):
        text = render_cdf("C", [("empty", [])])
        assert "-" in text

    def test_render_series(self):
        text = render_series("S", "day",
                             [("a", [1.0, 2.0]), ("b", [3.0, 4.0])],
                             [1, 2])
        assert "day" in text
        assert "4.0" in text
