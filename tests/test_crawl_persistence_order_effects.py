"""Crawl persistence (HAR round trips) and §6.1 cache order effects."""

import numpy as np
import pytest

from repro.browser import FirefoxPolicy
from repro.core import figure3
from repro.dataset.crawler import Crawler, CrawlResult
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world


class TestCrawlPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        world = build_world(DatasetConfig(site_count=20, seed=8))
        result = Crawler(world).crawl()
        path = tmp_path / "crawl.jsonl"
        written = result.save(path)
        assert written == result.attempted

        restored = CrawlResult.load(path)
        assert restored.attempted == result.attempted
        assert restored.success_count == result.success_count
        assert restored.total_requests == result.total_requests
        # Entry-level fidelity.
        for a, b in zip(result.archives, restored.archives):
            assert a.page == b.page
            assert a.entries == b.entries

    def test_analyses_work_on_reloaded_crawls(self, tmp_path):
        """The §4 model runs identically on persisted HARs -- the
        paper's own pipeline operated on stored HAR files."""
        world = build_world(DatasetConfig(site_count=20, seed=8))
        result = Crawler(world).crawl()
        path = tmp_path / "crawl.jsonl"
        result.save(path)
        restored = CrawlResult.load(path)
        assert figure3(result.archives).medians() == \
            figure3(restored.archives).medians()

    def test_loading_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CrawlResult.load(tmp_path / "nope.jsonl")


class TestOrderEffects:
    """§6.1: with caches enabled, visiting page A before B differs
    from B before A; the paper cleared caches to avoid exactly this."""

    def _engine_and_pages(self):
        from repro.browser import BrowserContext, BrowserEngine

        world = build_world(DatasetConfig(site_count=30, seed=12))
        # Fully deterministic context: no latency jitter, no TLS
        # version draws, no speculative races -- so any difference
        # between loads is the cache, not noise.
        context = BrowserContext(
            network=world.network,
            client_host=world.client_host,
            resolver=world.make_resolver(median_latency_ms=20.0),
            trust_store=world.trust_store,
            authorities=world.authorities,
            policy=FirefoxPolicy(),
            asdb=world.asdb,
            cache_enabled=True,
        )
        context.resolver._rng = None  # fixed-latency queries
        engine = BrowserEngine(context)
        accessible = [h for h in world.sites if h.record.accessible]
        # Two sites sharing popular third parties.
        page_a = accessible[0].record.page
        page_b = accessible[1].record.page
        return engine, page_a, page_b

    def test_second_page_benefits_from_shared_cache(self):
        engine, page_a, page_b = self._engine_and_pages()
        # Cold B (fresh session).
        engine.new_session()
        cold_b = engine.load_blocking(page_b)
        # A then B without clearing anything in between.
        engine.new_session()
        engine.load_blocking(page_a)
        warm_b = engine.load_blocking(page_b)
        assert warm_b.tls_connection_count() <= \
            cold_b.tls_connection_count()
        shared_hosts = set(page_a.hostnames()) & set(page_b.hostnames())
        if shared_hosts - {page_b.hostname}:
            # Shared third-party hostnames resolve from the DNS cache.
            assert warm_b.dns_query_count() <= cold_b.dns_query_count()

    def test_new_session_removes_order_effects(self):
        """The paper's methodology: clearing caches between loads makes
        measurements order-independent."""
        engine, page_a, page_b = self._engine_and_pages()
        engine.new_session()
        b_first = engine.load_blocking(page_b)

        engine.new_session()
        engine.load_blocking(page_a)
        engine.new_session()  # the reset under test
        b_after_reset = engine.load_blocking(page_b)

        assert b_after_reset.tls_connection_count() == \
            b_first.tls_connection_count()
        assert b_after_reset.dns_query_count() == \
            b_first.dns_query_count()
