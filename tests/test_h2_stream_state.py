"""Stream state machine unit tests (RFC 7540 §5.1)."""

import pytest

from repro.h2 import ErrorCode, StreamState
from repro.h2.errors import H2StreamError
from repro.h2.stream import Stream


def make_stream(window=65535):
    return Stream(1, send_window=window, recv_window=window)


class TestLifecycle:
    def test_invalid_stream_id(self):
        with pytest.raises(ValueError):
            Stream(0, 100, 100)

    def test_open_on_send_headers(self):
        stream = make_stream()
        stream.send_headers(end_stream=False)
        assert stream.state is StreamState.OPEN

    def test_half_closed_local_on_end_stream_headers(self):
        stream = make_stream()
        stream.send_headers(end_stream=True)
        assert stream.state is StreamState.HALF_CLOSED_LOCAL

    def test_full_request_response_cycle(self):
        stream = make_stream()
        stream.send_headers(end_stream=True)       # request out
        stream.receive_headers(end_stream=False)   # response headers
        stream.receive_data(10, end_stream=True)   # response body
        assert stream.state is StreamState.CLOSED

    def test_server_side_cycle(self):
        stream = make_stream()
        stream.receive_headers(end_stream=True)
        assert stream.state is StreamState.HALF_CLOSED_REMOTE
        stream.send_headers(end_stream=False)
        stream.send_data(5, end_stream=True)
        assert stream.state is StreamState.CLOSED

    def test_trailers_tracked(self):
        stream = make_stream()
        stream.receive_headers(end_stream=False)
        stream.receive_headers(end_stream=True)
        assert stream.trailers_received


class TestViolations:
    def test_data_before_headers_rejected(self):
        stream = make_stream()
        with pytest.raises(H2StreamError):
            stream.send_data(5, end_stream=False)

    def test_data_on_closed_stream_rejected(self):
        stream = make_stream()
        stream.reset(ErrorCode.CANCEL)
        with pytest.raises(H2StreamError):
            stream.receive_data(5, end_stream=False)

    def test_headers_on_closed_stream_rejected(self):
        stream = make_stream()
        stream.reset(ErrorCode.CANCEL)
        with pytest.raises(H2StreamError):
            stream.receive_headers(end_stream=False)


class TestFlowControl:
    def test_send_window_enforced(self):
        stream = make_stream(window=10)
        stream.send_headers(end_stream=False)
        with pytest.raises(H2StreamError) as exc:
            stream.send_data(11, end_stream=False)
        assert exc.value.code is ErrorCode.FLOW_CONTROL_ERROR

    def test_recv_window_enforced(self):
        stream = make_stream(window=10)
        stream.receive_headers(end_stream=False)
        with pytest.raises(H2StreamError):
            stream.receive_data(11, end_stream=False)

    def test_window_update_restores_capacity(self):
        stream = make_stream(window=10)
        stream.send_headers(end_stream=False)
        stream.send_data(10, end_stream=False)
        stream.window_update(5)
        stream.send_data(5, end_stream=False)
        assert stream.send_window == 0

    def test_nonpositive_window_update_rejected(self):
        stream = make_stream()
        with pytest.raises(H2StreamError):
            stream.window_update(0)

    def test_reset_records_code(self):
        stream = make_stream()
        stream.reset(ErrorCode.REFUSED_STREAM)
        assert stream.closed
        assert stream.reset_code is ErrorCode.REFUSED_STREAM
