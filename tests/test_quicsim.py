"""End-to-end tests for the QUIC-flavored transport
(:mod:`repro.transport.quicsim`): 1-RTT handshakes, cross-hostname
session tickets, 0-RTT resumption, and middlebox opacity."""

import numpy as np
import pytest

from repro.audit import AuditLog
from repro.audit.reasons import ReasonCode
from repro.h2 import H2ClientSession, H2Server, ServerConfig, TlsClientConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.transport.quicsim import (
    QuicDialer,
    QuicTicketManager,
    find_ticket,
)

RTT_MS = 20.0


@pytest.fixture
def world():
    """One edge serving two hostnames over both TCP/443 and QUIC/443."""
    latency = LatencyModel(default=LinkSpec(rtt_ms=RTT_MS,
                                            bandwidth_bpms=1e6))
    network = Network(loop=EventLoop(), latency=latency)
    root = CertificateAuthority("Root CA", rng=np.random.default_rng(7))
    issuer = CertificateAuthority("Edge CA", parent=root,
                                  rng=np.random.default_rng(8))
    trust = TrustStore([root])
    authorities = [root, issuer]

    edge = network.add_host(Host("edge", "us-east", ["10.0.0.1"]))
    client = network.add_host(Host("client", "us-east", ["10.8.0.1"]))

    leaf = issuer.issue(
        "www.example.com", ("www.example.com", "static.example.com")
    )
    server = H2Server(network, edge, ServerConfig(
        chains=[issuer.chain_for(leaf)],
        serves=["www.example.com", "static.example.com"],
        supports_h3=True,
    ))
    server.listen("10.0.0.1")
    server.listen_quic("10.0.0.1")

    def make_dialer(**kwargs):
        return QuicDialer(network, client, trust, authorities, **kwargs)

    def make_tcp_session(sni="www.example.com", tls13=True):
        return H2ClientSession(
            network, client, "10.0.0.1",
            TlsClientConfig(
                sni=sni, trust_store=trust, authorities=authorities,
                now=network.loop.now, tls13=tls13,
            ),
        )

    return network, server, make_dialer, make_tcp_session


def run(network):
    network.loop.run_until_idle()


class TestHandshakeEconomics:
    def test_full_handshake_is_one_rtt(self, world):
        network, _, make_dialer, _ = world
        session = make_dialer().dial("www.example.com", "10.0.0.1")
        session.connect()
        run(network)
        assert session.ready
        assert session.negotiated_protocol == "h3"
        # No transport handshake: HAR connect time is zero...
        assert session.tcp_connected_at == session.connect_started_at
        # ...and the combined handshake costs exactly one round trip.
        assert session.connected_at - session.connect_started_at == \
            pytest.approx(RTT_MS, abs=0.1)

    def test_tcp_tls13_costs_two_rtts(self, world):
        network, _, _, make_tcp_session = world
        session = make_tcp_session()
        session.connect()
        run(network)
        assert session.ready
        assert session.connected_at - session.connect_started_at == \
            pytest.approx(2 * RTT_MS, abs=0.1)

    def test_resumption_is_zero_rtt(self, world):
        network, _, make_dialer, _ = world
        dialer = make_dialer()
        first = dialer.dial("www.example.com", "10.0.0.1")
        first.connect()
        run(network)

        start = network.loop.now()
        second = dialer.dial("www.example.com", "10.0.0.1")
        second.connect()
        run(network)
        assert second.ready
        assert second.channel.resumed
        assert not second.channel.cross_host
        # Established on the same simulated instant it started.
        assert second.connected_at == pytest.approx(start, abs=0.1)


class TestSessionTickets:
    def test_full_handshake_populates_ticket_cache(self, world):
        network, _, make_dialer, _ = world
        dialer = make_dialer()
        assert not dialer.has_ticket_for("www.example.com")
        session = dialer.dial("www.example.com", "10.0.0.1")
        session.connect()
        run(network)
        assert len(dialer.ticket_cache) == 1
        entry = dialer.ticket_cache[0]
        assert entry["sni"] == "www.example.com"
        assert entry["chain"][0].covers("www.example.com")
        # The certificate covers the sibling hostname too, so the same
        # ticket is an 0-RTT opportunity there.
        assert dialer.has_ticket_for("static.example.com")
        assert not dialer.has_ticket_for("other.example.org")

    def test_cross_hostname_resumption(self, world):
        network, server, make_dialer, _ = world
        dialer = make_dialer()
        first = dialer.dial("www.example.com", "10.0.0.1")
        first.connect()
        run(network)

        second = dialer.dial("static.example.com", "10.0.0.1")
        second.connect()
        run(network)
        assert second.ready
        assert second.channel.resumed
        assert second.channel.cross_host
        assert second.channel.ticket_sni == "www.example.com"
        manager = server.quic_ticket_manager
        assert manager.resumptions == 1
        assert manager.cross_host_resumptions == 1

    def test_resumption_audited(self, world):
        network, _, make_dialer, _ = world
        audit = AuditLog()
        dialer = make_dialer(audit=audit, page="https://www.example.com/")
        first = dialer.dial("www.example.com", "10.0.0.1")
        first.connect()
        run(network)
        second = dialer.dial("static.example.com", "10.0.0.1")
        second.connect()
        run(network)
        codes = [e.code for e in audit.events if e.kind == "quic"]
        assert codes.count(ReasonCode.QUIC_HANDSHAKE_1RTT) == 1
        assert codes.count(ReasonCode.ZERO_RTT_RESUMED) == 1
        assert codes.count(ReasonCode.CROSS_HOST_TICKET) == 1

    def test_request_end_to_end(self, world):
        network, server, make_dialer, _ = world
        session = make_dialer().dial("www.example.com", "10.0.0.1")
        responses = []
        session.connect(
            on_ready=lambda: session.request(
                "www.example.com", "/", responses.append
            )
        )
        run(network)
        assert len(responses) == 1
        assert responses[0].status == 200
        assert b"served /" in responses[0].body


class TestTicketManager:
    def test_validate_unknown_ticket(self):
        manager = QuicTicketManager()
        assert not manager.validate("no-such-ticket", "www.example.com")
        assert manager.resumptions == 0

    def test_validate_rejects_uncovered_hostname(self):
        issuer = CertificateAuthority("CA", rng=np.random.default_rng(1))
        leaf = issuer.issue("www.a.com", ("www.a.com",))
        manager = QuicTicketManager()
        ticket = manager.issue("www.a.com", issuer.chain_for(leaf))
        assert not manager.validate(ticket, "www.b.com")
        assert manager.validate(ticket, "www.a.com")
        assert manager.resumptions == 1
        assert manager.cross_host_resumptions == 0

    def test_find_ticket_prefers_exact_sni(self):
        issuer = CertificateAuthority("CA", rng=np.random.default_rng(2))
        leaf = issuer.issue("www.a.com", ("www.a.com", "cdn.a.com"))
        chain = list(issuer.chain_for(leaf))
        cache = [
            {"ticket": "t-cdn", "sni": "cdn.a.com", "chain": chain},
            {"ticket": "t-www", "sni": "www.a.com", "chain": chain},
        ]
        assert find_ticket(cache, "www.a.com")["ticket"] == "t-www"
        # No exact match: first covering entry wins (deterministic).
        assert find_ticket(cache, "cdn.a.com")["ticket"] == "t-cdn"
        assert find_ticket(cache, "www.b.com") is None
        assert find_ticket(None, "www.a.com") is None


class TestMiddleboxOpacity:
    def test_datagram_flows_bypass_network_taps(self, world):
        network, _, make_dialer, make_tcp_session = world
        taps = []

        def tap(*args):
            taps.append(args)

        network.add_tap(tap)
        try:
            quic = make_dialer().dial("www.example.com", "10.0.0.1")
            quic.connect()
            run(network)
            assert quic.ready
            assert taps == []  # QUIC is opaque to on-path inspectors

            tcp = make_tcp_session()
            tcp.connect()
            run(network)
            assert tcp.ready
            assert len(taps) == 1  # the TCP flow is still interposable
        finally:
            network.remove_tap(tap)
