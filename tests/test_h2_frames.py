"""Wire-format tests for HTTP/2 frames, including ORIGIN (RFC 8336)."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.h2 import (
    DataFrame,
    ErrorCode,
    GoAwayFrame,
    H2ConnectionError,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    PriorityFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    parse_frame,
    parse_frames,
)
from repro.h2.frames import (
    FLAG_ACK,
    FLAG_END_HEADERS,
    FLAG_END_STREAM,
    FLAG_PADDED,
    FRAME_HEADER_LEN,
    TYPE_ORIGIN,
    ContinuationFrame,
)


def roundtrip(frame):
    parsed, rest = parse_frame(frame.serialize())
    assert rest == b""
    return parsed


class TestFrameHeader:
    def test_header_layout(self):
        frame = DataFrame(stream_id=5, data=b"hello")
        wire = frame.serialize()
        length = int.from_bytes(wire[0:3], "big")
        assert length == 5
        assert wire[3] == 0x0  # DATA
        assert struct.unpack(">I", wire[5:9])[0] == 5

    def test_incomplete_buffer_returns_none(self):
        wire = DataFrame(stream_id=1, data=b"hello").serialize()
        frame, rest = parse_frame(wire[:-1])
        assert frame is None
        assert rest == wire[:-1]

    def test_parse_frames_splits_stream(self):
        wire = (
            DataFrame(stream_id=1, data=b"a").serialize()
            + PingFrame().serialize()
        )
        frames, rest = parse_frames(wire)
        assert len(frames) == 2
        assert rest == b""

    def test_parse_frames_keeps_partial_tail(self):
        wire = DataFrame(stream_id=1, data=b"a").serialize()
        partial = PingFrame().serialize()[:4]
        frames, rest = parse_frames(wire + partial)
        assert len(frames) == 1
        assert rest == partial


class TestDataFrame:
    def test_roundtrip(self):
        frame = roundtrip(
            DataFrame(stream_id=3, flags=FLAG_END_STREAM, data=b"body")
        )
        assert isinstance(frame, DataFrame)
        assert frame.data == b"body"
        assert frame.end_stream

    def test_padding_stripped_on_parse(self):
        frame = roundtrip(DataFrame(stream_id=3, data=b"body", pad_length=7))
        assert frame.data == b"body"
        assert not frame.flags & FLAG_PADDED

    def test_flow_controlled_length_includes_padding(self):
        frame = DataFrame(stream_id=3, data=b"body", pad_length=7)
        assert frame.flow_controlled_length == 4 + 1 + 7

    def test_bad_padding_rejected(self):
        # pad length byte larger than remaining payload
        header = bytes([0, 0, 2, 0x0, FLAG_PADDED, 0, 0, 0, 3])
        with pytest.raises(H2ConnectionError):
            parse_frame(header + bytes([200, 1]))


class TestHeadersFrame:
    def test_roundtrip(self):
        frame = roundtrip(
            HeadersFrame(
                stream_id=1,
                flags=FLAG_END_HEADERS | FLAG_END_STREAM,
                header_block=b"\x82",
            )
        )
        assert isinstance(frame, HeadersFrame)
        assert frame.header_block == b"\x82"
        assert frame.end_headers and frame.end_stream

    def test_priority_fields_skipped(self):
        from repro.h2.frames import FLAG_PRIORITY

        body = struct.pack(">IB", 3, 15) + b"\x82"
        header = bytes([0, 0, len(body), 0x1, FLAG_PRIORITY | FLAG_END_HEADERS,
                        0, 0, 0, 1])
        frame, _ = parse_frame(header + body)
        assert frame.header_block == b"\x82"


class TestControlFrames:
    def test_rst_roundtrip(self):
        frame = roundtrip(
            RstStreamFrame(stream_id=7, error_code=ErrorCode.CANCEL)
        )
        assert frame.error_code is ErrorCode.CANCEL

    def test_settings_roundtrip(self):
        frame = roundtrip(SettingsFrame(settings=((0x4, 1048576), (0x3, 100))))
        assert frame.settings == ((0x4, 1048576), (0x3, 100))

    def test_settings_ack_with_payload_rejected(self):
        header = bytes([0, 0, 6, 0x4, FLAG_ACK, 0, 0, 0, 0])
        with pytest.raises(H2ConnectionError):
            parse_frame(header + b"\x00" * 6)

    def test_settings_bad_length_rejected(self):
        header = bytes([0, 0, 5, 0x4, 0, 0, 0, 0, 0])
        with pytest.raises(H2ConnectionError):
            parse_frame(header + b"\x00" * 5)

    def test_ping_must_be_8_bytes(self):
        with pytest.raises(H2ConnectionError):
            PingFrame(opaque=b"short")

    def test_ping_roundtrip(self):
        frame = roundtrip(PingFrame(opaque=b"12345678", flags=FLAG_ACK))
        assert frame.opaque == b"12345678"
        assert frame.is_ack

    def test_goaway_roundtrip(self):
        frame = roundtrip(
            GoAwayFrame(last_stream_id=31,
                        error_code=ErrorCode.PROTOCOL_ERROR,
                        debug_data=b"why")
        )
        assert frame.last_stream_id == 31
        assert frame.error_code is ErrorCode.PROTOCOL_ERROR
        assert frame.debug_data == b"why"

    def test_window_update_roundtrip(self):
        frame = roundtrip(WindowUpdateFrame(stream_id=1, increment=65535))
        assert frame.increment == 65535

    def test_priority_roundtrip(self):
        frame = roundtrip(
            PriorityFrame(stream_id=5, dependency=3, weight=42,
                          exclusive=True)
        )
        assert frame.dependency == 3
        assert frame.weight == 42
        assert frame.exclusive

    def test_continuation_roundtrip(self):
        frame = roundtrip(
            ContinuationFrame(stream_id=1, flags=FLAG_END_HEADERS,
                              header_block=b"rest")
        )
        assert frame.header_block == b"rest"
        assert frame.end_headers

    def test_unknown_error_code_becomes_internal(self):
        header = bytes([0, 0, 4, 0x3, 0, 0, 0, 0, 1])
        frame, _ = parse_frame(header + struct.pack(">I", 0xDEAD))
        assert frame.error_code is ErrorCode.INTERNAL_ERROR


class TestOriginFrame:
    def test_roundtrip(self):
        origins = ("https://example.com", "https://cdn.example.com")
        frame = roundtrip(OriginFrame(origins=origins))
        assert isinstance(frame, OriginFrame)
        assert frame.origins == origins

    def test_wire_layout_matches_rfc8336(self):
        frame = OriginFrame(origins=("https://a.com",))
        wire = frame.serialize()
        assert wire[3] == TYPE_ORIGIN
        body = wire[FRAME_HEADER_LEN:]
        length = struct.unpack(">H", body[:2])[0]
        assert length == len("https://a.com")
        assert body[2 : 2 + length] == b"https://a.com"

    def test_empty_origin_set_is_valid(self):
        # RFC 8336 §2.2: empty set means "coalesce nothing new".
        frame = roundtrip(OriginFrame(origins=()))
        assert frame.origins == ()

    def test_origin_on_nonzero_stream_rejected_at_build(self):
        with pytest.raises(H2ConnectionError):
            OriginFrame(stream_id=3, origins=("https://a.com",))

    def test_origin_on_nonzero_stream_ignored_at_parse(self):
        # Hand-craft type 0xC on stream 3; parser surfaces UnknownFrame.
        body = struct.pack(">H", 13) + b"https://a.com"
        header = bytes([0, 0, len(body), TYPE_ORIGIN, 0, 0, 0, 0, 3])
        frame, _ = parse_frame(header + body)
        assert isinstance(frame, UnknownFrame)

    def test_truncated_entry_ignored_as_unknown(self):
        body = struct.pack(">H", 100) + b"short"
        header = bytes([0, 0, len(body), TYPE_ORIGIN, 0, 0, 0, 0, 0])
        frame, _ = parse_frame(header + body)
        assert isinstance(frame, UnknownFrame)

    def test_non_ascii_origin_ignored_as_unknown(self):
        raw = "https://ünicode.com".encode("utf-8")
        body = struct.pack(">H", len(raw)) + raw
        header = bytes([0, 0, len(body), TYPE_ORIGIN, 0, 0, 0, 0, 0])
        frame, _ = parse_frame(header + body)
        assert isinstance(frame, UnknownFrame)

    @given(
        st.lists(
            st.from_regex(r"https://[a-z]{1,20}\.[a-z]{2,5}", fullmatch=True),
            max_size=20,
        )
    )
    def test_any_origin_list_roundtrips(self, origins):
        frame = roundtrip(OriginFrame(origins=tuple(origins)))
        assert frame.origins == tuple(origins)


class TestUnknownFrame:
    def test_unknown_type_surfaced_not_crashed(self):
        header = bytes([0, 0, 3, 0xEE, 0x7, 0, 0, 0, 9])
        frame, rest = parse_frame(header + b"xyz")
        assert isinstance(frame, UnknownFrame)
        assert frame.raw_type == 0xEE
        assert frame.raw_payload == b"xyz"
        assert frame.stream_id == 9

    def test_unknown_frame_reserializes(self):
        frame = UnknownFrame(stream_id=9, raw_type=0xEE, raw_payload=b"xyz")
        reparsed, _ = parse_frame(frame.serialize())
        assert isinstance(reparsed, UnknownFrame)
        assert reparsed.raw_payload == b"xyz"
