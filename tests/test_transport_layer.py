"""Unit tests for the protocol-agnostic session layer
(:mod:`repro.transport`): record framing, capability records,
endpoints, and the ``tcp-tls`` dialer."""

import numpy as np
import pytest

from repro.h2.client import H2ClientSession
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.transport.base import (
    DEFAULT_MAX_STREAMS,
    Dialer,
    Endpoint,
    Session,
    SessionCapabilities,
    capabilities_of,
)
from repro.transport.framing import (
    REC_APPDATA,
    REC_HELLO,
    pack_record,
    parse_records,
)
from repro.transport.tcp import DEFAULT_ALPN_OFFER, TcpTlsDialer


class TestFraming:
    def test_round_trip(self):
        wire = pack_record(REC_HELLO, b"hello") + \
            pack_record(REC_APPDATA, b"payload")
        records, rest = parse_records(wire)
        assert records == [(REC_HELLO, b"hello"),
                           (REC_APPDATA, b"payload")]
        assert rest == b""

    def test_partial_record_buffered(self):
        wire = pack_record(REC_APPDATA, b"x" * 100)
        records, rest = parse_records(wire[:7])
        assert records == []
        assert rest == wire[:7]
        records, rest = parse_records(rest + wire[7:])
        assert records == [(REC_APPDATA, b"x" * 100)]
        assert rest == b""

    def test_empty_payload(self):
        records, rest = parse_records(pack_record(REC_HELLO, b""))
        assert records == [(REC_HELLO, b"")]
        assert rest == b""

    def test_shared_with_tls_channel(self):
        # The h2 stack and the middlebox must keep speaking the same
        # wire format as the transport package.
        from repro.h2 import tls_channel

        assert tls_channel.pack_record is pack_record
        assert tls_channel.parse_records is parse_records


class TestSessionCapabilities:
    def test_defaults_are_h1_like(self):
        caps = SessionCapabilities()
        assert caps.alpn == "h2"
        assert caps.max_streams == 1
        assert not caps.can_multiplex
        assert not caps.resumable_across_hostnames
        assert not caps.zero_rtt

    def test_multiplex_follows_stream_budget(self):
        assert SessionCapabilities(max_streams=2).can_multiplex
        assert not SessionCapabilities(max_streams=1).can_multiplex

    def test_frozen(self):
        with pytest.raises(Exception):
            SessionCapabilities().max_streams = 5


class _DuckSession:
    def __init__(self, multiplex):
        self.can_multiplex = multiplex


class TestCapabilitiesOf:
    def test_duck_typed_h2(self):
        caps = capabilities_of(_DuckSession(multiplex=True))
        assert caps.can_multiplex
        assert caps.supports_origin_frame
        assert caps.max_streams == DEFAULT_MAX_STREAMS

    def test_duck_typed_h1(self):
        caps = capabilities_of(_DuckSession(multiplex=False))
        assert not caps.can_multiplex
        assert not caps.supports_origin_frame
        assert caps.alpn == "http/1.1"

    def test_explicit_record_wins(self):
        class Explicit:
            can_multiplex = False
            capabilities = SessionCapabilities(
                alpn="h3", zero_rtt=True, max_streams=7
            )

        caps = capabilities_of(Explicit())
        assert caps.alpn == "h3"
        assert caps.zero_rtt
        assert caps.max_streams == 7

    def test_base_session_class_exposes_record(self):
        assert isinstance(Session.capabilities, SessionCapabilities)


class TestEndpoint:
    def test_defaults(self):
        endpoint = Endpoint("www.a.com")
        assert endpoint == Endpoint("www.a.com", 443, "tcp-tls")

    def test_dialer_endpoint_carries_transport_name(self):
        class FakeDialer(Dialer):
            name = "carrier-pigeon"

        endpoint = FakeDialer().endpoint("www.a.com", 8443)
        assert endpoint.transport == "carrier-pigeon"
        assert endpoint.port == 8443


@pytest.fixture
def tls_world():
    latency = LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                            bandwidth_bpms=1e6))
    network = Network(loop=EventLoop(), latency=latency)
    root = CertificateAuthority("Root CA", rng=np.random.default_rng(7))
    issuer = CertificateAuthority("Edge CA", parent=root,
                                  rng=np.random.default_rng(8))
    trust = TrustStore([root])
    edge = network.add_host(Host("edge", "us-east", ["10.0.0.1"]))
    client = network.add_host(Host("client", "us-east", ["10.8.0.1"]))

    from repro.h2 import H2Server, ServerConfig

    leaf = issuer.issue("www.example.com",
                        ("www.example.com", "static.example.com"))
    server = H2Server(network, edge, ServerConfig(
        chains=[issuer.chain_for(leaf)],
        serves=["www.example.com", "static.example.com"],
    ))
    server.listen("10.0.0.1")
    return network, client, trust, [root, issuer], server


class TestTcpTlsDialer:
    def test_default_offer_is_pre_h3(self):
        assert DEFAULT_ALPN_OFFER == ("h2", "http/1.1")

    def test_dial_produces_h2_session(self, tls_world):
        network, client, trust, authorities, server = tls_world
        dialer = TcpTlsDialer(network, client, trust, authorities)
        session = dialer.dial("www.example.com", "10.0.0.1")
        assert isinstance(session, H2ClientSession)
        session.connect()
        network.loop.run_until_idle()
        assert session.ready
        caps = capabilities_of(session)
        assert caps.alpn == "h2"
        assert caps.can_multiplex
        assert caps.supports_origin_frame
        assert not caps.resumable_across_hostnames

    def test_endpoint_name(self, tls_world):
        network, client, trust, authorities, _ = tls_world
        dialer = TcpTlsDialer(network, client, trust, authorities)
        assert dialer.endpoint("www.example.com", dialer.port) == \
            Endpoint("www.example.com", 443, "tcp-tls")

    def test_per_dial_tls13_override(self, tls_world):
        network, client, trust, authorities, _ = tls_world
        dialer = TcpTlsDialer(network, client, trust, authorities,
                              tls13=True)
        t13 = dialer.dial("www.example.com", "10.0.0.1")
        t12 = dialer.dial("www.example.com", "10.0.0.1", tls13=False)
        assert t13.tls_config.tls13 is True
        assert t12.tls_config.tls13 is False
        # The shared dialer default is untouched by the override.
        assert dialer.tls13 is True
