"""Unit tests for the simulated clock and event loop."""

import pytest

from repro.netsim import EventLoop, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_rejects_backwards_movement(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to_same_time_is_ok(self):
        clock = SimClock(10.0)
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_repr_mentions_time(self):
        assert "5.000" in repr(SimClock(5.0))


class TestEventLoop:
    def test_runs_single_event(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: fired.append(loop.now()))
        loop.run_until_idle()
        assert fired == [5.0]

    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(10.0, lambda: order.append("late"))
        loop.schedule(1.0, lambda: order.append("early"))
        loop.schedule(5.0, lambda: order.append("middle"))
        loop.run_until_idle()
        assert order == ["early", "middle", "late"]

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        order = []
        for label in ("a", "b", "c"):
            loop.schedule(3.0, lambda lab=label: order.append(lab))
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_zero_delay_allowed(self):
        loop = EventLoop()
        fired = []
        loop.schedule(0.0, lambda: fired.append(True))
        loop.run_until_idle()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        loop = EventLoop()
        times = []

        def chain(depth):
            times.append(loop.now())
            if depth > 0:
                loop.schedule(2.0, lambda: chain(depth - 1))

        loop.schedule(1.0, lambda: chain(3))
        loop.run_until_idle()
        assert times == [1.0, 3.0, 5.0, 7.0]

    def test_cancelled_event_does_not_run(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        loop.run_until_idle()
        assert fired == []

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(10.0, lambda: fired.append(10))
        loop.run_until(5.0)
        assert fired == [1]
        assert loop.now() == 5.0
        loop.run_until_idle()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_with_no_events(self):
        loop = EventLoop()
        loop.run_until(42.0)
        assert loop.now() == 42.0

    def test_run_until_idle_guards_against_infinite_loops(self):
        loop = EventLoop()

        def respawn():
            loop.schedule(1.0, respawn)

        loop.schedule(1.0, respawn)
        with pytest.raises(RuntimeError):
            loop.run_until_idle(max_events=100)

    def test_events_executed_counter(self):
        loop = EventLoop()
        for _ in range(4):
            loop.schedule(1.0, lambda: None)
        loop.run_until_idle()
        assert loop.events_executed == 4

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(7.5, lambda: fired.append(loop.now()))
        loop.run_until_idle()
        assert fired == [7.5]

    def test_schedule_at_past_rejected(self):
        loop = EventLoop()
        loop.run_until(10.0)
        with pytest.raises(ValueError):
            loop.schedule_at(5.0, lambda: None)
