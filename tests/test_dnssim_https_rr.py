"""Tests for HTTPS/SVCB (RFC 9460) records in the DNS simulator:
zone storage, authority lookup with CNAME chasing, and the resolver's
opt-in piggybacked ALPN delivery."""

import pytest

from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.dnssim.records import RecordType
from repro.netsim import EventLoop


def make_authority():
    authority = AuthoritativeServer()
    zone = Zone("example.com")
    zone.add_a("www.example.com", ["10.0.0.1"], ttl=1000.0)
    zone.add_https("www.example.com", alpn=("h3", "h2"), ttl=1000.0)
    zone.add_a("plain.example.com", ["10.0.0.2"], ttl=1000.0)
    zone.add_cname("alias.example.com", "www.example.com")
    authority.add_zone(zone)
    return authority


class TestZoneRecords:
    def test_add_https_stores_alpn_csv(self):
        zone = Zone("a.com")
        zone.add_https("www.a.com", alpn=("h3", "h2"))
        records = zone.lookup("www.a.com", RecordType.HTTPS)
        assert len(records) == 1
        assert records[0].value == "h3,h2"

    def test_add_https_accepts_single_string(self):
        zone = Zone("a.com")
        zone.add_https("www.a.com", alpn="h3")
        assert zone.lookup("www.a.com", RecordType.HTTPS)[0].value == "h3"


class TestAuthorityQueryHttps:
    def test_alpn_tuple_for_recorded_name(self):
        assert make_authority().query_https("www.example.com") == \
            ("h3", "h2")

    def test_empty_for_name_without_record(self):
        assert make_authority().query_https("plain.example.com") == ()

    def test_empty_for_unknown_zone(self):
        assert make_authority().query_https("www.other.org") == ()

    def test_follows_cname_chain(self):
        # alias.example.com has no HTTPS record of its own; the
        # authority chases the CNAME to www and answers from there.
        assert make_authority().query_https("alias.example.com") == \
            ("h3", "h2")


class TestResolverHttps:
    def make_resolver(self, query_https=False):
        resolver = CachingResolver(EventLoop(), make_authority())
        resolver.query_https_records = query_https
        return resolver

    def resolve(self, resolver, name):
        answers = []
        resolver.resolve(name, answers.append)
        resolver._loop.run_until_idle()
        assert len(answers) == 1
        return answers[0]

    def test_disabled_by_default(self):
        resolver = self.make_resolver()
        assert resolver.query_https_records is False
        answer = self.resolve(resolver, "www.example.com")
        assert answer.https_alpn == ()

    def test_piggybacked_alpn_when_enabled(self):
        resolver = self.make_resolver(query_https=True)
        answer = self.resolve(resolver, "www.example.com")
        assert answer.https_alpn == ("h3", "h2")
        assert answer.addresses == ["10.0.0.1"]
        # Piggybacked on the A query: no second wire query.
        assert resolver.stats.plaintext_queries == 1

    def test_alpn_survives_cache(self):
        resolver = self.make_resolver(query_https=True)
        self.resolve(resolver, "www.example.com")
        cached = self.resolve(resolver, "www.example.com")
        assert cached.from_cache
        assert cached.https_alpn == ("h3", "h2")

    def test_empty_alpn_for_h2_only_name(self):
        resolver = self.make_resolver(query_https=True)
        answer = self.resolve(resolver, "plain.example.com")
        assert answer.https_alpn == ()

    def test_resolve_now_carries_alpn(self):
        resolver = self.make_resolver(query_https=True)
        answer = resolver.resolve_now("www.example.com")
        assert answer.https_alpn == ("h3", "h2")
