"""Crawl persistence and the content-addressed crawl cache."""

import pytest

from repro.dataset.cache import (
    CACHE_ENV_VAR,
    CrawlCache,
    cache_key,
    crawl_cached,
    default_cache_dir,
)
from repro.dataset.crawler import CrawlResult
from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import CrawlParams
from repro.web.har import HarArchive, HarEntry, HarPage, HarTimings


def make_result() -> CrawlResult:
    """Two archives: one success with an entry, one failed page."""
    ok = HarArchive(
        page=HarPage(
            url="https://www.site000001.com/",
            hostname="www.site000001.com",
            rank=1,
            on_content_load=120.5,
            on_load=348.25,
            success=True,
            extra_tls_connections=1,
        ),
        entries=[
            HarEntry(
                url="https://www.site000001.com/",
                hostname="www.site000001.com",
                path="/",
                started_at=3.5,
                timings=HarTimings(dns=12.0, connect=24.0, ssl=36.5,
                                   wait=80.0, receive=10.25),
                server_ip="10.0.0.1",
                dns_addresses=["10.0.0.1", "10.0.0.2"],
                certificate_san=["www.site000001.com", "site000001.com"],
                certificate_issuer="Let's Encrypt (R3)",
                asn=13335,
                as_org="Cloudflare",
                coalesced=False,
            ),
        ],
    )
    failed = HarArchive(
        page=HarPage(
            url="https://www.site000002.net/",
            hostname="www.site000002.net",
            rank=2,
            success=False,
            failure_reason="non-200 or CAPTCHA",
        )
    )
    return CrawlResult(archives=[ok, failed])


class TestCrawlResultRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        result = make_result()
        path = tmp_path / "crawl.jsonl"
        assert result.save(path) == 2
        loaded = CrawlResult.load(path)
        assert loaded.archives == result.archives

    def test_failed_page_survives_round_trip(self, tmp_path):
        result = make_result()
        path = tmp_path / "crawl.jsonl"
        result.save(path)
        loaded = CrawlResult.load(path)
        failed = loaded.archives[1]
        assert failed.page.success is False
        assert failed.page.failure_reason == "non-200 or CAPTCHA"
        assert failed.entries == []
        assert loaded.success_count == 1

    def test_timings_and_floats_are_exact(self, tmp_path):
        result = make_result()
        path = tmp_path / "crawl.jsonl"
        result.save(path)
        entry = CrawlResult.load(path).archives[0].entries[0]
        assert entry.timings.ssl == 36.5
        assert entry.started_at == 3.5
        assert entry.finished_at == result.archives[0].entries[0].finished_at


class TestSuccessesMemo:
    def test_successes_computed_once(self):
        result = make_result()
        first = result.successes
        assert first is result.successes  # same list object, no rebuild
        assert [a.page.hostname for a in first] == ["www.site000001.com"]

    def test_append_invalidates_memo(self):
        result = make_result()
        before = result.successes
        result.archives.append(
            HarArchive(page=HarPage(url="https://x/", hostname="x",
                                    success=True))
        )
        after = result.successes
        assert after is not before
        assert len(after) == 2

    def test_memo_excluded_from_equality(self):
        left, right = make_result(), make_result()
        left.successes  # populate one memo only
        assert left == right


class TestCacheKey:
    def setup_method(self):
        self.config = DatasetConfig(site_count=40, seed=2022)
        self.params = CrawlParams(policy="chromium")

    def test_stable(self):
        assert cache_key(self.config, self.params, 2) == \
            cache_key(self.config, self.params, 2)

    def test_sensitive_to_every_input(self):
        base = cache_key(self.config, self.params, 2)
        assert cache_key(DatasetConfig(site_count=41, seed=2022),
                         self.params, 2) != base
        assert cache_key(DatasetConfig(site_count=40, seed=2023),
                         self.params, 2) != base
        assert cache_key(self.config,
                         CrawlParams(policy="firefox"), 2) != base
        assert cache_key(self.config,
                         CrawlParams(policy="chromium",
                                     speculative_rate=0.2), 2) != base
        assert cache_key(self.config, self.params, 3) != base


class TestCrawlCache:
    def test_miss_then_hit(self, tmp_path):
        cache = CrawlCache(tmp_path)
        key = "deadbeef"
        assert cache.load(key) is None
        path = cache.store(key, make_result())
        assert path.is_file()
        assert cache.has(key)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.archives == make_result().archives

    def test_corrupt_entry_treated_as_miss_and_dropped(self, tmp_path):
        cache = CrawlCache(tmp_path)
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path_for("bad").write_text("{not json\n", encoding="utf-8")
        assert cache.load("bad") is None
        assert not cache.has("bad")

    def test_invalidate_and_clear(self, tmp_path):
        cache = CrawlCache(tmp_path)
        cache.store("one", make_result())
        cache.store("two", make_result())
        assert cache.invalidate("one") is True
        assert cache.invalidate("one") is False
        assert cache.clear() == 1
        assert not cache.has("two")

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_crawl_cached_end_to_end(self, tmp_path):
        config = DatasetConfig(site_count=6, seed=17)
        params = CrawlParams(policy="chromium", speculative_rate=0.10)
        cache = CrawlCache(tmp_path)
        first, hit_first = crawl_cached(
            config, params=params, shard_count=2, cache=cache
        )
        assert hit_first is False
        second, hit_second = crawl_cached(
            config, params=params, shard_count=2, cache=cache
        )
        assert hit_second is True
        assert second.archives == first.archives
        # refresh re-crawls (deterministically) and keeps the entry.
        third, hit_third = crawl_cached(
            config, params=params, shard_count=2, cache=cache,
            refresh=True,
        )
        assert hit_third is False
        assert third.archives == first.archives
