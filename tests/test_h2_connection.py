"""Tests for the sans-IO connection state machine."""

import pytest

from repro.h2 import (
    CONNECTION_PREFACE,
    ErrorCode,
    H2Connection,
    H2ConnectionError,
    OriginFrame,
    Role,
    StreamState,
    UnknownFrame,
)
from repro.h2 import events as ev
from repro.h2.frames import (
    ContinuationFrame,
    DataFrame,
    FLAG_END_HEADERS,
    HeadersFrame,
    PingFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)

REQUEST = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.example.com"),
    (":path", "/"),
]
RESPONSE = [(":status", "200"), ("content-type", "text/html")]


def pair(server_origin_set=(), client_origin_aware=True,
         server_origin_aware=True):
    """A connected (client, server) pair with settings exchanged."""
    client = H2Connection(Role.CLIENT, origin_aware=client_origin_aware)
    server = H2Connection(
        Role.SERVER,
        origin_aware=server_origin_aware,
        origin_set=server_origin_set,
    )
    client.initiate()
    server.initiate()
    client_events = pump(server, client)
    server_events = pump(client, server)
    # Flush the SETTINGS ACKs both ways.
    pump(server, client)
    pump(client, server)
    return client, server, client_events, server_events


def pump(sender, receiver):
    """Deliver the sender's queued bytes to the receiver."""
    data = sender.data_to_send()
    if not data:
        return []
    return receiver.receive_data(data)


class TestHandshake:
    def test_client_emits_preface(self):
        client = H2Connection(Role.CLIENT)
        client.initiate()
        assert client.data_to_send().startswith(CONNECTION_PREFACE)

    def test_server_rejects_bad_preface(self):
        server = H2Connection(Role.SERVER)
        server.initiate()
        with pytest.raises(H2ConnectionError):
            server.receive_data(b"GET / HTTP/1.1\r\n\r\n")

    def test_settings_exchange(self):
        _, _, client_events, server_events = pair()
        assert any(isinstance(e, ev.SettingsReceived) for e in client_events)
        assert any(isinstance(e, ev.SettingsReceived) for e in server_events)

    def test_double_initiate_rejected(self):
        client = H2Connection(Role.CLIENT)
        client.initiate()
        with pytest.raises(H2ConnectionError):
            client.initiate()

    def test_preface_accepted_in_pieces(self):
        client = H2Connection(Role.CLIENT)
        server = H2Connection(Role.SERVER)
        client.initiate()
        server.initiate()
        data = client.data_to_send()
        server.receive_data(data[:10])
        server.receive_data(data[10:])
        assert any(
            isinstance(f, SettingsFrame) for f in server.frames_received
        )


class TestRequestResponse:
    def test_get_roundtrip(self):
        client, server, _, _ = pair()
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        server_events = pump(client, server)
        requests = [e for e in server_events
                    if isinstance(e, ev.RequestReceived)]
        assert len(requests) == 1
        assert requests[0].headers == REQUEST
        assert requests[0].end_stream

        server.send_headers(stream_id, RESPONSE)
        server.send_data(stream_id, b"<html></html>", end_stream=True)
        client_events = pump(server, client)
        assert any(isinstance(e, ev.ResponseReceived) for e in client_events)
        data = [e for e in client_events if isinstance(e, ev.DataReceived)]
        assert data[0].data == b"<html></html>"
        assert any(isinstance(e, ev.StreamEnded) for e in client_events)

    def test_client_stream_ids_are_odd_and_increasing(self):
        client, _, _, _ = pair()
        ids = [client.get_next_stream_id() for _ in range(3)]
        assert ids == [1, 3, 5]

    def test_multiplexed_requests(self):
        client, server, _, _ = pair()
        sid_a = client.get_next_stream_id()
        sid_b = client.get_next_stream_id()
        client.send_headers(sid_a, REQUEST, end_stream=True)
        client.send_headers(sid_b, REQUEST, end_stream=True)
        events = pump(client, server)
        received = [e.stream_id for e in events
                    if isinstance(e, ev.RequestReceived)]
        assert received == [sid_a, sid_b]
        # Respond in reverse order; streams are independent.
        server.send_headers(sid_b, RESPONSE, end_stream=True)
        server.send_headers(sid_a, RESPONSE, end_stream=True)
        client_events = pump(server, client)
        done = [e.stream_id for e in client_events
                if isinstance(e, ev.StreamEnded)]
        assert done == [sid_b, sid_a]

    def test_stream_states_progress(self):
        client, server, _, _ = pair()
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        assert client.stream(stream_id).state is StreamState.HALF_CLOSED_LOCAL
        pump(client, server)
        assert server.stream(stream_id).state is StreamState.HALF_CLOSED_REMOTE
        server.send_headers(stream_id, RESPONSE, end_stream=True)
        assert server.stream(stream_id).state is StreamState.CLOSED
        pump(server, client)
        assert client.stream(stream_id).state is StreamState.CLOSED

    def test_large_body_chunked_to_max_frame_size(self):
        client, server, _, _ = pair()
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        pump(client, server)
        body = b"x" * 40_000  # > 2 frames at 16KB
        server.send_headers(stream_id, RESPONSE)
        server.send_data(stream_id, body, end_stream=True)
        events = pump(server, client)
        chunks = [e.data for e in events if isinstance(e, ev.DataReceived)]
        assert len(chunks) == 3
        assert b"".join(chunks) == body


class TestOrigin:
    def test_server_advertises_origin_set_on_initiate(self):
        origins = ("https://example.com", "https://cdn.example.com")
        client, server, client_events, _ = pair(server_origin_set=origins)
        received = [e for e in client_events
                    if isinstance(e, ev.OriginReceived)]
        assert len(received) == 1
        assert received[0].origins == origins
        assert client.remote_origin_set == set(origins)

    def test_send_origin_replaces_set(self):
        client, server, _, _ = pair(server_origin_set=("https://a.com",))
        server.send_origin(("https://b.com",))
        pump(server, client)
        assert client.remote_origin_set == {"https://b.com"}

    def test_client_cannot_send_origin(self):
        client, _, _, _ = pair()
        with pytest.raises(H2ConnectionError):
            client.send_origin(("https://a.com",))

    def test_unaware_client_ignores_origin(self):
        client, server, client_events, _ = pair(
            server_origin_set=("https://a.com",),
            client_origin_aware=False,
        )
        assert not any(isinstance(e, ev.OriginReceived)
                       for e in client_events)
        unknown = [e for e in client_events
                   if isinstance(e, ev.UnknownFrameReceived)]
        assert len(unknown) == 1
        assert client.remote_origin_set == set()

    def test_connection_survives_ignored_origin(self):
        # The fail-open behaviour §6.7's middlebox violated.
        client, server, _, _ = pair(
            server_origin_set=("https://a.com",),
            client_origin_aware=False,
        )
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        events = pump(client, server)
        assert any(isinstance(e, ev.RequestReceived) for e in events)


class TestUnknownFrames:
    def test_unknown_frame_ignored_with_event(self):
        client, server, _, _ = pair()
        wire = UnknownFrame(stream_id=0, raw_type=0xEE,
                            raw_payload=b"abc").serialize()
        events = client.receive_data(wire)
        assert len(events) == 1
        assert isinstance(events[0], ev.UnknownFrameReceived)
        assert events[0].raw_type == 0xEE

    def test_traffic_continues_after_unknown_frame(self):
        client, server, _, _ = pair()
        client.receive_data(
            UnknownFrame(stream_id=0, raw_type=0xEE).serialize()
        )
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        assert any(isinstance(e, ev.RequestReceived)
                   for e in pump(client, server))


class TestErrors:
    def test_data_on_stream_zero_is_fatal(self):
        client, _, _, _ = pair()
        wire = DataFrame(stream_id=0, data=b"x").serialize()
        with pytest.raises(H2ConnectionError):
            client.receive_data(wire)
        # A GOAWAY must have been queued.
        assert client.data_to_send()  # non-empty

    def test_data_for_unknown_stream_is_fatal(self):
        client, _, _, _ = pair()
        wire = DataFrame(stream_id=99, data=b"x").serialize()
        with pytest.raises(H2ConnectionError):
            client.receive_data(wire)

    def test_rst_stream_event(self):
        client, server, _, _ = pair()
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        pump(client, server)
        server.send_rst_stream(stream_id, ErrorCode.REFUSED_STREAM)
        events = pump(server, client)
        resets = [e for e in events if isinstance(e, ev.StreamReset)]
        assert resets[0].error_code is ErrorCode.REFUSED_STREAM
        assert client.stream(stream_id).closed

    def test_goaway_event(self):
        client, server, _, _ = pair()
        server.send_goaway(ErrorCode.ENHANCE_YOUR_CALM, debug=b"slow down")
        events = pump(server, client)
        goaways = [e for e in events if isinstance(e, ev.GoAwayReceived)]
        assert goaways[0].error_code is ErrorCode.ENHANCE_YOUR_CALM
        assert goaways[0].debug_data == b"slow down"

    def test_cannot_send_after_goaway(self):
        client, _, _, _ = pair()
        client.send_goaway()
        with pytest.raises(H2ConnectionError):
            client.send_headers(client.get_next_stream_id(), REQUEST)

    def test_zero_window_update_is_fatal(self):
        client, _, _, _ = pair()
        wire = WindowUpdateFrame(stream_id=0, increment=0).serialize()
        with pytest.raises(H2ConnectionError):
            client.receive_data(wire)

    def test_interleaved_frame_during_continuation_is_fatal(self):
        client, server, _, _ = pair()
        from repro.h2.hpack import HpackEncoder
        block = HpackEncoder().encode(REQUEST)
        headers = HeadersFrame(stream_id=1, flags=0, header_block=block[:3])
        ping = PingFrame()
        with pytest.raises(H2ConnectionError):
            server.receive_data(headers.serialize() + ping.serialize())

    def test_continuation_completes_header_block(self):
        client, server, _, _ = pair()
        from repro.h2.hpack import HpackEncoder
        block = HpackEncoder().encode(REQUEST)
        first = HeadersFrame(stream_id=1, flags=0, header_block=block[:3])
        rest = ContinuationFrame(stream_id=1, flags=FLAG_END_HEADERS,
                                 header_block=block[3:])
        events = server.receive_data(first.serialize() + rest.serialize())
        requests = [e for e in events if isinstance(e, ev.RequestReceived)]
        assert requests and requests[0].headers == REQUEST


class TestFlowControl:
    def test_send_window_decrements(self):
        client, server, _, _ = pair()
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        pump(client, server)
        before = server.connection_send_window
        server.send_headers(stream_id, RESPONSE)
        server.send_data(stream_id, b"x" * 1000, end_stream=True)
        assert server.connection_send_window == before - 1000

    def test_receiver_replenishes_windows(self):
        client, server, _, _ = pair()
        stream_id = client.get_next_stream_id()
        client.send_headers(stream_id, REQUEST, end_stream=True)
        pump(client, server)
        server.send_headers(stream_id, RESPONSE)
        server.send_data(stream_id, b"x" * 1000, end_stream=True)
        pump(server, client)
        events = pump(client, server)
        updates = [e for e in events if isinstance(e, ev.WindowUpdated)]
        assert any(u.stream_id == 0 and u.delta == 1000 for u in updates)

    def test_ping_is_acked(self):
        client, server, _, _ = pair()
        client.send_ping(b"abcdefgh")
        events = pump(client, server)
        assert any(isinstance(e, ev.PingReceived) for e in events)
        client_events = pump(server, client)
        acks = [e for e in client_events if isinstance(e, ev.PingAcked)]
        assert acks[0].opaque == b"abcdefgh"
