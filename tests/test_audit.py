"""Unit tests for the decision-audit subsystem: the closed taxonomy,
the event log, policy explain/can_reuse agreement, and the guarantee
that every pool lookup path emits exactly one reason code."""

import json

import pytest

from repro.audit import (
    NULL_AUDIT,
    AuditEvent,
    AuditLog,
    NullAuditLog,
    REASON_DESCRIPTIONS,
    ReasonCode,
    UnknownReasonCode,
    events_from_jsonl,
    events_to_jsonl,
    reason_code,
    taxonomy_table,
)
from repro.browser.policy import (
    ChromiumPolicy,
    ConnectionFacts,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
)
from repro.browser.pool import ConnectionPool, MAX_H1_CONNECTIONS_PER_HOST


class TestTaxonomy:
    def test_every_code_is_described(self):
        for code in ReasonCode:
            assert code in REASON_DESCRIPTIONS
            assert REASON_DESCRIPTIONS[code]

    def test_taxonomy_table_covers_every_code(self):
        rows = taxonomy_table()
        assert len(rows) == len(list(ReasonCode))
        assert {row[0] for row in rows} \
            == {code.value for code in ReasonCode}

    def test_hit_miss_credit_are_disjoint(self):
        for code in ReasonCode:
            assert sum([code.is_hit, code.is_miss, code.is_credit]) <= 1

    def test_reason_code_round_trip(self):
        for code in ReasonCode:
            assert reason_code(code.value) is code

    def test_reason_code_rejects_unknown(self):
        with pytest.raises(UnknownReasonCode):
            reason_code("MISS_MADE_UP")

    def test_taxonomy_is_closed_to_ad_hoc_strings(self):
        # The enum is the whole vocabulary; a free-form string that is
        # not a member value cannot become a ReasonCode.
        with pytest.raises(ValueError):
            ReasonCode("connection was stale")


class TestAuditLog:
    def test_record_assigns_sequence_and_clock(self):
        ticks = iter([1.5, 2.5])
        log = AuditLog(clock=lambda: next(ticks))
        first = log.record("lookup", ReasonCode.POOL_HIT_SAME_HOST,
                           page="p", hostname="h", hit=True)
        second = log.record("decision", ReasonCode.MISS_NO_CONNECTION)
        assert (first.seq, second.seq) == (0, 1)
        assert (first.at_ms, second.at_ms) == (1.5, 2.5)
        assert first.attrs == {"hit": True}
        assert first.code is ReasonCode.POOL_HIT_SAME_HOST
        assert log.events == [first, second]

    def test_null_audit_is_inert(self):
        assert NULL_AUDIT.enabled is False
        assert NULL_AUDIT.record(
            "lookup", ReasonCode.MISS_NO_CONNECTION
        ) is None
        assert NULL_AUDIT.events == []
        assert isinstance(NULL_AUDIT, NullAuditLog)

    def test_jsonl_round_trip(self):
        log = AuditLog()
        log.record("lookup", ReasonCode.MISS_SAN_MISMATCH,
                   page="https://a/", hostname="cdn.a", lookup="coalesce")
        log.record("decision", ReasonCode.HIT_BROWSER_CACHE,
                   page="https://a/", hostname="a", path="/x",
                   decision="cache", status=200)
        text = events_to_jsonl(log.events)
        assert text.endswith("\n")
        parsed = events_from_jsonl(text)
        assert parsed == log.events
        # Canonical form: sorted keys, compact separators.
        for line in text.splitlines():
            doc = json.loads(line)
            assert line == json.dumps(doc, sort_keys=True,
                                      separators=(",", ":"))

    def test_jsonl_empty_stream(self):
        assert events_to_jsonl([]) == ""
        assert events_from_jsonl("") == []

    def test_jsonl_rejects_unknown_reason(self):
        event = AuditLog().record("dns", ReasonCode.DNS_WIRE_QUERY)
        doc = event.to_dict()
        doc["reason"] = "TOTALLY_BOGUS"
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with pytest.raises(UnknownReasonCode):
            events_from_jsonl(line + "\n")


class FakeSession:
    def __init__(self, multiplex=True, busy=False, san=(), origins=()):
        self.can_multiplex = multiplex
        self.h1_busy = busy
        self.closed = False
        self.failed = None
        self._san = set(san)
        self._origins = set(origins)

    def close(self):
        self.closed = True

    def certificate_covers(self, hostname):
        return hostname in self._san

    def origin_set_covers(self, hostname):
        return hostname in self._origins


def facts_for(**kwargs):
    available = kwargs.pop("available", ("10.0.0.1",))
    anonymous = kwargs.pop("anonymous", False)
    return ConnectionFacts(
        session=FakeSession(**kwargs),
        sni="www.a.com",
        connected_ip=list(available)[0],
        available_set=frozenset(available),
        anonymous_partition=anonymous,
    )


#: (facts kwargs, candidate hostname, dns answer) -> expected code per
#: policy, exercising every branch of every ``explain``.
EXPLAIN_GRID = [
    (dict(multiplex=False, san=("cdn.a.com",)), "cdn.a.com",
     ["10.0.0.1"],
     {"chromium": ReasonCode.MISS_CANNOT_MULTIPLEX,
      "firefox": ReasonCode.MISS_CANNOT_MULTIPLEX,
      "firefox+origin": ReasonCode.MISS_CANNOT_MULTIPLEX,
      "ideal-origin": ReasonCode.MISS_CANNOT_MULTIPLEX,
      "none": ReasonCode.MISS_POLICY_FORBIDS}),
    (dict(san=("www.a.com",)), "cdn.a.com", ["10.0.0.1"],
     {"chromium": ReasonCode.MISS_SAN_MISMATCH,
      "firefox": ReasonCode.MISS_SAN_MISMATCH,
      "firefox+origin": ReasonCode.MISS_SAN_MISMATCH,
      "ideal-origin": ReasonCode.MISS_SAN_MISMATCH,
      "none": ReasonCode.MISS_POLICY_FORBIDS}),
    (dict(san=("cdn.a.com",), origins=("cdn.a.com",)), "cdn.a.com",
     ["10.99.0.1"],
     {"chromium": ReasonCode.MISS_NO_DNS_OVERLAP,
      "firefox": ReasonCode.MISS_NO_DNS_OVERLAP,
      "firefox+origin": ReasonCode.POOL_HIT_ORIGIN_FRAME,
      "ideal-origin": ReasonCode.POOL_HIT_ORIGIN_FRAME,
      "none": ReasonCode.MISS_POLICY_FORBIDS}),
    (dict(san=("cdn.a.com",), available=("10.0.0.1", "10.0.0.2")),
     "cdn.a.com", ["10.0.0.2"],
     {"chromium": ReasonCode.MISS_NO_DNS_OVERLAP,
      "firefox": ReasonCode.POOL_HIT_IP_SAN,
      "firefox+origin": ReasonCode.POOL_HIT_IP_SAN,
      "ideal-origin": ReasonCode.POOL_HIT_IP_SAN,
      "none": ReasonCode.MISS_POLICY_FORBIDS}),
    (dict(san=("cdn.a.com",)), "cdn.a.com", ["10.0.0.1"],
     {"chromium": ReasonCode.POOL_HIT_IP_SAN,
      "firefox": ReasonCode.POOL_HIT_IP_SAN,
      "firefox+origin": ReasonCode.POOL_HIT_IP_SAN,
      "ideal-origin": ReasonCode.POOL_HIT_IP_SAN,
      "none": ReasonCode.MISS_POLICY_FORBIDS}),
]

POLICIES = {
    "chromium": ChromiumPolicy,
    "firefox": lambda: FirefoxPolicy(origin_frames=False),
    "firefox+origin": lambda: FirefoxPolicy(origin_frames=True),
    "ideal-origin": IdealOriginPolicy,
    "none": NoCoalescingPolicy,
}


class TestPolicyExplain:
    @pytest.mark.parametrize("case", EXPLAIN_GRID)
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_explain_matches_expectation(self, name, case):
        kwargs, hostname, dns, expected = case
        policy = POLICIES[name]()
        facts = facts_for(**kwargs)
        assert policy.explain(facts, hostname, dns) is expected[name]

    @pytest.mark.parametrize("case", EXPLAIN_GRID)
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_can_reuse_is_derived_from_explain(self, name, case):
        """can_reuse and the audited reason can never disagree."""
        kwargs, hostname, dns, _ = case
        policy = POLICIES[name]()
        facts = facts_for(**kwargs)
        assert policy.can_reuse(facts, hostname, dns) \
            == policy.explain(facts, hostname, dns).is_hit


def audited_pool(policy=None):
    pool = ConnectionPool(
        policy=policy or FirefoxPolicy(origin_frames=True),
        audit=AuditLog(),
        page="https://page/",
    )
    return pool


def add(pool, sni, **kwargs):
    anonymous = kwargs.pop("anonymous", False)
    available = kwargs.pop("available", ("10.0.0.1",))
    facts = ConnectionFacts(
        session=FakeSession(**kwargs),
        sni=sni,
        connected_ip=list(available)[0],
        available_set=frozenset(available),
        anonymous_partition=anonymous,
    )
    pool.connections.append(facts)
    return facts


class TestPoolEmitsExactlyOneReason:
    """Every lookup path records exactly one audit event, and its code
    matches the outcome the caller saw -- the exhaustiveness guarantee
    behind the per-request attribution."""

    def same_host_scenarios(self):
        def hit(pool):
            add(pool, "www.a.com")

        def idle_h1(pool):
            add(pool, "www.a.com", multiplex=False, busy=True)
            add(pool, "www.a.com", multiplex=False, busy=False)

        def h1_cap(pool):
            for _ in range(MAX_H1_CONNECTIONS_PER_HOST):
                add(pool, "www.a.com", multiplex=False, busy=True)

        def busy_h1(pool):
            add(pool, "www.a.com", multiplex=False, busy=True)

        def closed(pool):
            add(pool, "www.a.com").session.closed = True

        def partition(pool):
            add(pool, "www.a.com", anonymous=True)

        def empty(pool):
            pass

        return [
            (hit, ReasonCode.POOL_HIT_SAME_HOST),
            (idle_h1, ReasonCode.POOL_HIT_H1_IDLE),
            (h1_cap, ReasonCode.POOL_HIT_H1_CAP),
            (busy_h1, ReasonCode.MISS_CANNOT_MULTIPLEX),
            (closed, ReasonCode.MISS_CLOSED_STALE),
            (partition, ReasonCode.MISS_ANONYMOUS_PARTITION),
            (empty, ReasonCode.MISS_NO_CONNECTION),
        ]

    def test_same_host_paths(self):
        for setup, expected in self.same_host_scenarios():
            pool = audited_pool()
            setup(pool)
            outcome = pool.find_same_host("www.a.com")
            events = pool.audit.events
            assert len(events) == 1, setup.__name__
            assert events[0].kind == "lookup"
            assert events[0].code is expected, setup.__name__
            assert events[0].code is outcome.reason
            assert events[0].attrs["hit"] == outcome.hit

    def coalesce_scenarios(self):
        def hit_origin(pool):
            add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"),
                origins=("cdn.a.com",))

        def hit_ip(pool):
            add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"))

        def san_mismatch(pool):
            add(pool, "www.a.com", san=("www.a.com",))

        def cannot_multiplex(pool):
            add(pool, "www.a.com", multiplex=False,
                san=("www.a.com", "cdn.a.com"))

        def no_candidate(pool):
            pass

        return [
            (hit_origin, ReasonCode.POOL_HIT_ORIGIN_FRAME),
            (hit_ip, ReasonCode.POOL_HIT_IP_SAN),
            (san_mismatch, ReasonCode.MISS_SAN_MISMATCH),
            (cannot_multiplex, ReasonCode.MISS_CANNOT_MULTIPLEX),
            (no_candidate, ReasonCode.MISS_NO_CANDIDATE),
        ]

    def test_coalesce_paths(self):
        for setup, expected in self.coalesce_scenarios():
            pool = audited_pool()
            setup(pool)
            outcome = pool.find_coalescable("cdn.a.com", ["10.0.0.1"])
            events = pool.audit.events
            assert len(events) == 1, setup.__name__
            assert events[0].kind == "lookup"
            assert events[0].code is expected, setup.__name__
            assert events[0].code is outcome.reason

    def test_coalesce_anonymous_path(self):
        pool = audited_pool()
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"))
        pool.find_coalescable("cdn.a.com", ["10.0.0.1"], anonymous=True)
        [event] = pool.audit.events
        assert event.code is ReasonCode.MISS_ANONYMOUS_PARTITION

    def test_coalesce_policy_forbids_path(self):
        pool = audited_pool(policy=NoCoalescingPolicy())
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"))
        pool.find_coalescable("cdn.a.com", ["10.0.0.1"])
        [event] = pool.audit.events
        assert event.code is ReasonCode.MISS_POLICY_FORBIDS

    def test_coalesce_no_dns_overlap_indexed_path(self):
        pool = audited_pool(policy=ChromiumPolicy())
        add(pool, "www.a.com", san=("www.a.com", "cdn.a.com"))
        pool.find_coalescable("cdn.a.com", ["10.99.0.1"])
        [event] = pool.audit.events
        assert event.code is ReasonCode.MISS_NO_DNS_OVERLAP

    def test_coalesce_miss_priority_prefers_near_miss(self):
        # A SAN mismatch explains more than a non-multiplexing H1
        # bystander: the request *would* have coalesced with a wider
        # certificate.
        pool = audited_pool()
        add(pool, "www.b.com", multiplex=False, san=("www.b.com",))
        add(pool, "www.a.com", san=("www.a.com",))
        pool.find_coalescable("cdn.a.com", ["10.0.0.1"])
        [event] = pool.audit.events
        assert event.code is ReasonCode.MISS_SAN_MISMATCH

    def test_disabled_audit_records_nothing(self):
        pool = ConnectionPool(
            policy=FirefoxPolicy(origin_frames=True),
        )
        add(pool, "www.a.com")
        assert pool.find_same_host("www.a.com")
        assert pool.audit is NULL_AUDIT
        assert pool.audit.events == []
