"""repro.chaos: fault schedules, deterministic injection, blast radius.

The two determinism gates here (empty-schedule non-perturbation and
jobs-invariance) are the in-process versions of the CI ``chaos-smoke``
job, which holds the same invariants down to ``cmp`` on the CLI
artifacts.
"""

import numpy as np
import pytest

from repro.audit.log import AuditLog, events_to_jsonl
from repro.audit.reasons import ReasonCode
from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.browser.retry import RetryPolicy
from repro.chaos import (
    ChaosError,
    ChaosReport,
    DEFAULT_RETRY_POLICY,
    EMPTY_SCHEDULE,
    ChaosRunner,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    chaos_shard_traced,
    load_fault_schedule,
    parse_fault_schedule,
)
from repro.cli import main
from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import (
    CrawlParams,
    ParallelCrawler,
    derive_seed,
    plan_shards,
)
from repro.dataset.world import build_world
from repro.deployment import BuggyMiddlebox, DeploymentExperiment
from repro.deployment.experiment import deployment_world_config
from repro.telemetry import Telemetry
from repro.traffic import plan_user_shards, simulate_shard
from repro.traffic.scenario import ScenarioConfig


def tiny_params(**overrides) -> CrawlParams:
    defaults = dict(policy="chromium", speculative_rate=0.10,
                    dns_latency_ms=48.0, seed=7, alpn="h2")
    defaults.update(overrides)
    return CrawlParams(**defaults)


# ---------------------------------------------------------------------------
# Schedule parsing and validation
# ---------------------------------------------------------------------------


class TestScheduleParsing:
    def test_full_table_round_trips(self):
        schedule = parse_fault_schedule(
            """
            [[fault]]
            name = "outage"
            kind = "edge_crash"
            at = 4000.0
            duration = 1500.0
            target = "edge-*"
            seed = 3
            """,
            source="inline",
        )
        assert schedule.source == "inline"
        (fault,) = schedule.faults
        assert fault == FaultSpec(name="outage", kind="edge_crash",
                                  at=4000.0, duration=1500.0,
                                  target="edge-*", seed=3)
        assert fault.until == 5500.0
        assert fault.active_at(4000.0) and not fault.active_at(5500.0)

    def test_defaults_and_windows(self):
        schedule = parse_fault_schedule(
            """
            [[fault]]
            kind = "packet_loss"
            at = 0.0
            rate = 0.01

            [[fault]]
            kind = "goaway_storm"
            at = 500.0
            """
        )
        loss, storm = schedule.faults
        # Default names are "<kind>-<index>"; open-ended windows for
        # duration-0 sampled kinds, instantaneous for one-shot kinds.
        assert loss.name == "packet_loss-0"
        assert storm.name == "goaway_storm-1"
        assert loss.until == float("inf")
        assert storm.until == storm.at
        assert not schedule.empty
        assert EMPTY_SCHEDULE.empty

    @pytest.mark.parametrize("body,fragment", [
        ("[[fault]]\nkind = \"meteor\"\nat = 0.0", "unknown fault kind"),
        ("[[fault]]\nkind = \"packet_loss\"", "'at' (simulated ms)"),
        ("[[fault]]\nkind = \"packet_loss\"\nat = -1.0", "must be >= 0"),
        ("[[fault]]\nat = 0.0", "'kind' is required"),
        ("[[fault]]\nkind = \"packet_loss\"\nat = 0.0\nrate = 0.0",
         "'rate' must be in (0, 1]"),
        ("[[fault]]\nkind = \"packet_loss\"\nat = 0.0\nrate = 1.5",
         "'rate' must be in (0, 1]"),
        ("[[fault]]\nkind = \"packet_loss\"\nat = 0.0\nblast = 2",
         "unknown key(s) ['blast']"),
        ("[[fault]]\nkind = \"packet_loss\"\nat = 0.0\ncount = -1",
         "'count' must be a non-negative integer"),
        ("[fault]\nkind = \"packet_loss\"\nat = 0.0",
         "only [[fault]] tables"),
        ("[[failure]]\nkind = \"packet_loss\"\nat = 0.0",
         "only [[fault]] tables"),
    ])
    def test_rejects_bad_tables(self, body, fragment):
        with pytest.raises(ChaosError) as excinfo:
            parse_fault_schedule(body)
        assert fragment in str(excinfo.value)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ChaosError, match="duplicate fault name"):
            parse_fault_schedule(
                """
                [[fault]]
                name = "twin"
                kind = "goaway_storm"
                at = 100.0

                [[fault]]
                name = "twin"
                kind = "goaway_storm"
                at = 200.0
                """
            )

    def test_load_missing_file_is_chaos_error(self, tmp_path):
        with pytest.raises(ChaosError, match="cannot read"):
            load_fault_schedule(tmp_path / "absent.toml")

    def test_demo_schedule_parses(self):
        schedule = load_fault_schedule("examples/faults_demo.toml")
        assert [fault.kind for fault in schedule.faults] == [
            "packet_loss", "goaway_storm", "goaway_storm", "edge_crash",
        ]

    def test_arming_twice_is_a_bug(self):
        world = plan_shards(DatasetConfig(site_count=2, seed=2022),
                            1)[0].build_world()
        injector = FaultInjector(world, EMPTY_SCHEDULE, seed=1)
        injector.arm()
        with pytest.raises(ChaosError, match="already armed"):
            injector.arm()

    def test_dns_faults_require_a_resolver(self):
        world = plan_shards(DatasetConfig(site_count=2, seed=2022),
                            1)[0].build_world()
        schedule = FaultSchedule(faults=(
            FaultSpec(name="dns", kind="dns_servfail", at=0.0),
        ))
        with pytest.raises(ChaosError, match="no resolver"):
            FaultInjector(world, schedule, seed=1).arm()


# ---------------------------------------------------------------------------
# Determinism gates
# ---------------------------------------------------------------------------


class TestEmptyScheduleNonPerturbation:
    def test_identical_to_plain_crawl(self):
        """Arming an empty schedule (retry policy pinned, retry RNG
        seeded) must not move a single byte of the archives or the
        audit stream relative to a plain crawl."""
        config = DatasetConfig(site_count=6, seed=2022)
        params = tiny_params()

        plain = ParallelCrawler(config, params=params, shard_count=2,
                                jobs=1)
        p_result, p_trace = plain.crawl_traced(audit=True)

        runner = ChaosRunner(config, params=params,
                             schedule=EMPTY_SCHEDULE,
                             retry_policy=DEFAULT_RETRY_POLICY,
                             shard_count=2, jobs=1)
        c_result, c_trace, report = runner.run()

        assert [a.to_json() for a in p_result.archives] \
            == [a.to_json() for a in c_result.archives]
        assert events_to_jsonl(p_trace.audit) \
            == events_to_jsonl(c_trace.audit)
        assert report.connections_lost == 0
        assert report.requests_retried == 0
        assert report.requests_exhausted == 0


class TestJobsDeterminism:
    def test_report_and_audit_identical_across_jobs(self):
        """A mixed five-kind schedule produces byte-identical report
        and audit JSONL at --jobs 1 and --jobs 2."""
        schedule = FaultSchedule(faults=(
            FaultSpec(name="loss", kind="packet_loss", at=100.0,
                      duration=4000.0, rate=0.01),
            FaultSpec(name="crash", kind="edge_crash", at=900.0,
                      duration=600.0, target="edge-*"),
            FaultSpec(name="dns", kind="dns_servfail", at=0.0,
                      duration=2000.0, rate=0.5, magnitude_ms=80.0),
            FaultSpec(name="storm", kind="goaway_storm", at=500.0),
            FaultSpec(name="expiry", kind="cert_expiry", at=1200.0,
                      target="origin-*"),
        ), source="gate")
        config = DatasetConfig(site_count=8, seed=2022)
        outs = []
        for jobs in (1, 2):
            runner = ChaosRunner(config, params=tiny_params(),
                                 schedule=schedule,
                                 retry_policy=DEFAULT_RETRY_POLICY,
                                 shard_count=2, jobs=jobs)
            _, trace, report = runner.run()
            outs.append((report.to_jsonl(),
                         events_to_jsonl(trace.audit)))
        assert outs[0] == outs[1]

    def test_faults_actually_fire(self):
        schedule = FaultSchedule(faults=(
            FaultSpec(name="storm", kind="goaway_storm", at=500.0),
        ), source="storm")
        runner = ChaosRunner(DatasetConfig(site_count=6, seed=2022),
                             params=tiny_params(), schedule=schedule,
                             retry_policy=DEFAULT_RETRY_POLICY,
                             shard_count=1)
        _, trace, report = runner.run()
        assert report.tallies[0].fired == 1
        assert report.connections_lost + report.immature_lost > 0
        reasons = {event.reason for event in trace.audit}
        assert ReasonCode.FAULT_INJECTED.value in reasons


# ---------------------------------------------------------------------------
# Blast radius: the robustness cost of coalescing
# ---------------------------------------------------------------------------


class TestBlastRadius:
    def test_coalescing_widens_the_blast(self):
        """Ideal ORIGIN coalescing opens fewer connections than the
        unshared baseline but loses more hostnames per lost
        connection -- the §6.7 incident generalized (acceptance
        criterion for the chaos subsystem)."""
        schedule = load_fault_schedule("examples/faults_demo.toml")
        config = DatasetConfig(site_count=40, seed=2022)
        spec = plan_shards(config, 2)[0]
        reports = {}
        for policy in ("none", "ideal-origin"):
            shard_result, fault_docs = chaos_shard_traced(
                spec, tiny_params(policy=policy), schedule,
                DEFAULT_RETRY_POLICY, trace=False,
            )
            report = ChaosReport(policy=policy,
                                 schedule_source=schedule.source)
            report.absorb_tallies(fault_docs)
            report.connections_opened = sum(
                archive.new_connection_count()
                for archive in shard_result.payload.successes
            )
            reports[policy] = report
        baseline, ideal = reports["none"], reports["ideal-origin"]
        assert baseline.connections_lost > 0
        # Unshared connections carry exactly one hostname each.
        assert baseline.coalesced_lost == 0
        assert baseline.mean_blast_radius == pytest.approx(1.0)
        # Coalescing: fewer connections, wider blast.
        assert ideal.connections_opened < baseline.connections_opened
        assert ideal.coalesced_lost > 0
        assert ideal.mean_blast_radius > baseline.mean_blast_radius

    def test_report_shard_merge_is_counter_addition(self):
        tally_docs = [
            {"name": "storm", "kind": "goaway_storm", "fired": 1,
             "events": 3, "connections_lost": 2, "coalesced_lost": 1,
             "immature_lost": 1, "hostnames_affected": 5,
             "requests_affected": 9, "clients": ["10.0.0.1"]},
            {"name": "storm", "kind": "goaway_storm", "fired": 1,
             "events": 2, "connections_lost": 1, "coalesced_lost": 0,
             "immature_lost": 0, "hostnames_affected": 1,
             "requests_affected": 2, "clients": ["10.0.0.2"]},
        ]
        report = ChaosReport(policy="chromium", schedule_source="x")
        report.absorb_tallies(tally_docs[:1])
        report.absorb_tallies(tally_docs[1:])
        (tally,) = report.tallies
        assert tally.fired == 2
        assert tally.connections_lost == 3
        assert tally.hostnames_affected == 6
        assert tally.users_affected == 2
        assert report.mean_blast_radius == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# ConnectionRegistry consistency under fault-driven eviction storms
# ---------------------------------------------------------------------------


def assert_registry_consistent(registry):
    """The three lookup indexes and the list agree exactly."""
    listed = {id(facts) for facts in registry}
    for bucket_map in (registry.by_sni, registry.by_endpoint):
        indexed = {id(facts) for bucket in bucket_map.values()
                   for facts in bucket}
        assert indexed == listed
        assert all(bucket for bucket in bucket_map.values())
    ip_indexed = {id(facts) for bucket in registry.by_ip.values()
                  for facts in bucket}
    assert ip_indexed <= listed
    assert all(bucket for bucket in registry.by_ip.values())
    for facts in registry:
        assert any(entry is facts
                   for entry in registry.by_sni.get(facts.sni, ()))
        assert any(entry is facts for entry in registry.by_endpoint.get(
            (facts.sni, facts.transport_name), ()))


class TestRegistryUnderStorms:
    def test_indexes_never_dangle(self):
        """Storms, crashes, and random loss rip connections out of the
        pool mid-crawl; after pruning, by_sni/by_ip/by_endpoint must
        hold exactly the live entries -- no dangling facts, no empty
        buckets."""
        schedule = FaultSchedule(faults=(
            FaultSpec(name="loss", kind="packet_loss", at=0.0,
                      rate=0.05),
            FaultSpec(name="storm", kind="goaway_storm", at=400.0),
            FaultSpec(name="crash", kind="edge_crash", at=700.0,
                      duration=400.0, target="edge-*"),
        ), source="storms")
        spec = plan_shards(DatasetConfig(site_count=10, seed=2022),
                           1)[0]
        world = spec.build_world()
        telemetry = Telemetry(clock=world.network.loop.now,
                              trace=False, audit=True)
        from repro.browser.policy import policy_by_name
        from repro.dataset.crawler import Crawler

        crawler = Crawler(
            world, policy=policy_by_name("chromium"),
            speculative_rate=0.10, seed=7, telemetry=telemetry,
            retry_policy=DEFAULT_RETRY_POLICY,
            retry_seed=derive_seed(7, 5, 0, 1),
        )
        injector = FaultInjector(world, schedule, seed=derive_seed(
            7, 4, 0, 1), resolver=crawler.resolver,
            audit=telemetry.audit)
        injector.arm()

        pruned_total = 0
        for hosted in world.sites:
            crawler.crawl_site(hosted)
            if not hosted.record.accessible:
                continue  # nothing was loaded; no pool to inspect
            pool = crawler.engine.loads[-1].pool
            pool.open_count  # lazily prunes dead connections
            for facts in pool.connections:
                assert not facts.session.closed
                assert facts.session.failed is None
            assert_registry_consistent(pool.connections)
            pruned_total += pool.stats.pruned_connections
        assert pruned_total >= 1
        assert sum(tally.events for tally in injector.tallies) > 0


# ---------------------------------------------------------------------------
# §6.7 as a fault schedule
# ---------------------------------------------------------------------------


def load_deployment_site(world, site, audit):
    telemetry = Telemetry(clock=world.network.loop.now, trace=False,
                          audit=True)
    telemetry.audit = audit
    context = BrowserContext(
        network=world.network,
        client_host=world.client_host,
        resolver=world.make_resolver(),
        trust_store=world.trust_store,
        authorities=world.authorities,
        policy=FirefoxPolicy(origin_frames=True),
        asdb=world.asdb,
        telemetry=telemetry,
    )
    return BrowserEngine(context).load_blocking(site.hosted.record.page)


class TestMiddleboxFaultSchedule:
    def test_schedule_reproduces_the_667_teardown(self):
        """A `middlebox_teardown` fault targeting the crawl client
        makes the same decisions as the hand-installed §6.7
        BuggyMiddlebox: same teardown events, same dead page."""

        def fresh_world():
            world = build_world(
                deployment_world_config(site_count=40, seed=77)
            )
            experiment = DeploymentExperiment(world)
            experiment.reissue_certificates()
            experiment.enable_origin_frames()
            return world, experiment

        # Run A: the original deployment-experiment middlebox.
        world_a, experiment_a = fresh_world()
        audit_a = AuditLog(clock=world_a.network.loop.now)
        middlebox = BuggyMiddlebox(
            world_a.network,
            protected_clients={world_a.client_host.name},
        )
        middlebox.audit = audit_a
        middlebox.install()
        archive_a = load_deployment_site(
            world_a, experiment_a.sample[0], audit_a
        )
        middlebox.uninstall()

        # Run B: the same incident declared as a fault schedule.
        world_b, experiment_b = fresh_world()
        audit_b = AuditLog(clock=world_b.network.loop.now)
        schedule = parse_fault_schedule(
            f"""
            [[fault]]
            name = "noncompliant-middlebox"
            kind = "middlebox_teardown"
            at = 0.0
            target = "{world_b.client_host.name}"
            """,
            source="middlebox-667",
        )
        injector = FaultInjector(world_b, schedule, seed=1,
                                 audit=audit_b)
        injector.arm()
        archive_b = load_deployment_site(
            world_b, experiment_b.sample[0], audit_b
        )

        # Both runs kill the page the same way.
        assert not archive_a.page.success
        assert not archive_b.page.success
        assert middlebox.stats.unknown_frames_seen > 0
        assert middlebox.stats.connections_torn_down > 0
        stats_b = injector.middlebox_stats
        assert stats_b.unknown_frames_seen \
            == middlebox.stats.unknown_frames_seen
        assert stats_b.connections_torn_down \
            == middlebox.stats.connections_torn_down
        assert stats_b.frames_inspected == middlebox.stats.frames_inspected

        def decisions(events):
            return [(event.reason, event.attrs.get("frame_type"))
                    for event in events if event.kind == "middlebox"]

        assert decisions(audit_a.events) == decisions(audit_b.events)
        assert decisions(audit_b.events)  # the teardown is audited
        # The injector attributes the torn-down connection as a fault
        # loss on top of the middlebox's own decision record.
        assert injector.tallies[0].connections_lost \
            + injector.tallies[0].immature_lost > 0


# ---------------------------------------------------------------------------
# Legacy GOAWAY knobs == explicit RetryPolicy (satellite: consolidation)
# ---------------------------------------------------------------------------


class TestLegacyGoawayEquivalence:
    def test_traffic_overload_audit_is_identical(self, monkeypatch):
        """The traffic simulator's legacy goaway_retry_limit/backoff
        knobs must route through the unified RetryPolicy with zero
        behaviour change: pinning the equivalent explicit policy
        yields a byte-identical audit stream."""
        scenario = ScenarioConfig(
            users=16, site_count=6, seed=2022, duration_ms=8_000.0,
            mean_visits_per_user=2.0, bucket_ms=2_000.0,
            edge_capacity=2,
        )
        shard = plan_user_shards(scenario, 1)[0]
        baseline = simulate_shard(shard)
        assert baseline.payload.retries > 0  # overload actually bites

        original_init = BrowserEngine.__init__

        def pin_explicit_policy(self, context):
            if context.retry_policy is None:
                context.retry_policy = RetryPolicy.legacy_goaway(
                    context.goaway_retry_limit,
                    context.goaway_retry_backoff_ms,
                )
            original_init(self, context)

        monkeypatch.setattr(BrowserEngine, "__init__",
                            pin_explicit_policy)
        pinned = simulate_shard(shard)

        assert events_to_jsonl(baseline.events) \
            == events_to_jsonl(pinned.events)
        assert baseline.payload.retries == pinned.payload.retries
        assert baseline.payload.failed == pinned.payload.failed

    def test_legacy_goaway_policy_shape(self):
        policy = RetryPolicy.legacy_goaway(2, 120.0)
        assert policy.max_retries == 2
        assert not policy.retry_connection_loss
        assert policy.jitter_ms == 0.0
        # Linear backoff: attempt n waits n * base.
        rng = np.random.default_rng(0)
        assert policy.backoff_ms(1, rng) == pytest.approx(120.0)
        assert policy.backoff_ms(2, rng) == pytest.approx(240.0)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)


# ---------------------------------------------------------------------------
# CLI guard rails: bad inputs exit 2, never traceback
# ---------------------------------------------------------------------------


class TestCliGuards:
    def test_chaos_missing_schedule_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--schedule", str(tmp_path / "nope.toml"),
                  "--sites", "2"])
        assert excinfo.value.code == 2

    def test_chaos_invalid_schedule_exits_2(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("[[fault]]\nkind = \"meteor\"\nat = 0.0\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--schedule", str(bad), "--sites", "2"])
        assert excinfo.value.code == 2

    def test_report_missing_record_exits_2(self, tmp_path):
        assert main(["report", str(tmp_path / "absent.json")]) == 2

    def test_report_empty_record_exits_2(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2

    @pytest.mark.parametrize("line", ["null", "[1, 2]", '"record"'])
    def test_report_non_object_record_exits_2(self, tmp_path, line):
        garbled = tmp_path / "garbled.json"
        garbled.write_text(line + "\n")
        assert main(["report", str(garbled)]) == 2

    def test_report_phase_line_missing_fields_exits_2(self, tmp_path):
        truncated = tmp_path / "truncated.json"
        truncated.write_text(
            '{"schema": 1, "run_id": "x", "kind": "crawl", '
            '"created_at": "now", "meta": {}, "headline": {}}\n'
            '{"count": 3}\n'
        )
        assert main(["report", str(truncated)]) == 2

    def test_compare_missing_records_exit_2(self, tmp_path):
        assert main(["compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2

    def test_audit_diff_missing_file_exits_2(self, tmp_path):
        assert main(["audit-diff", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 2

    def test_audit_diff_garbled_exits_2(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text("not json\n")
        b.write_text("{}\n")
        assert main(["audit-diff", str(a), str(b)]) == 2

    def test_audit_diff_missing_fields_exits_2(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"kind": "decision"}\n')
        b.write_text('{"kind": "decision"}\n')
        assert main(["audit-diff", str(a), str(b)]) == 2
