"""Unit tests for the HTTP/1.1 text framing and protocols."""

import pytest
from hypothesis import given, strategies as st

from repro.h2.http1 import (
    H1ClientProtocol,
    H1ServerProtocol,
    build_request,
    build_response,
    parse_message,
)


class TestFraming:
    def test_request_roundtrip(self):
        wire = build_request("GET", "/path", [("host", "example.com"),
                                              ("referer", "https://r/")])
        message, rest = parse_message(wire)
        assert rest == b""
        assert message.start_line == "GET /path HTTP/1.1"
        assert ("host", "example.com") in message.headers
        assert ("referer", "https://r/") in message.headers

    def test_response_roundtrip(self):
        wire = build_response(200, [("content-type", "text/html")],
                              b"<html>")
        message, rest = parse_message(wire)
        assert rest == b""
        assert message.start_line.startswith("HTTP/1.1 200")
        assert message.body == b"<html>"

    def test_incomplete_head_buffers(self):
        wire = build_request("GET", "/", [("host", "a")])
        message, rest = parse_message(wire[:10])
        assert message is None
        assert rest == wire[:10]

    def test_incomplete_body_buffers(self):
        wire = build_response(200, [], b"0123456789")
        message, rest = parse_message(wire[:-3])
        assert message is None

    def test_pipelined_messages_split(self):
        wire = build_response(200, [], b"one") + \
            build_response(200, [], b"twotwo")
        first, rest = parse_message(wire)
        second, rest = parse_message(rest)
        assert first.body == b"one"
        assert second.body == b"twotwo"
        assert rest == b""

    def test_header_names_lowercased(self):
        wire = b"GET / HTTP/1.1\r\nHost: Example.COM\r\n\r\n"
        message, _ = parse_message(wire)
        assert ("host", "Example.COM") in message.headers

    @given(st.binary(max_size=300))
    def test_body_bytes_preserved(self, body):
        wire = build_response(200, [], body)
        message, rest = parse_message(wire)
        assert message.body == body
        assert rest == b""


class TestServerProtocol:
    def make(self, handler=None):
        sent = []

        def default_handler(authority, path, headers):
            return 200, [("x-echo", path)], f"hello {authority}".encode()

        protocol = H1ServerProtocol(sent.append,
                                    handler or default_handler)
        return protocol, sent

    def test_serves_request(self):
        protocol, sent = self.make()
        protocol.on_app_data(
            build_request("GET", "/a", [("host", "example.com")])
        )
        assert len(sent) == 1
        message, _ = parse_message(sent[0])
        assert message.body == b"hello example.com"
        assert protocol.requests_served == 1

    def test_persistent_connection_serves_many(self):
        protocol, sent = self.make()
        for path in ("/a", "/b", "/c"):
            protocol.on_app_data(
                build_request("GET", path, [("host", "example.com")])
            )
        assert len(sent) == 3
        assert protocol.requests_served == 3

    def test_fragmented_request_reassembled(self):
        protocol, sent = self.make()
        wire = build_request("GET", "/a", [("host", "example.com")])
        protocol.on_app_data(wire[:7])
        assert sent == []
        protocol.on_app_data(wire[7:])
        assert len(sent) == 1

    def test_on_request_observer(self):
        seen = []
        protocol = H1ServerProtocol(
            lambda data: None,
            lambda a, p, h: (200, [], b""),
            on_request=lambda authority, index: seen.append(
                (authority, index)
            ),
        )
        protocol.on_app_data(
            build_request("GET", "/", [("host", "x.com")])
        )
        assert seen == [("x.com", 1)]


class TestClientProtocol:
    def make(self):
        sent = []
        clock = [0.0]
        protocol = H1ClientProtocol(sent.append, lambda: clock[0])
        return protocol, sent, clock

    def test_serial_queueing(self):
        protocol, sent, _ = self.make()
        responses = []
        protocol.request("a.com", "/1", responses.append)
        protocol.request("a.com", "/2", responses.append)
        # Only the first request is on the wire.
        assert len(sent) == 1
        assert protocol.busy
        protocol.on_app_data(build_response(200, [], b"one"))
        # Completion releases the second request.
        assert len(sent) == 2
        protocol.on_app_data(build_response(200, [], b"two"))
        assert [r.body for r in responses] == [b"one", b"two"]
        assert not protocol.busy

    def test_response_timestamps(self):
        protocol, sent, clock = self.make()
        responses = []
        protocol.request("a.com", "/1", responses.append)
        clock[0] = 50.0
        protocol.on_app_data(build_response(200, [], b"x"))
        assert responses[0].sent_at == 0.0
        assert responses[0].finished_at == 50.0

    def test_extra_headers_sent(self):
        protocol, sent, _ = self.make()
        protocol.request("a.com", "/1", lambda r: None,
                         extra_headers=(("referer", "https://p/"),))
        message, _ = parse_message(sent[0])
        assert ("referer", "https://p/") in message.headers

    def test_status_parsed(self):
        protocol, _, _ = self.make()
        responses = []
        protocol.request("a.com", "/missing", responses.append)
        protocol.on_app_data(build_response(404, [], b""))
        assert responses[0].status == 404
