"""Tests for the Tranco list, page generator, and plan invariants."""

import numpy as np
import pytest

from repro.dataset.generator import DatasetConfig, PageGenerator
from repro.dataset.tranco import TrancoList
from repro.web.page import FetchMode


class TestTrancoList:
    def test_entries_are_ranked_and_deterministic(self):
        tranco = TrancoList(100)
        assert len(tranco) == 100
        first = tranco.entry(1)
        assert first.rank == 1
        assert first.domain == TrancoList(100).entry(1).domain

    def test_domains_unique(self):
        tranco = TrancoList(500)
        domains = [entry.domain for entry in tranco]
        assert len(set(domains)) == 500

    def test_rank_bounds_enforced(self):
        tranco = TrancoList(10)
        with pytest.raises(IndexError):
            tranco.entry(0)
        with pytest.raises(IndexError):
            tranco.entry(11)

    def test_bucketing(self):
        tranco = TrancoList(500_000)
        assert tranco.bucket_of(1) == 0
        assert tranco.bucket_of(100_000) == 0
        assert tranco.bucket_of(100_001) == 1
        assert tranco.bucket_of(500_000) == 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TrancoList(0)


@pytest.fixture(scope="module")
def records():
    config = DatasetConfig(site_count=300, seed=11)
    return PageGenerator(config).generate_all(), config


class TestGeneratorDeterminism:
    def test_same_seed_same_plan(self):
        config = DatasetConfig(site_count=20, seed=5)
        a = PageGenerator(config).generate_all()
        b = PageGenerator(config).generate_all()
        assert [r.provider for r in a] == [r.provider for r in b]
        assert [r.cert_san for r in a] == [r.cert_san for r in b]
        assert [len(r.page.resources) for r in a] == \
            [len(r.page.resources) for r in b]

    def test_different_seed_different_plan(self):
        a = PageGenerator(DatasetConfig(site_count=20, seed=5)).generate_all()
        b = PageGenerator(DatasetConfig(site_count=20, seed=6)).generate_all()
        assert [len(r.page.resources) for r in a] != \
            [len(r.page.resources) for r in b]


class TestPlanShape:
    def test_scaled_ranks_span_the_rank_space(self, records):
        sites, config = records
        ranks = [site.scaled_rank for site in sites]
        assert min(ranks) >= 1
        assert max(ranks) <= config.rank_space
        assert max(ranks) > 400_000  # covers the tail buckets

    def test_subresource_median_near_paper(self, records):
        sites, _ = records
        counts = [len(site.page.resources) for site in sites]
        median = float(np.median(counts))
        assert 55 <= median <= 115  # paper: 81

    def test_provider_shares_near_targets(self, records):
        sites, _ = records
        cloudflare = sum(1 for s in sites if s.provider == "Cloudflare")
        tail = sum(1 for s in sites if s.self_hosted)
        assert 0.15 <= cloudflare / len(sites) <= 0.35  # paper: 24.74%
        assert 0.35 <= tail / len(sites) <= 0.60

    def test_success_rate_near_paper(self, records):
        sites, _ = records
        rate = sum(1 for s in sites if s.accessible) / len(sites)
        assert 0.55 <= rate <= 0.72  # paper: 63.5%

    def test_every_page_graph_is_valid(self, records):
        sites, _ = records
        for site in sites:
            # WebPage constructor validates the dependency graph.
            assert site.page.request_count == 1 + len(site.page.resources)

    def test_san_median_near_two(self, records):
        sites, _ = records
        san_counts = [len(s.cert_san) for s in sites if s.cert_san]
        assert 2 <= float(np.median(san_counts)) <= 3  # paper: 2

    def test_some_zero_san_sites(self, records):
        sites, _ = records
        zero = sum(1 for s in sites if not s.cert_san)
        assert 0 < zero / len(sites) < 0.10  # paper: ~3.5%

    def test_anonymous_fetches_present(self, records):
        sites, _ = records
        modes = [
            resource.fetch_mode
            for site in sites
            for resource in site.page.resources
        ]
        anonymous = sum(
            1 for mode in modes if mode is not FetchMode.NORMAL
        )
        assert 0.02 < anonymous / len(modes) < 0.30

    def test_insecure_rate_near_paper(self, records):
        sites, _ = records
        flags = [
            resource.secure
            for site in sites
            for resource in site.page.resources
        ]
        insecure = sum(1 for secure in flags if not secure)
        assert 0.005 < insecure / len(flags) < 0.035  # paper: 1.47%

    def test_popular_hosts_used_by_many_pages(self, records):
        sites, _ = records
        using_ga = sum(
            1 for site in sites
            if any(r.hostname == "www.google-analytics.com"
                   for r in site.page.resources)
        )
        assert using_ga / len(sites) > 0.4

    def test_tail_third_parties_shared(self, records):
        sites, _ = records
        generator = PageGenerator(DatasetConfig(site_count=300, seed=11))
        pool = {t.hostname for t in generator.tail_third_parties}
        seen = set()
        for site in sites:
            for resource in site.page.resources:
                if resource.hostname in pool:
                    seen.add(resource.hostname)
        assert len(seen) > 20
