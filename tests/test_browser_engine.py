"""Integration tests: the page-load engine over the simulated world."""

import numpy as np
import pytest

from repro.browser import (
    BrowserEngine,
    ChromiumPolicy,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
)
from repro.web import ContentType, FetchMode, Subresource, WebPage


def simple_page(**kwargs):
    """Root on www.site.com with three subresources on CDN hostnames
    plus one on an unrelated origin."""
    defaults = dict(
        hostname="www.site.com",
        resources=[
            Subresource("static.site.com", "/app.js",
                        ContentType.APPLICATION_JAVASCRIPT, 20_000),
            Subresource("static.site.com", "/style.css",
                        ContentType.TEXT_CSS, 14_000),
            Subresource("thirdparty.cdn.com", "/lib.js",
                        ContentType.APPLICATION_JAVASCRIPT, 30_000),
            Subresource("other.com", "/pixel.gif",
                        ContentType.IMAGE_GIF, 2_000),
        ],
    )
    defaults.update(kwargs)
    return WebPage(**defaults)


class TestBasicPageLoad:
    def test_all_requests_complete(self, small_world):
        archive = small_world.engine().load_blocking(simple_page())
        assert archive.request_count == 5
        assert all(entry.status == 200 for entry in archive.entries)
        assert archive.page.success

    def test_page_load_time_positive_and_ordered(self, small_world):
        archive = small_world.engine().load_blocking(simple_page())
        assert archive.page.on_load > 0
        assert archive.page.on_content_load <= archive.page.on_load

    def test_root_entry_has_full_connection_setup(self, small_world):
        archive = small_world.engine().load_blocking(simple_page())
        root = archive.entries_by_start()[0]
        assert root.hostname == "www.site.com"
        assert root.timings.dns > 0
        assert root.timings.connect > 0
        assert root.timings.ssl > 0
        assert root.certificate_san  # validated a new chain

    def test_asn_annotation(self, small_world):
        archive = small_world.engine().load_blocking(simple_page())
        orgs = {entry.hostname: entry.as_org for entry in archive.entries}
        assert orgs["www.site.com"] == "CDN-AS"
        assert orgs["other.com"] == "Origin-AS"
        assert set(archive.unique_asns()) == {13335, 64500}

    def test_har_entries_have_consistent_timings(self, small_world):
        archive = small_world.engine().load_blocking(simple_page())
        for entry in archive.entries:
            entry.timings.validate()
            assert entry.finished_at >= entry.started_at


class TestSameHostReuse:
    def test_second_resource_on_same_host_reuses(self, small_world):
        page = simple_page()
        archive = small_world.engine().load_blocking(page)
        static_entries = [e for e in archive.entries
                          if e.hostname == "static.site.com"]
        assert len(static_entries) == 2
        # One opened the connection; the other reused it.
        fresh = [e for e in static_entries if e.new_tls_connection]
        reused = [e for e in static_entries if not e.new_tls_connection]
        assert len(fresh) <= 1
        assert len(reused) >= 1
        for entry in reused:
            assert entry.timings.connect == -1.0
            assert entry.timings.ssl == -1.0


class TestChromiumCoalescing:
    def test_same_ip_subresource_coalesces(self, small_world):
        # static.site.com resolves to the same IP as www.site.com.
        archive = small_world.engine(ChromiumPolicy()).load_blocking(
            simple_page()
        )
        static = [e for e in archive.entries
                  if e.hostname == "static.site.com"]
        assert any(e.coalesced for e in static)
        coalesced = [e for e in static if e.coalesced]
        # Browser still queried DNS before deciding (§2.3).
        assert all(e.timings.dns >= 0 or e.timings.dns == -1.0
                   for e in coalesced)
        assert all(not e.new_tls_connection for e in coalesced)

    def test_different_ip_subresource_does_not_coalesce(self, small_world):
        # thirdparty.cdn.com resolves to 10.0.0.2, root connected 10.0.0.1.
        archive = small_world.engine(ChromiumPolicy()).load_blocking(
            simple_page()
        )
        third = [e for e in archive.entries
                 if e.hostname == "thirdparty.cdn.com"]
        assert all(not e.coalesced for e in third)
        assert all(e.new_tls_connection for e in third)


class TestFirefoxCoalescing:
    def test_origin_frame_coalesces_across_ips(self, small_world):
        # thirdparty.cdn.com is in the edge's ORIGIN set and its SAN.
        archive = small_world.engine(FirefoxPolicy()).load_blocking(
            simple_page()
        )
        third = [e for e in archive.entries
                 if e.hostname == "thirdparty.cdn.com"]
        assert all(e.coalesced for e in third)
        assert all(not e.new_tls_connection for e in third)
        # Firefox still paid the DNS query (§6.8).
        assert all(e.timings.dns >= 0 for e in third)

    def test_unrelated_origin_not_coalesced(self, small_world):
        archive = small_world.engine(FirefoxPolicy()).load_blocking(
            simple_page()
        )
        other = [e for e in archive.entries if e.hostname == "other.com"]
        assert all(not e.coalesced for e in other)
        assert all(e.new_tls_connection for e in other)

    def test_firefox_without_origin_misses_third_party(self, small_world):
        archive = small_world.engine(
            FirefoxPolicy(origin_frames=False)
        ).load_blocking(simple_page())
        third = [e for e in archive.entries
                 if e.hostname == "thirdparty.cdn.com"]
        assert all(not e.coalesced for e in third)


class TestIdealOriginClient:
    def test_coalesced_resources_skip_dns(self, small_world):
        archive = small_world.engine(IdealOriginPolicy()).load_blocking(
            simple_page()
        )
        third = [e for e in archive.entries
                 if e.hostname == "thirdparty.cdn.com"]
        assert all(e.coalesced for e in third)
        assert all(e.timings.dns == -1.0 for e in third)

    def test_fewer_connections_than_chromium(self, make_world):
        chromium_archive = make_world().engine(
            ChromiumPolicy()
        ).load_blocking(simple_page())
        ideal_archive = make_world().engine(
            IdealOriginPolicy()
        ).load_blocking(simple_page())
        assert (
            ideal_archive.tls_connection_count()
            < chromium_archive.tls_connection_count()
        )
        assert (
            ideal_archive.dns_query_count()
            < chromium_archive.dns_query_count()
        )


class TestFetchModes:
    def test_anonymous_fetch_not_coalesced(self, small_world):
        page = WebPage(
            hostname="www.site.com",
            resources=[
                Subresource("thirdparty.cdn.com", "/lib.js",
                            ContentType.APPLICATION_JAVASCRIPT, 30_000,
                            fetch_mode=FetchMode.CORS_ANONYMOUS),
            ],
        )
        archive = small_world.engine(FirefoxPolicy()).load_blocking(page)
        third = [e for e in archive.entries
                 if e.hostname == "thirdparty.cdn.com"]
        assert all(not e.coalesced for e in third)
        assert all(e.new_tls_connection for e in third)
        assert third[0].fetch_mode == "cors-anonymous"

    def test_script_fetch_not_coalesced(self, small_world):
        page = WebPage(
            hostname="www.site.com",
            resources=[
                Subresource("thirdparty.cdn.com", "/data.json",
                            ContentType.APPLICATION_JSON, 3_000,
                            fetch_mode=FetchMode.SCRIPT_FETCH),
            ],
        )
        archive = small_world.engine(FirefoxPolicy()).load_blocking(page)
        third = [e for e in archive.entries
                 if e.hostname == "thirdparty.cdn.com"]
        assert all(not e.coalesced for e in third)


class TestNoCoalescing:
    def test_every_host_gets_own_connection(self, small_world):
        archive = small_world.engine(NoCoalescingPolicy()).load_blocking(
            simple_page()
        )
        hosts_with_new_conns = {
            e.hostname for e in archive.entries if e.new_tls_connection
        }
        assert hosts_with_new_conns == {
            "www.site.com", "static.site.com", "thirdparty.cdn.com",
            "other.com",
        }


class TestDependencyTiming:
    def test_child_starts_after_parent_finishes(self, small_world):
        page = WebPage(
            hostname="www.site.com",
            resources=[
                Subresource("static.site.com", "/style.css",
                            ContentType.TEXT_CSS, 14_000),
                Subresource("static.site.com", "/font.woff",
                            ContentType.FONT_WOFF2, 28_000,
                            parent="/style.css",
                            discovery_delay_ms=3.0),
            ],
        )
        archive = small_world.engine().load_blocking(page)
        by_path = {e.path: e for e in archive.entries}
        css = by_path["/style.css"]
        font = by_path["/font.woff"]
        assert font.started_at >= css.finished_at + 3.0 - 1e-6


class TestSpeculativeConnections:
    def test_extra_tls_connections_recorded(self, make_world):
        world = make_world()
        engine = world.engine(
            ChromiumPolicy(),
            rng=np.random.default_rng(1),
            speculative_rate=1.0,
        )
        archive = engine.load_blocking(simple_page())
        assert archive.page.extra_tls_connections > 0
        assert archive.tls_connection_count() > archive.dns_query_count()


class TestCache:
    def test_warm_load_uses_cache(self, make_world):
        world = make_world()
        engine = world.engine(ChromiumPolicy(), cache_enabled=True)
        page = simple_page()
        cold = engine.load_blocking(page)
        warm = engine.load_blocking(page)
        assert warm.tls_connection_count() <= cold.tls_connection_count()
        cached = [e for e in warm.entries if e.protocol == "cache"]
        assert cached

    def test_new_session_flushes_cache(self, make_world):
        world = make_world()
        engine = world.engine(ChromiumPolicy(), cache_enabled=True)
        page = simple_page()
        engine.load_blocking(page)
        engine.new_session()
        reload = engine.load_blocking(page)
        assert not [e for e in reload.entries if e.protocol == "cache"]


class TestFailures:
    def test_unresolvable_root_fails_page(self, small_world):
        page = WebPage(hostname="www.does-not-exist.example")
        archive = small_world.engine().load_blocking(page)
        assert not archive.page.success
        assert archive.entries[0].status == 0

    def test_unresolvable_subresource_does_not_fail_page(self, small_world):
        page = WebPage(
            hostname="www.site.com",
            resources=[
                Subresource("missing.example", "/x.js",
                            ContentType.TEXT_JAVASCRIPT, 100),
            ],
        )
        archive = small_world.engine().load_blocking(page)
        assert archive.page.success
        statuses = {e.hostname: e.status for e in archive.entries}
        assert statuses["missing.example"] == 0
