"""Tests for the ASCII waterfall renderer."""

import pytest

from repro.analysis import render_waterfall
from repro.web.har import HarArchive, HarEntry, HarPage, HarTimings


def make_archive():
    entries = [
        HarEntry(
            url="https://www.a.com/", hostname="www.a.com", path="/",
            started_at=0.0,
            timings=HarTimings(dns=20.0, connect=30.0, ssl=30.0,
                               wait=40.0, receive=30.0),
        ),
        HarEntry(
            url="https://cdn.a.com/x.js", hostname="cdn.a.com",
            path="/x.js", started_at=160.0,
            timings=HarTimings(wait=20.0, receive=20.0),
            coalesced=True,
        ),
    ]
    return HarArchive(
        page=HarPage(url="https://www.a.com/", hostname="www.a.com",
                     on_load=200.0),
        entries=entries,
    )


class TestWaterfall:
    def test_renders_one_row_per_entry(self):
        text = render_waterfall(make_archive())
        lines = text.splitlines()
        assert len(lines) == 4  # header + 2 entries + legend
        assert "www.a.com/" in lines[1]
        assert "cdn.a.com/x.js" in lines[2]

    def test_phases_appear_in_order(self):
        text = render_waterfall(make_archive())
        root_row = text.splitlines()[1]
        assert root_row.index("D") < root_row.index("C") \
            < root_row.index("S") < root_row.index("#")

    def test_coalesced_entries_flagged(self):
        text = render_waterfall(make_archive())
        rows = text.splitlines()
        assert "*" in rows[2]
        assert "*" not in rows[1].replace("*=coalesced", "")

    def test_reused_connection_shows_no_setup_phases(self):
        text = render_waterfall(make_archive())
        cdn_row = text.splitlines()[2]
        bar = cdn_row.split("*", 1)[1]
        assert "D" not in bar and "C" not in bar and "S" not in bar
        assert "#" in bar

    def test_later_entries_start_further_right(self):
        text = render_waterfall(make_archive())
        rows = text.splitlines()
        first_bar_start = len(rows[1]) - len(rows[1][31:].lstrip())
        second_bar_start = len(rows[2]) - len(rows[2][31:].lstrip())
        assert rows[2].index("#") > rows[1].index("D")

    def test_empty_archive(self):
        empty = HarArchive(page=HarPage(url="u", hostname="h"))
        assert render_waterfall(empty) == "(empty timeline)"

    def test_limit_and_label_truncation(self):
        archive = make_archive()
        archive.entries[0].path = "/" + "x" * 100
        text = render_waterfall(archive, limit=1, label_width=20)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 1 entry + legend
        assert "~" in lines[1]  # truncated label marker
