"""Tests for the §5 deployment: sample, certs, IP/ORIGIN phases,
passive + active measurement, and the longitudinal study."""

import numpy as np
import pytest

from repro.dataset.world import build_world
from repro.deployment import (
    ActiveMeasurement,
    DeploymentExperiment,
    LongitudinalStudy,
    PassivePipeline,
)
from repro.deployment.experiment import (
    DEFAULT_CONTROL_DOMAIN,
    DEFAULT_THIRD_PARTY,
    Group,
    deployment_world_config,
)


@pytest.fixture(scope="module")
def deployed():
    """World + experiment with reissued certificates (module-scoped)."""
    world = build_world(deployment_world_config(site_count=300))
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    return world, experiment


class TestSampleSelection:
    def test_sample_is_nonempty_and_grouped(self, deployed):
        _, experiment = deployed
        assert len(experiment.sample) >= 10
        assert experiment.sites_in(Group.EXPERIMENT)
        assert experiment.sites_in(Group.CONTROL)

    def test_sample_sites_hosted_by_the_cdn(self, deployed):
        _, experiment = deployed
        for site in experiment.sample:
            assert site.hosted.record.provider == "Cloudflare"

    def test_sample_sites_request_third_party(self, deployed):
        _, experiment = deployed
        for site in experiment.sample:
            hostnames = {
                r.hostname for r in site.hosted.record.page.resources
            }
            assert DEFAULT_THIRD_PARTY in hostnames

    def test_subpage_only_sites_removed(self, deployed):
        _, experiment = deployed
        assert experiment.removed_subpage_only > 0

    def test_group_lookup_by_referer(self, deployed):
        _, experiment = deployed
        site = experiment.sample[0]
        referer = f"https://{site.root_hostname}/"
        assert experiment.group_of_domain(referer) is site.group
        assert experiment.group_of_domain("https://unrelated.example/") \
            is None


class TestCertificateReissuance:
    def test_all_sample_certs_reissued(self, deployed):
        _, experiment = deployed
        for site in experiment.sample:
            assert site.reissued_certificate is not None
            assert site.reissued_certificate.serial != \
                site.original_certificate.serial

    def test_experiment_certs_cover_third_party(self, deployed):
        _, experiment = deployed
        for site in experiment.sites_in(Group.EXPERIMENT):
            assert site.reissued_certificate.covers(DEFAULT_THIRD_PARTY)
            assert not site.reissued_certificate.covers(
                DEFAULT_CONTROL_DOMAIN
            )

    def test_control_certs_cover_padding_domain_only(self, deployed):
        _, experiment = deployed
        for site in experiment.sites_in(Group.CONTROL):
            assert site.reissued_certificate.covers(DEFAULT_CONTROL_DOMAIN)
            assert not site.reissued_certificate.covers(DEFAULT_THIRD_PARTY)

    def test_byte_equal_modifications(self, deployed):
        """Figure 6: both groups' SAN additions are the same size."""
        _, experiment = deployed
        deltas = experiment.certificate_size_deltas()
        assert set(deltas[Group.EXPERIMENT]) == set(deltas[Group.CONTROL])
        assert all(delta > 0 for delta in deltas[Group.EXPERIMENT])

    def test_server_serves_renewed_chain(self, deployed):
        _, experiment = deployed
        site = experiment.sites_in(Group.EXPERIMENT)[0]
        chain = experiment.cdn_server.config.chain_for_sni(
            site.root_hostname
        )
        assert chain is not None
        assert chain[0].serial == site.reissued_certificate.serial

    def test_mismatched_control_domain_length_rejected(self, deployed):
        world, _ = deployed
        with pytest.raises(ValueError):
            DeploymentExperiment(world, control_domain="short.com")


class TestOriginDeploymentActive:
    """§5.3 / Figure 7b."""

    @pytest.fixture(scope="class")
    def result(self, deployed):
        _, experiment = deployed
        experiment.enable_origin_frames()
        active = ActiveMeasurement(experiment, origin_frames=True)
        measured = active.run()
        experiment.disable_origin_frames()
        return measured

    def test_experiment_mostly_coalesces(self, result):
        # Paper: ~64% of experiment visits trigger no new connections.
        assert result.fraction_with(Group.EXPERIMENT, 0) >= 0.4

    def test_control_mostly_connects(self, result):
        # Paper: ~84% of control visits make exactly one connection;
        # only churned visits make zero.
        assert result.fraction_with(Group.CONTROL, 0) <= 0.3
        assert result.fraction_at_most(Group.CONTROL, 2) >= 0.6

    def test_experiment_beats_control(self, result):
        assert result.fraction_with(Group.EXPERIMENT, 0) > \
            result.fraction_with(Group.CONTROL, 0)

    def test_connection_counts_bounded(self, result):
        # Paper: no ORIGIN-phase visit made more than 4 new connections.
        assert result.max_connections(Group.EXPERIMENT) <= 4

    def test_cdf_is_monotone(self, result):
        cdf = result.cdf(Group.CONTROL)
        values = [fraction for _, fraction in cdf]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)


class TestIpDeploymentActive:
    """§5.2 / Figure 7a."""

    @pytest.fixture(scope="class")
    def result(self, deployed):
        _, experiment = deployed
        experiment.deploy_ip_coalescing()
        active = ActiveMeasurement(
            experiment, origin_frames=False, seed=77
        )
        measured = active.run()
        experiment.undo_ip_coalescing()
        return measured

    def test_experiment_coalesces_via_shared_ip(self, result):
        # Paper: ~70% of experiment visits make no new connections.
        assert result.fraction_with(Group.EXPERIMENT, 0) >= 0.4

    def test_control_cannot_coalesce(self, result):
        # Certificates without the third party block IP coalescing too.
        assert result.fraction_with(Group.CONTROL, 0) <= 0.3

    def test_control_connection_cap(self, result):
        # Paper: no control visit made more than 7 new connections.
        assert result.max_connections(Group.CONTROL) <= 7


class TestPassivePipeline:
    @pytest.fixture(scope="class")
    def traffic(self, deployed):
        _, experiment = deployed
        experiment.enable_origin_frames()
        pipeline = PassivePipeline(experiment, sampling_rate=1.0)
        pipeline.attach()
        active = ActiveMeasurement(experiment, origin_frames=True,
                                   seed=5, churn_rate=0.0)
        active.run()
        pipeline.detach()
        experiment.disable_origin_frames()
        return pipeline

    def test_records_have_flag_bits(self, traffic):
        third = traffic.third_party_records()
        assert third
        flagged = [r for r in third if r.sni_host_mismatch]
        direct = [r for r in third if not r.sni_host_mismatch]
        assert flagged, "no coalesced third-party requests observed"
        # Coalesced requests ride a site connection: SNI is the site.
        for record in flagged:
            assert record.sni != DEFAULT_THIRD_PARTY
        for record in direct:
            assert record.sni == DEFAULT_THIRD_PARTY

    def test_only_experiment_group_coalesces(self, traffic):
        assert traffic.coalesced_connection_count(Group.EXPERIMENT) > 0
        assert traffic.coalesced_connection_count(Group.CONTROL) == 0

    def test_tls_connection_reduction(self, traffic):
        # Paper §5.3: ~50% fewer new third-party TLS connections.
        assert traffic.tls_connection_reduction() >= 0.3

    def test_referer_attribution(self, traffic):
        groups = {r.group for r in traffic.third_party_records()}
        assert Group.EXPERIMENT in groups
        assert Group.CONTROL in groups

    def test_sampling_rate_reduces_volume(self, deployed):
        _, experiment = deployed
        dense = PassivePipeline(experiment, sampling_rate=1.0, seed=1)
        sparse = PassivePipeline(experiment, sampling_rate=0.05, seed=1)
        experiment.enable_origin_frames()
        dense.attach()
        active = ActiveMeasurement(experiment, origin_frames=True,
                                   seed=9)
        active.run(limit=6)
        dense.detach()
        sparse.attach()
        active2 = ActiveMeasurement(experiment, origin_frames=True,
                                    seed=9)
        active2.run(limit=6)
        sparse.detach()
        experiment.disable_origin_frames()
        assert len(sparse.records) < len(dense.records)

    def test_invalid_sampling_rate(self, deployed):
        _, experiment = deployed
        with pytest.raises(ValueError):
            PassivePipeline(experiment, sampling_rate=0.0)


class TestLongitudinal:
    def test_reduction_only_inside_deployment_window(self, deployed):
        """Figure 8: the experiment group's third-party connection rate
        halves during the treatment window and matches control outside."""
        _, experiment = deployed
        pipeline = PassivePipeline(experiment, sampling_rate=1.0, seed=3)
        pipeline.attach()
        study = LongitudinalStudy(experiment, pipeline,
                                  visits_per_site_per_day=1)
        rates = study.run(total_days=6, deploy_on=2, deploy_off=4)
        pipeline.detach()
        assert len(rates.days) == 6
        during = rates.reduction_during_deployment()
        outside = rates.reduction_outside_deployment()
        assert during >= 0.3          # paper: ~50%
        assert abs(outside) < 0.35    # no effect before/after
        assert during > outside
