"""Unit tests for the simulated TLS record layer."""

import numpy as np
import pytest

from repro.h2.tls_channel import (
    REC_ALERT,
    REC_APPDATA,
    REC_CERT,
    REC_HELLO,
    TlsClientChannel,
    TlsClientConfig,
    TlsServerChannel,
    deserialize_chain,
    pack_record,
    parse_records,
    serialize_chain,
)
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore


class TestRecordFraming:
    def test_roundtrip(self):
        wire = pack_record(REC_APPDATA, b"payload")
        records, rest = parse_records(wire)
        assert records == [(REC_APPDATA, b"payload")]
        assert rest == b""

    def test_partial_record_buffered(self):
        wire = pack_record(REC_APPDATA, b"payload")
        records, rest = parse_records(wire[:-2])
        assert records == []
        assert rest == wire[:-2]

    def test_multiple_records(self):
        wire = pack_record(REC_HELLO, b"a") + pack_record(REC_CERT, b"bb")
        records, rest = parse_records(wire)
        assert [t for t, _ in records] == [REC_HELLO, REC_CERT]
        assert rest == b""

    def test_empty_payload(self):
        records, _ = parse_records(pack_record(REC_ALERT, b""))
        assert records == [(REC_ALERT, b"")]


class TestChainSerialization:
    def test_roundtrip_preserves_identity(self):
        ca = CertificateAuthority("Ser CA", rng=np.random.default_rng(2))
        leaf = ca.issue("www.example.com", ("cdn.example.com",))
        chain = ca.chain_for(leaf)
        restored = deserialize_chain(serialize_chain(chain))
        assert len(restored) == len(chain)
        for original, copy in zip(chain, restored):
            assert copy.subject == original.subject
            assert copy.san == original.san
            assert copy.signature == original.signature
            assert copy.fingerprint() == original.fingerprint()
        # Signatures still verify after the round trip.
        assert ca.verify(restored[0])

    def test_padded_to_realistic_size(self):
        ca = CertificateAuthority("Pad CA", rng=np.random.default_rng(2))
        leaf = ca.issue("www.example.com", ())
        chain = ca.chain_for(leaf)
        wire = serialize_chain(chain)
        assert len(wire) >= sum(c.size_bytes for c in chain)


class TestHandshakeFlow:
    def make_pair(self, tls13=True, server_alpn=("h2", "http/1.1"),
                  client_alpn=("h2", "http/1.1"), sni="www.example.com",
                  ech=False):
        network = Network(
            loop=EventLoop(),
            latency=LatencyModel(default=LinkSpec(rtt_ms=10.0,
                                                  bandwidth_bpms=1e6)),
        )
        ca = CertificateAuthority("Flow CA", rng=np.random.default_rng(4))
        trust = TrustStore([ca])
        leaf = ca.issue("www.example.com", ())
        chain = ca.chain_for(leaf)
        server_host = network.add_host(Host("s", "us", ["10.0.0.1"]))
        client_host = network.add_host(Host("c", "us", ["10.1.0.1"]))
        ends = {}
        network.listen(server_host, "10.0.0.1", 443,
                       lambda t: ends.__setitem__("server", t))
        network.connect(client_host, "10.0.0.1", 443,
                        lambda t: ends.__setitem__("client", t))
        network.loop.run_until_idle()
        server = TlsServerChannel(
            ends["server"], lambda s: chain if s == "www.example.com"
            else None,
            supported_alpn=server_alpn,
        )
        config = TlsClientConfig(
            sni=sni, trust_store=trust, authorities=[ca],
            now=network.loop.now, tls13=tls13, ech_enabled=ech,
            alpn=client_alpn,
        )
        client = TlsClientChannel(ends["client"], config)
        return network, client, server

    def test_tls13_establishes_both_ends(self):
        network, client, server = self.make_pair()
        client.start()
        network.loop.run_until_idle()
        assert client.established and server.established
        assert client.negotiated_alpn == "h2"
        assert server.negotiated_alpn == "h2"

    def test_tls12_takes_an_extra_round_trip(self):
        network13, client13, _ = self.make_pair(tls13=True)
        client13.start()
        network13.loop.run_until_idle()
        t13 = network13.loop.now()

        network12, client12, _ = self.make_pair(tls13=False)
        client12.start()
        network12.loop.run_until_idle()
        t12 = network12.loop.now()
        assert t12 > t13

    def test_app_data_flows_after_establishment(self):
        network, client, server = self.make_pair()
        received = []
        server.on_app_data = received.append
        client.on_established = lambda: client.send_app(b"hello h2")
        client.start()
        network.loop.run_until_idle()
        assert received == [b"hello h2"]

    def test_unknown_sni_gets_alert(self):
        network, client, server = self.make_pair(sni="nope.example.org")
        failures = []
        client.on_failed = failures.append
        client.start()
        network.loop.run_until_idle()
        assert failures
        assert "no certificate" in failures[0]
        assert not client.established

    def test_alpn_server_preference(self):
        network, client, server = self.make_pair(
            server_alpn=("http/1.1",),
        )
        client.start()
        network.loop.run_until_idle()
        assert client.negotiated_alpn == "http/1.1"

    def test_no_common_alpn_fails(self):
        network, client, server = self.make_pair(
            server_alpn=("spdy/3",), client_alpn=("h2",),
        )
        failures = []
        client.on_failed = failures.append
        client.start()
        network.loop.run_until_idle()
        assert failures
        assert "ALPN" in failures[0]

    def test_sni_plaintext_observable_without_ech(self):
        network, client, server = self.make_pair()
        client.start()
        network.loop.run_until_idle()
        assert server.observed_sni == "www.example.com"

    def test_ech_hides_sni_from_observer(self):
        network, client, server = self.make_pair(ech=True)
        client.start()
        network.loop.run_until_idle()
        # The wire carried no SNI, but the server still selected the
        # right certificate from the (encrypted) inner hello.
        assert server.observed_sni == ""
        assert server.client_sni == "www.example.com"
        assert client.established

    def test_send_before_establishment_raises(self):
        from repro.h2.tls_channel import TlsChannelError

        _, client, _ = self.make_pair()
        with pytest.raises(TlsChannelError):
            client.send_app(b"too soon")
