"""Unit tests for the run-ledger subsystem (:mod:`repro.obs`)."""

import pytest

from repro.obs import NULL_PHASES, PhaseRecorder
from repro.obs.compare import (
    CompareResult,
    CompareRow,
    compare_records,
    render_compare,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.ledger import (
    LedgerError,
    RunRecord,
    histogram_from_doc,
    merge_phase_docs,
    phase_docs_from_registry,
    resolve_record_path,
    write_record,
)
from repro.obs.report import render_report, slo_failures
from repro.obs.slo import (
    SloError,
    evaluate_slos,
    parse_slo,
    slo_burn,
)
from repro.telemetry.metrics import MetricsRegistry


class TestPhaseRecorder:
    def test_null_phases_is_disabled_and_inert(self):
        assert NULL_PHASES.enabled is False
        NULL_PHASES.observe("dns", 12.0)  # must not raise

    def test_observations_land_in_labeled_histograms(self):
        registry = MetricsRegistry()
        phases = PhaseRecorder(registry, policy="chromium")
        phases.observe("dns", 40.0)
        phases.observe("ttfb", 120.0, protocol="h2")
        docs = phase_docs_from_registry(registry)
        assert [doc["name"] for doc in docs] == [
            "phase.dns", "phase.ttfb",
        ]
        assert docs[0]["labels"] == {
            "policy": "chromium", "protocol": "-", "cohort": "-",
        }
        assert docs[1]["labels"]["protocol"] == "h2"

    def test_two_recorders_share_series_through_one_registry(self):
        registry = MetricsRegistry()
        PhaseRecorder(registry, policy="p").observe("dns", 10.0)
        PhaseRecorder(registry, policy="p").observe("dns", 20.0)
        (doc,) = phase_docs_from_registry(registry)
        assert doc["count"] == 2

    def test_docs_sorted_in_phase_pipeline_order(self):
        registry = MetricsRegistry()
        phases = PhaseRecorder(registry)
        for name in ("page", "dns", "tls", "connect", "ttfb"):
            phases.observe(name, 1.0)
        names = [d["name"] for d in phase_docs_from_registry(registry)]
        assert names == ["phase.dns", "phase.connect", "phase.tls",
                         "phase.ttfb", "phase.page"]


SLO_TEXT = """
# latency gates
[[slo]]
name = "dns-p90"
phase = "dns"
quantile = 0.9
max_ms = 200.0
policy = "chromium"

[[slo]]
phase = "page"
quantile = 0.5
max_ms = 4000.0

[[slo]]
name = "no-failures"
metric = "pages_failed"
max = 0
"""


class TestSloParser:
    def test_parses_phase_and_metric_rules(self):
        rules = parse_slo(SLO_TEXT)
        assert [r.name for r in rules] == [
            "dns-p90", "page-p50", "no-failures",
        ]
        assert rules[0].policy == "chromium"
        assert rules[1].quantile == 0.5
        assert rules[2].max_value == 0

    def test_comments_and_blank_lines_ignored(self):
        rules = parse_slo(
            '[[slo]]\nphase = "dns" # trailing\n\n'
            'quantile = 0.5\nmax_ms = 100  # note\n'
        )
        assert rules[0].max_ms == 100.0

    def test_rejects_rule_with_both_phase_and_metric(self):
        with pytest.raises(SloError):
            parse_slo('[[slo]]\nphase = "dns"\nmetric = "x"\n')

    def test_rejects_phase_rule_missing_quantile(self):
        with pytest.raises(SloError, match="quantile"):
            parse_slo('[[slo]]\nphase = "dns"\nmax_ms = 1\n')

    def test_rejects_quantile_out_of_range(self):
        with pytest.raises(SloError, match="quantile"):
            parse_slo(
                '[[slo]]\nphase = "dns"\nquantile = 2\nmax_ms = 1\n'
            )

    def test_rejects_unknown_keys_and_tables(self):
        with pytest.raises(SloError, match="unknown key"):
            parse_slo('[[slo]]\nphase = "dns"\nquantile = 0.5\n'
                      'max_ms = 1\ntypo = 3\n')
        with pytest.raises(SloError, match="only"):
            parse_slo("[other]\n")

    def test_rejects_key_outside_table(self):
        with pytest.raises(SloError, match="outside"):
            parse_slo('phase = "dns"\n')

    def test_rejects_duplicate_names(self):
        with pytest.raises(SloError, match="duplicate"):
            parse_slo(
                '[[slo]]\nname = "x"\nmetric = "m"\nmax = 1\n'
                '[[slo]]\nname = "x"\nmetric = "n"\nmax = 1\n'
            )

    def test_rejects_unparsable_value(self):
        with pytest.raises(SloError, match="quoted string"):
            parse_slo("[[slo]]\nphase = dns\n")


def _phase_docs(**values_by_policy):
    registry = MetricsRegistry()
    for policy, values in values_by_policy.items():
        phases = PhaseRecorder(registry, policy=policy)
        for value in values:
            phases.observe("dns", value)
    return phase_docs_from_registry(registry)


class TestSloEvaluation:
    def test_pass_and_fail_verdicts(self):
        docs = _phase_docs(chromium=[40.0, 60.0, 80.0])
        rules = parse_slo(
            '[[slo]]\nname = "ok"\nphase = "dns"\nquantile = 0.9\n'
            'max_ms = 200\n'
            '[[slo]]\nname = "tight"\nphase = "dns"\nquantile = 0.9\n'
            'max_ms = 10\n'
        )
        rows = evaluate_slos(rules, docs, {})
        assert [row["ok"] for row in rows] == [True, False]
        assert rows[0]["count"] == 3

    def test_filters_merge_only_matching_series(self):
        docs = _phase_docs(chromium=[10.0], firefox=[5000.0])
        rules = parse_slo(
            '[[slo]]\nname = "g"\nphase = "dns"\nquantile = 1.0\n'
            'max_ms = 100\npolicy = "chromium"\n'
        )
        (row,) = evaluate_slos(rules, docs, {})
        assert row["ok"] is True
        assert row["count"] == 1

    def test_no_matching_data_passes_with_null_measurement(self):
        rules = parse_slo(
            '[[slo]]\nphase = "tls"\nquantile = 0.5\nmax_ms = 1\n'
        )
        (row,) = evaluate_slos(rules, [], {})
        assert row["ok"] is True and row["measured"] is None

    def test_metric_rule_max_and_min(self):
        rules = parse_slo(
            '[[slo]]\nmetric = "pages_failed"\nmax = 0\n'
            '[[slo]]\nmetric = "pages_succeeded"\nmin = 10\n'
        )
        rows = evaluate_slos(rules, [], {
            "pages_failed": 2, "pages_succeeded": 12,
        })
        assert [row["ok"] for row in rows] == [False, True]

    def test_slo_burn_counts_phase_rules_only(self):
        docs = _phase_docs(chromium=[500.0])
        rules = parse_slo(
            '[[slo]]\nphase = "dns"\nquantile = 0.5\nmax_ms = 100\n'
            '[[slo]]\nmetric = "pages_failed"\nmax = 0\n'
        )
        assert slo_burn(rules, docs) == (1, 1)


def _record(fingerprint="f" * 32, dns_values=(40.0, 60.0),
            headline=None, kind="crawl"):
    registry = MetricsRegistry()
    phases = PhaseRecorder(registry, policy="chromium")
    for value in dns_values:
        phases.observe("dns", value)
    meta = {
        "schema": 1, "kind": kind,
        "run": f"{kind}-{fingerprint[:12]}",
        "fingerprint": fingerprint, "git": "", "version": "1.0.0",
    }
    return RunRecord(
        meta=meta,
        phases=phase_docs_from_registry(registry),
        headline=dict(headline or {"pages_failed": 0}),
    )


class TestRunRecord:
    def test_jsonl_round_trip_is_identity(self):
        record = _record()
        record.slo = [{"name": "g", "target": "t", "measured": 1.0,
                       "count": 2, "ok": True}]
        text = record.to_jsonl()
        again = RunRecord.from_jsonl(text)
        assert again.meta == record.meta
        assert again.phases == record.phases
        assert again.headline == record.headline
        assert again.slo == record.slo
        assert again.to_jsonl() == text

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(LedgerError, match="not JSON"):
            RunRecord.from_jsonl("{nope\n")
        with pytest.raises(LedgerError, match="unknown record line"):
            RunRecord.from_jsonl('{"t":"wat"}\n')
        with pytest.raises(LedgerError, match="no meta"):
            RunRecord.from_jsonl('{"t":"headline","metrics":{}}\n')

    def test_write_and_resolve(self, tmp_path):
        record = _record()
        path = write_record(tmp_path, record)
        assert path.name == f"{record.run_id}.jsonl"
        assert resolve_record_path(str(path)) == path
        assert resolve_record_path(record.run_id, tmp_path) == path
        with pytest.raises(LedgerError, match="no run record"):
            resolve_record_path("missing", tmp_path)

    def test_histogram_doc_round_trip(self):
        (doc,) = _record(dns_values=(40.0, 60.0, 900.0)).phases
        histogram = histogram_from_doc(doc)
        assert histogram.count == 3
        assert histogram.min == 40.0 and histogram.max == 900.0

    def test_merge_phase_docs_sums_series(self):
        docs = _phase_docs(chromium=[10.0], firefox=[30.0])
        merged = merge_phase_docs(docs)
        assert merged.count == 2
        assert merged.min == 10.0 and merged.max == 30.0


class TestCompare:
    def test_identical_records_are_clean(self):
        result = compare_records(_record(), _record())
        assert result.exit_code == 0
        assert all(r.verdict == "unchanged" for r in result.rows
                   if r.group != "headline")

    def test_latency_regression_detected_and_named(self):
        result = compare_records(
            _record(dns_values=(40.0, 60.0)),
            _record(dns_values=(400.0, 600.0)),
        )
        assert result.exit_code == 1
        regressed = {row.metric for row in result.regressed}
        assert "phase.dns p50" in regressed

    def test_improvement_is_not_a_regression(self):
        result = compare_records(
            _record(dns_values=(400.0, 600.0)),
            _record(dns_values=(40.0, 60.0)),
        )
        assert result.exit_code == 0
        assert any(row.verdict == "improved" for row in result.rows)

    def test_noise_floor_suppresses_small_deltas(self):
        result = compare_records(
            _record(dns_values=(40.0,)),
            _record(dns_values=(42.0,)),
        )
        assert result.exit_code == 0

    def test_count_drift_reported_without_gating(self):
        result = compare_records(
            _record(dns_values=(40.0,)),
            _record(dns_values=(40.0, 41.0)),
        )
        assert result.exit_code == 0
        assert any(row.verdict == "changed" and "count" in row.metric
                   for row in result.rows)

    def test_headline_gates_only_on_same_fingerprint(self):
        worse = {"pages_failed": 5}
        same = compare_records(
            _record(headline={"pages_failed": 0}),
            _record(headline=worse),
        )
        assert same.exit_code == 1
        different = compare_records(
            _record(fingerprint="a" * 32,
                    headline={"pages_failed": 0}),
            _record(fingerprint="b" * 32, headline=worse),
        )
        assert different.exit_code == 0
        assert any("informational" in note
                   for note in different.notes)

    def test_kind_mismatch_is_incomparable(self):
        result = compare_records(
            _record(kind="crawl"), _record(kind="traffic")
        )
        assert result.exit_code == 2
        assert "kind mismatch" in result.incomparable

    def test_schema_mismatch_is_incomparable(self):
        newer = _record()
        newer.meta["schema"] = 99
        assert compare_records(_record(), newer).exit_code == 2

    def test_disjoint_phases_fall_back_to_headline(self):
        # A baseline cohort mix vs a fleet-ORIGIN one shares no phase
        # series (different cohort labels) but stays comparable via
        # the headline metrics.
        empty = _record(dns_values=())
        result = compare_records(_record(), empty)
        assert result.exit_code == 0
        assert any("not compared" in note for note in result.notes)

    def test_nothing_shared_is_incomparable(self):
        other = _record(dns_values=(), headline={"only_b": 1})
        assert compare_records(_record(), other).exit_code == 2

    def test_render_names_regressions(self):
        result = compare_records(
            _record(dns_values=(40.0,)),
            _record(dns_values=(900.0,)),
        )
        text = render_compare(result, "A", "B")
        assert "REGRESSED" in text
        assert "phase.dns p50" in text

    def test_render_clean_and_incomparable(self):
        clean = render_compare(
            CompareResult(rows=[CompareRow("m", "g", 1, 1,
                                           "unchanged")]),
            "A", "B",
        )
        assert "clean" in clean
        assert "incomparable: why" in render_compare(
            CompareResult(incomparable="why"), "A", "B"
        )


class TestReport:
    def test_ascii_report_sections(self):
        record = _record()
        record.slo = [
            {"name": "good", "target": "t", "measured": 60.0,
             "count": 2, "ok": True},
            {"name": "bad", "target": "t", "measured": 60.0,
             "count": 2, "ok": False},
            {"name": "idle", "target": "t", "measured": None,
             "count": 0, "ok": True},
        ]
        text = render_report(record)
        assert record.run_id in text
        assert "phase latency" in text
        assert "pages_failed" in text
        assert "PASS" in text and "FAIL" in text and "no data" in text
        assert slo_failures(record) == ["bad"]

    def test_markdown_report_has_tables(self):
        text = render_report(_record(), fmt="markdown")
        assert text.startswith("## Run")
        assert "| field | value |" in text
        assert "| --- |" in text

    def test_report_without_phases_states_it(self):
        text = render_report(_record(dns_values=()))
        assert "no phase histograms" in text


class _Stream:
    def __init__(self, tty=True):
        self.chunks = []
        self.tty = tty

    def write(self, chunk):
        self.chunks.append(chunk)

    def flush(self):
        pass

    def isatty(self):
        return self.tty


class TestHeartbeat:
    def test_disabled_on_non_tty(self):
        stream = _Stream(tty=False)
        hb = Heartbeat(stream=stream)
        assert hb.enabled is False
        assert hb.tick({"x": 1}) is False
        hb.close()
        assert stream.chunks == []

    def test_rate_limited_rewrites(self):
        stream = _Stream()
        now = [0.0]
        hb = Heartbeat(stream=stream, min_interval_s=1.0,
                       clock=lambda: now[0])
        assert hb.tick({"shards": "1/4"}) is True
        assert hb.tick({"shards": "2/4"}) is False  # too soon
        now[0] = 2.0
        assert hb.tick({"shards": "3/4"}) is True
        assert hb.tick({"shards": "4/4"}, force=True) is True
        hb.close()
        drawn = "".join(stream.chunks)
        assert drawn.count("\r") == 3
        assert "shards 2/4" not in drawn
        assert drawn.endswith("\n")

    def test_elapsed_uses_injected_clock(self):
        now = [5.0]
        hb = Heartbeat(stream=_Stream(), clock=lambda: now[0])
        now[0] = 8.5
        assert hb.elapsed() == 3.5
