"""Tests for content types, the AS database, pages, and HAR archives."""

import pytest
from hypothesis import given, strategies as st

from repro.web import (
    AsDatabase,
    ContentType,
    CONTENT_TYPE_SIZES,
    FetchMode,
    HarArchive,
    HarEntry,
    HarPage,
    HarTimings,
    Subresource,
    WebPage,
)


class TestContentType:
    def test_every_type_has_a_size(self):
        for content_type in ContentType:
            assert CONTENT_TYPE_SIZES[content_type] > 0

    def test_script_classification(self):
        assert ContentType.APPLICATION_JAVASCRIPT.is_script
        assert ContentType.TEXT_JAVASCRIPT.is_script
        assert not ContentType.IMAGE_PNG.is_script

    def test_render_blocking(self):
        assert ContentType.TEXT_CSS.is_render_blocking
        assert ContentType.APPLICATION_JAVASCRIPT.is_render_blocking
        assert not ContentType.IMAGE_JPEG.is_render_blocking

    def test_discovery_capability(self):
        assert ContentType.TEXT_HTML.can_discover_children
        assert ContentType.TEXT_CSS.can_discover_children
        assert not ContentType.FONT_WOFF2.can_discover_children


class TestAsDatabase:
    def test_register_and_lookup(self):
        db = AsDatabase()
        db.register("10.1.0.0/16", 13335, "Cloudflare")
        assert db.asn_of("10.1.2.3") == 13335
        assert db.org_of("10.1.2.3") == "Cloudflare"

    def test_longest_prefix_wins(self):
        db = AsDatabase()
        db.register("10.0.0.0/8", 15169, "Google")
        db.register("10.1.0.0/16", 13335, "Cloudflare")
        db.register("10.1.2.0/24", 16509, "Amazon 02")
        assert db.asn_of("10.9.9.9") == 15169
        assert db.asn_of("10.1.9.9") == 13335
        assert db.asn_of("10.1.2.9") == 16509

    def test_unregistered_space_returns_none(self):
        db = AsDatabase()
        assert db.lookup("192.168.1.1") is None
        assert db.asn_of("192.168.1.1") is None

    def test_same_asn_multiple_blocks(self):
        db = AsDatabase()
        db.register("10.1.0.0/24", 13335, "Cloudflare")
        db.register("10.2.0.0/24", 13335, "Cloudflare")
        assert db.asn_of("10.1.0.5") == db.asn_of("10.2.0.5") == 13335
        assert len(db) == 1

    def test_conflicting_org_rejected(self):
        db = AsDatabase()
        db.register("10.1.0.0/24", 13335, "Cloudflare")
        with pytest.raises(ValueError):
            db.register("10.2.0.0/24", 13335, "NotCloudflare")

    def test_bad_cidr_rejected(self):
        db = AsDatabase()
        with pytest.raises(ValueError):
            db.register("10.1.0.0", 13335, "Cloudflare")
        with pytest.raises(ValueError):
            db.register("10.1.0.0/20", 13335, "Cloudflare")

    def test_info_for_asn(self):
        db = AsDatabase()
        db.register("10.1.0.0/24", 13335, "Cloudflare")
        assert db.info_for_asn(13335).org == "Cloudflare"
        assert db.info_for_asn(99999) is None


def make_page():
    return WebPage(
        hostname="www.example.com",
        resources=[
            Subresource("static.example.com", "/js/app.js",
                        ContentType.APPLICATION_JAVASCRIPT, 20_000),
            Subresource("static.example.com", "/css/style.css",
                        ContentType.TEXT_CSS, 14_000),
            Subresource("fonts.cdnhost.com", "/arial.woff",
                        ContentType.FONT_WOFF2, 28_000,
                        parent="/css/style.css"),
            Subresource("tracker.com", "/t.js",
                        ContentType.TEXT_JAVASCRIPT, 2_000,
                        fetch_mode=FetchMode.SCRIPT_FETCH),
        ],
    )


class TestWebPage:
    def test_hostnames_root_first(self):
        page = make_page()
        assert page.hostnames()[0] == "www.example.com"
        assert set(page.sharded_hostnames()) == {
            "static.example.com", "fonts.cdnhost.com", "tracker.com",
        }

    def test_request_count(self):
        assert make_page().request_count == 5

    def test_children_of_root(self):
        page = make_page()
        root_children = {r.path for r in page.children_of(None)}
        assert root_children == {"/js/app.js", "/css/style.css", "/t.js"}
        assert page.children_of("/") == page.children_of(None)

    def test_children_of_css(self):
        page = make_page()
        assert [r.path for r in page.children_of("/css/style.css")] == [
            "/arial.woff"
        ]

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError):
            WebPage(
                hostname="www.example.com",
                resources=[
                    Subresource("a.com", "/x.js",
                                ContentType.TEXT_JAVASCRIPT, 100,
                                parent="/missing.css"),
                ],
            )

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            WebPage(
                hostname="www.example.com",
                resources=[
                    Subresource("a.com", "/a.css", ContentType.TEXT_CSS,
                                100, parent="/b.css"),
                    Subresource("a.com", "/b.css", ContentType.TEXT_CSS,
                                100, parent="/a.css"),
                ],
            )

    def test_coalescing_eligibility_by_fetch_mode(self):
        page = make_page()
        modes = {r.path: r.coalescing_eligible for r in page.resources}
        assert modes["/js/app.js"] is True
        assert modes["/t.js"] is False

    def test_bad_resource_values_rejected(self):
        with pytest.raises(ValueError):
            Subresource("a.com", "no-slash", ContentType.TEXT_CSS, 100)
        with pytest.raises(ValueError):
            Subresource("a.com", "/x", ContentType.TEXT_CSS, -1)
        with pytest.raises(ValueError):
            Subresource("a.com", "/x", ContentType.TEXT_CSS, 1,
                        discovery_delay_ms=-1)


class TestHarTimings:
    def test_total_skips_not_applicable(self):
        timings = HarTimings(blocked=5.0, dns=-1.0, connect=-1.0, ssl=-1.0,
                             send=1.0, wait=10.0, receive=4.0)
        assert timings.total() == 20.0

    def test_connection_flags(self):
        fresh = HarTimings(dns=12.0, connect=20.0, ssl=22.0)
        reused = HarTimings()
        assert fresh.used_dns and fresh.used_new_connection
        assert not reused.used_dns and not reused.used_new_connection

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            HarTimings(blocked=-2.0).validate()
        with pytest.raises(ValueError):
            HarTimings(dns=-0.5).validate()

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
    )
    def test_total_is_monotone_in_phases(self, wait, receive):
        base = HarTimings(wait=wait).total()
        more = HarTimings(wait=wait, receive=receive).total()
        assert more >= base


class TestHarArchive:
    def make_archive(self):
        page = HarPage(url="https://www.example.com/",
                       hostname="www.example.com", rank=42,
                       on_content_load=800.0, on_load=1500.0)
        entries = [
            HarEntry(
                url="https://www.example.com/",
                hostname="www.example.com", path="/", started_at=0.0,
                timings=HarTimings(dns=15.0, connect=20.0, ssl=20.0,
                                   wait=30.0, receive=50.0),
                server_ip="10.0.0.1", asn=13335, as_org="Cloudflare",
                dns_addresses=["10.0.0.1"],
                certificate_san=["www.example.com"],
            ),
            HarEntry(
                url="https://static.example.com/app.js",
                hostname="static.example.com", path="/app.js",
                started_at=120.0,
                timings=HarTimings(dns=12.0, connect=20.0, ssl=20.0,
                                   wait=25.0, receive=30.0),
                server_ip="10.0.0.2", asn=13335, as_org="Cloudflare",
            ),
            HarEntry(
                url="https://www.example.com/logo.png",
                hostname="www.example.com", path="/logo.png",
                started_at=130.0,
                timings=HarTimings(wait=20.0, receive=25.0),
                server_ip="10.0.0.1", asn=13335, as_org="Cloudflare",
                coalesced=True,
            ),
        ]
        return HarArchive(page=page, entries=entries)

    def test_counts(self):
        archive = self.make_archive()
        assert archive.request_count == 3
        assert archive.dns_query_count() == 2
        assert archive.tls_connection_count() == 2
        assert archive.new_connection_count() == 2
        assert archive.unique_asns() == [13335]
        assert archive.page_load_time == 1500.0

    def test_entry_finish_times(self):
        archive = self.make_archive()
        first = archive.entries[0]
        assert first.finished_at == pytest.approx(135.0)
        assert first.new_tls_connection

    def test_json_roundtrip(self):
        archive = self.make_archive()
        restored = HarArchive.from_json(archive.to_json())
        assert restored.page == archive.page
        assert restored.entries == archive.entries

    def test_entries_by_start_sorts(self):
        archive = self.make_archive()
        archive.entries.reverse()
        ordered = archive.entries_by_start()
        assert [e.started_at for e in ordered] == [0.0, 120.0, 130.0]
