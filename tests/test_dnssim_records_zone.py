"""Unit tests for DNS records and zones."""

import pytest

from repro.dnssim import RecordType, ResourceRecord, Zone, ZoneError
from repro.dnssim.records import normalize_name


class TestNormalizeName:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("Example.COM", "example.com"),
            ("example.com.", "example.com"),
            ("  www.example.com ", "www.example.com"),
        ],
    )
    def test_normalization(self, raw, expected):
        assert normalize_name(raw) == expected


class TestResourceRecord:
    def test_name_is_normalized(self):
        record = ResourceRecord("WWW.Example.com.", RecordType.A, "10.0.0.1")
        assert record.name == "www.example.com"

    def test_cname_target_is_normalized(self):
        record = ResourceRecord("a.example.com", RecordType.CNAME, "B.Example.com")
        assert record.value == "b.example.com"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("", RecordType.A, "10.0.0.1")

    def test_non_positive_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.example.com", RecordType.A, "10.0.0.1", ttl=0)


class TestZone:
    def test_covers_origin_and_subdomains(self):
        zone = Zone("example.com")
        assert zone.covers("example.com")
        assert zone.covers("www.example.com")
        assert zone.covers("a.b.example.com")
        assert not zone.covers("example.org")
        assert not zone.covers("badexample.com")

    def test_rejects_foreign_records(self):
        zone = Zone("example.com")
        with pytest.raises(ZoneError):
            zone.add(ResourceRecord("www.other.com", RecordType.A, "10.0.0.1"))

    def test_lookup_exact_match(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", ["10.0.0.1", "10.0.0.2"])
        records = zone.lookup("www.example.com", RecordType.A)
        assert [r.value for r in records] == ["10.0.0.1", "10.0.0.2"]

    def test_lookup_is_case_insensitive(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", "10.0.0.1")
        assert zone.lookup("WWW.EXAMPLE.COM", RecordType.A)

    def test_wildcard_matches_single_label(self):
        zone = Zone("example.com")
        zone.add_a("*.example.com", "10.0.0.9")
        records = zone.lookup("anything.example.com", RecordType.A)
        assert records and records[0].value == "10.0.0.9"
        # Synthesized record carries the queried name.
        assert records[0].name == "anything.example.com"

    def test_wildcard_does_not_match_deeper_names(self):
        zone = Zone("example.com")
        zone.add_a("*.example.com", "10.0.0.9")
        assert zone.lookup("a.b.example.com", RecordType.A) == []

    def test_exact_beats_wildcard(self):
        zone = Zone("example.com")
        zone.add_a("*.example.com", "10.0.0.9")
        zone.add_a("www.example.com", "10.0.0.1")
        records = zone.lookup("www.example.com", RecordType.A)
        assert [r.value for r in records] == ["10.0.0.1"]

    def test_cname_returned_for_a_lookup(self):
        zone = Zone("example.com")
        zone.add_cname("alias.example.com", "real.example.com")
        records = zone.lookup("alias.example.com", RecordType.A)
        assert records[0].rtype is RecordType.CNAME
        assert records[0].value == "real.example.com"

    def test_cname_exclusivity_enforced(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", "10.0.0.1")
        with pytest.raises(ZoneError):
            zone.add_cname("www.example.com", "other.example.com")

    def test_a_after_cname_rejected(self):
        zone = Zone("example.com")
        zone.add_cname("www.example.com", "other.example.com")
        with pytest.raises(ZoneError):
            zone.add_a("www.example.com", "10.0.0.1")

    def test_remove_records(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", ["10.0.0.1", "10.0.0.2"])
        assert zone.remove("www.example.com", RecordType.A) == 2
        assert zone.lookup("www.example.com", RecordType.A) == []

    def test_names_and_count(self):
        zone = Zone("example.com")
        zone.add_a("a.example.com", "10.0.0.1")
        zone.add_a("b.example.com", ["10.0.0.2", "10.0.0.3"])
        assert zone.names() == ["a.example.com", "b.example.com"]
        assert zone.record_count() == 3

    def test_empty_origin_rejected(self):
        with pytest.raises(ZoneError):
            Zone("")
