"""Golden wire-bytes tests.

``tests/data/wire_golden.json`` freezes the exact bytes the H2
framing, HPACK, and record-framing layers produced before the
hot-path optimizations landed.  These tests replay the corpus against
the live code in both directions (serialize and parse), so any
optimization that changes a single wire byte -- framing layout, HPACK
indexing decisions, record packing -- fails here rather than showing
up as a silently different crawl.

Regenerate the corpus with ``scripts/gen_wire_golden.py`` only when
the wire format itself intentionally changes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.h2 import frames as fr
from repro.h2.hpack import HpackDecoder, HpackEncoder
from repro.transport.framing import (
    consume_records,
    pack_record,
    parse_records,
)

DATA_PATH = (
    pathlib.Path(__file__).resolve().parent / "data" / "wire_golden.json"
)
CORPUS = json.loads(DATA_PATH.read_text())

FRAME_CLASSES = {
    cls.__name__: cls
    for cls in (
        fr.DataFrame, fr.HeadersFrame, fr.PriorityFrame,
        fr.RstStreamFrame, fr.SettingsFrame, fr.PushPromiseFrame,
        fr.PingFrame, fr.GoAwayFrame, fr.WindowUpdateFrame,
        fr.ContinuationFrame, fr.OriginFrame, fr.CertificateFrame,
        fr.UnknownFrame,
    )
}

#: kwargs fields that were hex-encoded bytes in the corpus.
_BYTES_FIELDS = {
    "data", "header_block", "opaque", "debug_data", "fragment",
    "raw_payload",
}


def _inflate_kwargs(doc: dict) -> dict:
    kwargs = {}
    for key, value in doc.items():
        if key in _BYTES_FIELDS:
            kwargs[key] = bytes.fromhex(value)
        elif isinstance(value, list):
            kwargs[key] = tuple(
                tuple(item) if isinstance(item, list) else item
                for item in value
            )
        else:
            kwargs[key] = value
    return kwargs


@pytest.mark.parametrize(
    "vector", CORPUS["frames"], ids=[v["name"] for v in CORPUS["frames"]]
)
def test_frame_serialization_is_frozen(vector):
    frame = FRAME_CLASSES[vector["cls"]](**_inflate_kwargs(vector["kwargs"]))
    assert frame.serialize().hex() == vector["hex"]


@pytest.mark.parametrize(
    "vector", CORPUS["frames"], ids=[v["name"] for v in CORPUS["frames"]]
)
def test_frame_serialize_into_matches_serialize(vector):
    frame = FRAME_CLASSES[vector["cls"]](**_inflate_kwargs(vector["kwargs"]))
    out = bytearray()
    frame.serialize_into(out)
    assert bytes(out).hex() == vector["hex"]


@pytest.mark.parametrize(
    "vector", CORPUS["frames"], ids=[v["name"] for v in CORPUS["frames"]]
)
def test_frame_parse_roundtrip_is_frozen(vector):
    wire = bytes.fromhex(vector["hex"])
    parsed, rest = fr.parse_frame(wire)
    assert rest == b""
    assert type(parsed).__name__ == vector["cls"]
    assert parsed.serialize().hex() == vector["reparse_hex"]


def test_frame_corpus_parses_as_one_buffer():
    """The whole corpus concatenated parses through the zero-copy
    consumer with nothing left over, in corpus order."""
    buffer = bytearray()
    for vector in CORPUS["frames"]:
        buffer.extend(bytes.fromhex(vector["hex"]))
    frames = fr.consume_frames(buffer)
    assert not buffer
    assert [type(f).__name__ for f in frames] == \
        [v["cls"] for v in CORPUS["frames"]]
    assert [f.serialize().hex() for f in frames] == \
        [v["reparse_hex"] for v in CORPUS["frames"]]


def test_hpack_session_bytes_are_frozen():
    """Replaying the 7-block stateful session must reproduce every
    encoded byte and every decode, plus the final table state."""
    doc = CORPUS["hpack"]
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    for block in doc["blocks"]:
        headers = [tuple(h) for h in block["headers"]]
        wire = encoder.encode(headers)
        assert wire.hex() == block["hex"]
        decoded = decoder.decode(wire)
        assert [list(h) for h in decoded] == block["decoded"]
    assert encoder.table.size == doc["final_encoder_table_size"]
    assert decoder.table.size == doc["final_decoder_table_size"]
    assert len(encoder.table) == doc["final_table_len"]


def test_record_packing_is_frozen():
    doc = CORPUS["tls_records"]
    for vector in doc["records"]:
        wire = pack_record(vector["type"],
                           bytes.fromhex(vector["payload"]))
        assert wire.hex() == vector["hex"]


def test_record_stream_parses_both_ways():
    doc = CORPUS["tls_records"]
    stream = bytes.fromhex(doc["stream_hex"])
    parsed, rest = parse_records(stream)
    assert rest == b""
    assert [(t, p.hex()) for t, p in parsed] == \
        [(v["type"], v["payload"]) for v in doc["records"]]
    buffer = bytearray(stream)
    consumed = consume_records(buffer)
    assert not buffer
    assert consumed == parsed


def test_partial_frame_stays_buffered():
    """A truncated tail must stay in the buffer for the next read --
    the zero-copy consumer's contract with the channel layer."""
    full = bytes.fromhex(CORPUS["frames"][0]["hex"])
    buffer = bytearray(full + full[: fr.FRAME_HEADER_LEN + 2])
    frames = fr.consume_frames(buffer)
    assert len(frames) == 1
    assert bytes(buffer) == full[: fr.FRAME_HEADER_LEN + 2]
