"""Tests for the §6.2 privacy exposure analysis."""

import pytest

from repro.core import by_asn, compare_privacy, exposure_from_archive
from tests.test_core_timeline import archive, entry


def leaky_page():
    """Root + two same-AS subresources + one cleartext resource."""
    return archive([
        entry("www.a.com", "/", 0.0, asn=10, dns=20.0, connect=30.0,
              ssl=30.0, initiator=""),
        entry("s1.a.com", "/1", 100.0, asn=10, dns=10.0, connect=30.0,
              ssl=30.0),
        entry("s2.a.com", "/2", 100.0, asn=10, dns=10.0, connect=30.0,
              ssl=30.0),
        entry("plain.b.com", "/3", 100.0, asn=20, dns=10.0,
              connect=30.0, secure=False, protocol="http/1.1"),
    ])


class TestExposure:
    def test_counts_dns_and_sni(self):
        exposure = exposure_from_archive(leaky_page())
        assert exposure.plaintext_dns_queries == 4
        assert exposure.plaintext_sni_handshakes == 3  # plain has no TLS
        assert "www.a.com" in exposure.dns_leaked
        assert "plain.b.com" in exposure.leaked_hostnames

    def test_encrypted_dns_hides_queries(self):
        exposure = exposure_from_archive(leaky_page(), encrypted_dns=True)
        assert exposure.plaintext_dns_queries == 0
        # SNI still leaks.
        assert exposure.plaintext_sni_handshakes == 3

    def test_ech_hides_sni(self):
        exposure = exposure_from_archive(leaky_page(), ech=True)
        assert exposure.plaintext_sni_handshakes == 0
        # DNS still leaks, and so does cleartext HTTP.
        assert exposure.plaintext_dns_queries == 4
        assert "plain.b.com" in exposure.leaked_hostnames

    def test_reused_connections_leak_nothing(self):
        page = archive([
            entry("www.a.com", "/", 0.0, asn=10, dns=20.0, connect=30.0,
                  ssl=30.0, initiator=""),
            entry("www.a.com", "/again", 200.0, asn=10),  # reuse
        ])
        exposure = exposure_from_archive(page)
        assert exposure.plaintext_dns_queries == 1
        assert exposure.plaintext_sni_handshakes == 1


class TestComparison:
    def test_ideal_origin_reduces_signals(self):
        comparison = compare_privacy([leaky_page()])
        medians = comparison.median_signals()
        assert medians["ideal_origin"] < medians["measured"]
        assert comparison.signal_reduction() > 0

    def test_coalesced_hostnames_hidden_entirely(self):
        comparison = compare_privacy([leaky_page()])
        measured = comparison.measured[0]
        ideal = comparison.ideal_origin[0]
        # s1/s2 coalesce onto the root connection: their names vanish
        # from the wire entirely.
        assert "s1.a.com" in measured.leaked_hostnames
        assert "s1.a.com" not in ideal.leaked_hostnames
        assert "s2.a.com" not in ideal.leaked_hostnames
        # The root and the other-AS hostname still leak.
        assert "www.a.com" in ideal.leaked_hostnames
        assert comparison.median_hostnames_hidden() >= 2

    def test_failed_pages_excluded(self):
        bad = leaky_page()
        bad.page.success = False
        comparison = compare_privacy([bad, leaky_page()])
        assert len(comparison.measured) == 1

    def test_crawl_level_reduction(self, small_world):
        from tests.test_browser_engine import simple_page
        from repro.browser import ChromiumPolicy

        engine = small_world.engine(ChromiumPolicy())
        archives = [engine.load_blocking(simple_page())]
        comparison = compare_privacy(archives)
        assert comparison.signal_reduction() >= 0
