"""MAX_CONCURRENT_STREAMS: clients queue requests past the cap."""

import numpy as np
import pytest

from repro.h2 import H2ClientSession, H2Server, ServerConfig, \
    TlsClientConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore


@pytest.fixture
def world():
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                              bandwidth_bpms=1e5)),
    )
    ca = CertificateAuthority("MS CA", rng=np.random.default_rng(5))
    trust = TrustStore([ca])
    edge = network.add_host(Host("edge", "us", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "us", ["10.9.0.1"]))
    cert = ca.issue("www.example.com", ())
    server = H2Server(network, edge, ServerConfig(
        chains=[ca.chain_for(cert)],
        serves=["www.example.com"],
        max_concurrent_streams=2,
        think_time_ms=50.0,
    ))
    server.listen_all()
    tls = TlsClientConfig(
        sni="www.example.com", trust_store=trust, authorities=[ca],
        now=network.loop.now,
    )
    client = H2ClientSession(network, client_host, "10.0.0.1", tls)
    return network, server, client


class TestMaxConcurrentStreams:
    def test_all_requests_complete_despite_cap(self, world):
        network, server, client = world
        responses = []

        def go():
            for i in range(6):
                client.request("www.example.com", f"/r{i}",
                               responses.append)

        client.connect(on_ready=go)
        network.loop.run_until_idle()
        assert len(responses) == 6
        assert all(r.status == 200 for r in responses)

    def test_excess_requests_queue(self, world):
        network, server, client = world
        queued_ids = []

        def go():
            # Client learns the cap from the server SETTINGS that
            # arrived with the connection preface exchange.
            for i in range(5):
                queued_ids.append(
                    client.request("www.example.com", f"/r{i}",
                                   lambda r: None)
                )

        # Let the server SETTINGS land before the burst; otherwise
        # the client still believes the default (unlimited) cap.
        client.connect(
            on_ready=lambda: network.loop.schedule(30.0, go)
        )
        network.loop.run_until_idle()
        # Requests beyond the cap returned the queued marker (-1).
        assert queued_ids.count(-1) == 3

    def test_requests_serialize_in_waves(self, world):
        network, server, client = world
        finish_times = []

        def go():
            for i in range(4):
                client.request(
                    "www.example.com", f"/r{i}",
                    lambda r: finish_times.append(r.finished_at),
                )

        client.connect(
            on_ready=lambda: network.loop.schedule(30.0, go)
        )
        network.loop.run_until_idle()
        assert len(finish_times) == 4
        # The second wave (requests 3-4) finishes a think-time later.
        waves = sorted(finish_times)
        assert waves[2] - waves[0] > 40.0
