"""Unit tests for the coalescing policies (paper §2.3 behaviours)."""

import pytest

from repro.browser import (
    ChromiumPolicy,
    ConnectionFacts,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
)


class FakeSession:
    """Just enough session surface for policy decisions."""

    def __init__(self, san=(), origins=(), multiplex=True):
        self.san = set(san)
        self.origins = set(origins)
        self.can_multiplex = multiplex
        self.closed = False
        self.failed = None

    def certificate_covers(self, hostname):
        return hostname in self.san

    def origin_set_covers(self, hostname):
        return hostname in self.origins


def facts(san=(), origins=(), connected="10.0.0.1",
          available=("10.0.0.1",), multiplex=True):
    return ConnectionFacts(
        session=FakeSession(san=san, origins=origins, multiplex=multiplex),
        sni="www.example.com",
        connected_ip=connected,
        available_set=frozenset(available),
    )


SAN = ("www.example.com", "static.example.com")


class TestChromiumPolicy:
    def test_reuses_on_connected_ip_match(self):
        policy = ChromiumPolicy()
        assert policy.can_reuse(
            facts(san=SAN), "static.example.com", ["10.0.0.1", "10.0.0.9"]
        )

    def test_no_reuse_without_cert_coverage(self):
        policy = ChromiumPolicy()
        assert not policy.can_reuse(
            facts(san=("www.example.com",)), "static.example.com",
            ["10.0.0.1"],
        )

    def test_transitivity_lost(self):
        """§2.3's worked example: connection made to IP_A from {A,B};
        subresource answer {B,C} shares B with the available set but
        not A -- Chromium opens a new connection."""
        policy = ChromiumPolicy()
        connection = facts(
            san=SAN, connected="10.0.0.1",
            available=("10.0.0.1", "10.0.0.2"),
        )
        assert not policy.can_reuse(
            connection, "static.example.com", ["10.0.0.2", "10.0.0.3"]
        )

    def test_ignores_origin_set(self):
        policy = ChromiumPolicy()
        connection = facts(san=SAN,
                           origins=("static.example.com",))
        assert not policy.can_reuse(
            connection, "static.example.com", ["10.9.9.9"]
        )

    def test_requires_dns(self):
        assert ChromiumPolicy().requires_dns_before_reuse


class TestFirefoxPolicy:
    def test_transitive_reuse_on_available_set_overlap(self):
        policy = FirefoxPolicy(origin_frames=False)
        connection = facts(
            san=SAN, connected="10.0.0.1",
            available=("10.0.0.1", "10.0.0.2"),
        )
        assert policy.can_reuse(
            connection, "static.example.com", ["10.0.0.2", "10.0.0.3"]
        )

    def test_no_reuse_without_overlap_or_origin(self):
        policy = FirefoxPolicy(origin_frames=False)
        assert not policy.can_reuse(
            facts(san=SAN), "static.example.com", ["10.0.0.9"]
        )

    def test_origin_frame_reuse_without_ip_overlap(self):
        policy = FirefoxPolicy(origin_frames=True)
        connection = facts(san=SAN, origins=("static.example.com",))
        assert policy.can_reuse(
            connection, "static.example.com", ["10.9.9.9"]
        )

    def test_origin_disabled_falls_back_to_ip(self):
        policy = FirefoxPolicy(origin_frames=False)
        connection = facts(san=SAN, origins=("static.example.com",))
        assert not policy.can_reuse(
            connection, "static.example.com", ["10.9.9.9"]
        )

    def test_origin_still_requires_cert_coverage(self):
        policy = FirefoxPolicy(origin_frames=True)
        connection = facts(
            san=("www.example.com",), origins=("static.example.com",)
        )
        assert not policy.can_reuse(
            connection, "static.example.com", ["10.0.0.1"]
        )

    def test_firefox_still_queries_dns(self):
        # §6.8: Firefox conservatively queries DNS even with ORIGIN.
        assert FirefoxPolicy(origin_frames=True).requires_dns_before_reuse


class TestIdealOriginPolicy:
    def test_reuses_on_origin_plus_san_alone(self):
        policy = IdealOriginPolicy()
        connection = facts(san=SAN, origins=("static.example.com",))
        assert policy.can_reuse(connection, "static.example.com", [])

    def test_skips_dns(self):
        assert not IdealOriginPolicy().requires_dns_before_reuse

    def test_no_reuse_without_origin_membership(self):
        policy = IdealOriginPolicy()
        assert not policy.can_reuse(facts(san=SAN),
                                    "static.example.com", [])


class TestSharedConstraints:
    @pytest.mark.parametrize(
        "policy",
        [ChromiumPolicy(), FirefoxPolicy(), IdealOriginPolicy()],
    )
    def test_h1_connections_never_coalesce(self, policy):
        connection = facts(san=SAN, origins=("static.example.com",),
                           multiplex=False)
        assert not policy.can_reuse(
            connection, "static.example.com", ["10.0.0.1"]
        )

    def test_no_coalescing_policy(self):
        policy = NoCoalescingPolicy()
        connection = facts(san=SAN, origins=("static.example.com",))
        assert not policy.can_reuse(
            connection, "static.example.com", ["10.0.0.1"]
        )
