"""Tests for count predictions, the certificate plan, and Fig 3/9 data."""

import numpy as np
import pytest

from repro.core import (
    figure3,
    headline_reductions,
    ideal_ip_counts,
    ideal_origin_counts,
    measured_counts,
    origin_set_for_page,
    plan_certificates,
    predict_plt,
    provider_addition_table,
    san_distribution_table,
)
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world
from tests.test_core_timeline import archive, entry


@pytest.fixture(scope="module")
def crawled_world():
    config = DatasetConfig(site_count=120, seed=2022)
    world = build_world(config)
    crawler = Crawler(world, speculative_rate=0.10)
    return world, crawler.crawl()


def three_service_page():
    """Root AS 10 (3 hostnames), AS 20 (2 hostnames), AS 30 (1)."""
    entries = [
        entry("www.a.com", "/", 0.0, asn=10, ip="10.0.0.1", dns=20.0,
              connect=30.0, ssl=30.0, initiator=""),
        entry("s1.a.com", "/1", 100.0, asn=10, ip="10.0.0.2", dns=10.0,
              connect=30.0, ssl=30.0),
        entry("s2.a.com", "/2", 100.0, asn=10, ip="10.0.0.1", dns=10.0,
              connect=30.0, ssl=30.0),
        entry("x.b.com", "/3", 100.0, asn=20, ip="10.2.0.1", dns=10.0,
              connect=30.0, ssl=30.0),
        entry("y.b.com", "/4", 100.0, asn=20, ip="10.2.0.2", dns=10.0,
              connect=30.0, ssl=30.0),
        entry("z.c.com", "/5", 100.0, asn=30, ip="10.3.0.1", dns=10.0,
              connect=30.0, ssl=30.0),
        # A same-host reuse: no DNS, no TLS.
        entry("www.a.com", "/6", 200.0, asn=10, ip="10.0.0.1"),
    ]
    return archive(entries)


class TestCountPredictions:
    def test_measured_counts(self):
        counts = measured_counts(three_service_page())
        assert counts.dns_queries == 6
        assert counts.tls_connections == 6

    def test_ideal_origin_counts_by_service(self):
        counts = ideal_origin_counts(three_service_page())
        assert counts.dns_queries == 3
        assert counts.tls_connections == 3
        assert counts.certificate_validations == 3

    def test_ideal_ip_counts_by_address(self):
        # 5 distinct IPs among the entries.
        counts = ideal_ip_counts(three_service_page())
        assert counts.tls_connections == 5

    def test_ordering_invariant(self):
        page = three_service_page()
        origin = ideal_origin_counts(page).tls_connections
        ip = ideal_ip_counts(page).tls_connections
        measured = measured_counts(page).tls_connections
        assert origin <= ip <= measured

    def test_failed_entries_excluded_from_services(self):
        entries = [
            entry("www.a.com", "/", 0.0, asn=10, dns=20.0, connect=30.0,
                  ssl=30.0, initiator=""),
            entry("broken.d.com", "/x", 100.0, asn=40, status=0),
        ]
        counts = ideal_origin_counts(archive(entries))
        assert counts.tls_connections == 1

    def test_origin_set_for_page(self):
        sets = origin_set_for_page(three_service_page())
        assert set(sets["asn:10"]) == {"www.a.com", "s1.a.com", "s2.a.com"}
        assert set(sets["asn:20"]) == {"x.b.com", "y.b.com"}
        assert "asn:30" not in sets  # singleton services advertise nothing


class TestFigure3OnCrawl:
    def test_medians_ordered_like_the_paper(self, crawled_world):
        _, result = crawled_world
        data = figure3(result.archives)
        medians = data.medians()
        # Paper: ORIGIN (5) < IP (13) < DNS (14) <= TLS (16).
        assert medians["ideal_origin"] < medians["ideal_ip"]
        assert medians["ideal_ip"] <= medians["measured_dns"] + 1
        assert medians["measured_dns"] <= medians["measured_tls"]

    def test_origin_tls_reduction_near_two_thirds(self, crawled_world):
        _, result = crawled_world
        reductions = figure3(result.archives).reduction_vs_measured()
        # Paper: ~67% fewer TLS connections under ideal ORIGIN.
        assert 0.45 <= reductions["origin_tls_reduction"] <= 0.85

    def test_origin_dns_reduction_substantial(self, crawled_world):
        _, result = crawled_world
        reductions = figure3(result.archives).reduction_vs_measured()
        # Paper: ~64%; our synthetic pages land lower but clearly large.
        assert reductions["origin_dns_reduction"] >= 0.25

    def test_ip_reduction_modest(self, crawled_world):
        """IP coalescing alone is the small win (paper: ~7% DNS)."""
        _, result = crawled_world
        reductions = figure3(result.archives).reduction_vs_measured()
        assert reductions["ip_dns_reduction"] < \
            reductions["origin_dns_reduction"]

    def test_validation_percentiles_shrink(self, crawled_world):
        _, result = crawled_world
        stats = figure3(result.archives).validation_percentiles()
        assert stats["ideal_p75"] < stats["measured_p75"]
        assert stats["ideal_iqr"] < stats["measured_iqr"]

    def test_headline_reductions(self, crawled_world):
        _, result = crawled_world
        headline = headline_reductions(result.archives)
        assert headline["validation_reduction"] > 0.4
        assert headline["dns_reduction"] > 0.2


class TestPltPrediction:
    def test_model_orderings(self, crawled_world):
        _, result = crawled_world
        prediction = predict_plt(result.archives, cdn_asn=13335)
        improvements = prediction.median_improvements()
        # No model may make pages slower at the median...
        assert improvements["origin"] >= 0.0
        assert improvements["ip"] >= 0.0
        assert improvements["cdn_origin"] >= 0.0
        # ...and full ORIGIN dominates both partial models.
        assert improvements["origin"] >= improvements["ip"] - 1e-9
        assert improvements["origin"] >= improvements["cdn_origin"] - 1e-9

    def test_reconstruction_never_increases_plt(self, crawled_world):
        _, result = crawled_world
        prediction = predict_plt(result.archives)
        for before, after in zip(prediction.measured,
                                 prediction.ideal_origin):
            assert after <= before + 1e-6


class TestCertificatePlan:
    def test_unchanged_fraction_near_paper(self, crawled_world):
        world, result = crawled_world
        plan = plan_certificates(world)
        # Paper: 62.41% need no modifications.
        assert 0.45 <= plan.unchanged_fraction <= 0.80

    def test_small_changes_cover_most_sites(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        # Paper: <=10 changes covers 92.66%.
        assert plan.fraction_with_changes_at_most(10) >= 0.85

    def test_median_san_shift(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        before, after = plan.median_san_shift()
        assert after > before  # paper: 2 -> 3 among changed certs

    def test_additions_are_same_as_hostnames(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        resolver_plan = [p for p in plan.plans if p.additions]
        assert resolver_plan, "no site needs additions?"
        for site_plan in resolver_plan[:20]:
            for hostname in site_plan.additions:
                assert hostname in site_plan.coalescable
                assert not site_plan.hosted.certificate.covers(hostname)

    def test_figure5_series_shapes(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        series = plan.figure5_series()
        assert len(series["existing"]) == plan.site_count
        assert series["existing"] == sorted(series["existing"],
                                            reverse=True)
        assert series["ideal"] == sorted(series["ideal"], reverse=True)

    def test_huge_san_sites_grow(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        before, after = plan.sites_with_san_over(10)
        assert after >= before

    def test_table8_structure(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        rows = san_distribution_table(plan, top=5)
        assert len(rows) == 5
        # Measured column counts are in descending order.
        measured_counts_col = [row[2] for row in rows]
        assert measured_counts_col == sorted(measured_counts_col,
                                             reverse=True)

    def test_table9_providers_and_hostnames(self, crawled_world):
        world, _ = crawled_world
        plan = plan_certificates(world)
        rows = provider_addition_table(world, plan)
        assert rows
        providers = [row[0] for row in rows]
        assert "Cloudflare" in providers  # hosts ~25% of sites
        for _, site_count, share, host_rows in rows:
            assert site_count > 0
            assert 0 < share < 1
            for hostname, count, host_share in host_rows:
                assert count <= site_count
                assert 0 < host_share <= 1

    def test_filter_by_successful_domains(self, crawled_world):
        world, result = crawled_world
        domains = [
            a.page.hostname.replace("www.", "", 1)
            for a in result.successes
        ]
        plan = plan_certificates(world, successful_domains=domains)
        assert plan.site_count == len(set(domains))
