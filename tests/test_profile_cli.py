"""Tests for ``repro profile`` (hot-spot profiling subcommand).

The command's contract: hot-spot table and throughput on stdout,
diagnostics on stderr (the repo-wide stdout/stderr split), exit 0 on
success, exit 1 when the collected trace fails validation, and a
``--trace`` artifact that both the Chrome trace loader and the
telemetry validation harness accept.
"""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.sites == 150
        assert args.seed == 2022
        assert args.policy == "chromium"
        assert args.sort == "cumulative"
        assert args.top == 25
        assert args.trace is None
        assert args.pstats is None

    def test_sort_choices(self):
        args = build_parser().parse_args(["profile", "--sort", "tottime"])
        assert args.sort == "tottime"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--sort", "ncalls"])

    def test_top_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--top", "0"])

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--policy", "safari"])


class TestProfileCommand:
    def test_exit_zero_and_stream_split(self, capsys):
        assert main(["profile", "--sites", "8", "--shards", "2",
                     "--top", "5"]) == 0
        captured = capsys.readouterr()
        # Results on stdout: throughput line plus the hot-spot table.
        assert "profiled 8 sites" in captured.out
        assert "Top 5 functions by cumulative time" in captured.out
        assert "cumtime (s)" in captured.out
        # Diagnostics on stderr only.
        assert "profile: crawling 8 sites" in captured.err
        assert "jobs=1" in captured.err
        assert "profile:" not in captured.out

    def test_hot_spot_table_names_crawl_code(self, capsys):
        assert main(["profile", "--sites", "8", "--shards", "1",
                     "--top", "20"]) == 0
        out = capsys.readouterr().out
        # The crawl entry point must show up under its shortened
        # repo-relative name.
        assert "repro/dataset/" in out

    def test_tottime_sort(self, capsys):
        assert main(["profile", "--sites", "6", "--shards", "1",
                     "--sort", "tottime", "--top", "5"]) == 0
        assert "by tottime time" in capsys.readouterr().out

    def test_pstats_dump_is_loadable(self, capsys, tmp_path):
        import pstats

        dump = tmp_path / "crawl.pstats"
        assert main(["profile", "--sites", "6", "--shards", "1",
                     "--pstats", str(dump)]) == 0
        captured = capsys.readouterr()
        assert str(dump) in captured.err
        stats = pstats.Stats(str(dump))
        assert stats.total_tt > 0

    def test_trace_artifact_validates_and_loads(self, capsys, tmp_path):
        trace_out = tmp_path / "profile_trace.json"
        assert main(["profile", "--sites", "8", "--shards", "2",
                     "--trace", str(trace_out)]) == 0
        captured = capsys.readouterr()
        assert "spans validated against" in captured.err
        assert str(trace_out) in captured.err
        # Chrome trace_event JSON (object form): non-empty
        # traceEvents with the required per-event keys.
        doc = json.loads(trace_out.read_text())
        events = doc["traceEvents"]
        assert events
        assert {"name", "ph", "pid"} <= set(events[0])

    def test_trace_spans_satisfy_validation_harness(self, tmp_path):
        """Independent check: rebuild the same crawl and validate the
        span JSONL the command wrote against it."""
        from repro.dataset.generator import DatasetConfig
        from repro.dataset.shard import CrawlParams, ParallelCrawler
        from repro.telemetry.exporters import spans_from_jsonl
        from repro.telemetry.validation import validate_crawl_trace

        trace_out = tmp_path / "profile_trace.jsonl"
        assert main(["profile", "--sites", "8", "--shards", "2",
                     "--trace", str(trace_out)]) == 0
        spans = spans_from_jsonl(trace_out.read_text())
        assert spans
        crawler = ParallelCrawler(
            DatasetConfig(site_count=8, seed=2022),
            params=CrawlParams(policy="chromium",
                               speculative_rate=0.10),
            shard_count=2, jobs=1,
        )
        result = crawler.crawl()
        assert validate_crawl_trace(result, spans) == []

    def test_profile_does_not_perturb_the_crawl(self, capsys, tmp_path):
        """Profiling is observation only: the archives a profiled
        crawl produces are identical to an unprofiled crawl's."""
        from repro.dataset.generator import DatasetConfig
        from repro.dataset.shard import CrawlParams, ParallelCrawler

        assert main(["profile", "--sites", "8", "--shards", "2"]) == 0
        capsys.readouterr()
        crawler = ParallelCrawler(
            DatasetConfig(site_count=8, seed=2022),
            params=CrawlParams(policy="chromium",
                               speculative_rate=0.10),
            shard_count=2, jobs=1,
        )
        result = crawler.crawl()
        assert result.attempted == 8
