"""In-flight DNS query coalescing (browsers dedupe concurrent lookups)."""

import pytest

from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.netsim import EventLoop


@pytest.fixture
def setup():
    authority = AuthoritativeServer()
    zone = Zone("example.com")
    zone.add_a("www.example.com", ["10.0.0.1", "10.0.0.2"], ttl=1000.0)
    authority.add_zone(zone)
    loop = EventLoop()
    resolver = CachingResolver(loop, authority, median_latency_ms=20.0)
    return loop, resolver


class TestInFlightDedup:
    def test_concurrent_queries_share_one_wire_query(self, setup):
        loop, resolver = setup
        answers = []
        resolver.resolve("www.example.com", answers.append)
        resolver.resolve("www.example.com", answers.append)
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert len(answers) == 3
        # Only one query crossed the wire.
        assert resolver.stats.plaintext_queries == 1
        # The joiners are marked as served without their own query.
        assert not answers[0].from_cache
        assert answers[1].from_cache and answers[2].from_cache
        assert answers[1].addresses == answers[0].addresses

    def test_joiners_complete_at_the_same_time(self, setup):
        loop, resolver = setup
        times = []
        resolver.resolve("www.example.com",
                         lambda a: times.append(loop.now()))
        resolver.resolve("www.example.com",
                         lambda a: times.append(loop.now()))
        loop.run_until_idle()
        assert times[0] == times[1]

    def test_queries_after_completion_hit_the_cache(self, setup):
        loop, resolver = setup
        resolver.resolve("www.example.com", lambda a: None)
        loop.run_until_idle()
        answers = []
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert answers[0].from_cache
        assert resolver.stats.plaintext_queries == 1

    def test_distinct_names_are_not_coalesced(self, setup):
        loop, resolver = setup
        zone = resolver._authority.zone_for("example.com")
        zone.add_a("other.example.com", ["10.0.0.9"])
        resolver.resolve("www.example.com", lambda a: None)
        resolver.resolve("other.example.com", lambda a: None)
        loop.run_until_idle()
        assert resolver.stats.plaintext_queries == 2

    def test_nxdomain_propagates_to_joiners(self, setup):
        loop, resolver = setup
        outcomes = []
        resolver.resolve("missing.example.com",
                         lambda a: outcomes.append(("cb", a.empty)))
        resolver.resolve("missing.example.com",
                         lambda a: outcomes.append(("join", a.empty)))
        loop.run_until_idle()
        assert ("cb", True) in outcomes
        assert ("join", True) in outcomes
        assert resolver.stats.nxdomain == 1
