"""421 retry behaviour and HTTP/1.1 ALPN fallback in the engine."""

import numpy as np
import pytest

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.h2 import H2Server, ServerConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.web import ContentType, Subresource, WebPage


def build_world(misconfigured_origin=False, legacy_host=False):
    """Server A: www.a.com, cert also covers api.b.com; Server B
    actually serves api.b.com.  With ``misconfigured_origin`` server A
    advertises api.b.com in its ORIGIN set despite not serving it --
    the 421 scenario."""
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                              bandwidth_bpms=1e5)),
    )
    rng = np.random.default_rng(5)
    root_ca = CertificateAuthority("Root", rng=rng)
    trust = TrustStore([root_ca])

    host_a = network.add_host(Host("a", "us", ["10.0.0.1"]))
    host_b = network.add_host(Host("b", "us", ["10.0.0.2"]))
    client = network.add_host(Host("client", "us", ["10.9.0.1"]))

    cert_a = root_ca.issue("www.a.com", ("www.a.com", "api.b.com"))
    origins = ("https://api.b.com",) if misconfigured_origin else ()
    server_a = H2Server(network, host_a, ServerConfig(
        chains=[root_ca.chain_for(cert_a)],
        serves=["www.a.com"],  # NOT api.b.com, despite cert and ORIGIN
        origin_sets={"*": origins},
    ))
    server_a.listen_all()

    cert_b = root_ca.issue("api.b.com", ("api.b.com",))
    server_b = H2Server(network, host_b, ServerConfig(
        chains=[root_ca.chain_for(cert_b)],
        serves=["api.b.com"],
        alpn_protocols=("http/1.1",) if legacy_host else ("h2", "http/1.1"),
    ))
    server_b.listen_all()

    authority = AuthoritativeServer()
    zone_a = Zone("a.com")
    zone_a.add_a("www.a.com", ["10.0.0.1"])
    authority.add_zone(zone_a)
    zone_b = Zone("b.com")
    zone_b.add_a("api.b.com", ["10.0.0.2"])
    authority.add_zone(zone_b)

    resolver = CachingResolver(network.loop, authority,
                               median_latency_ms=15.0)
    context = BrowserContext(
        network=network,
        client_host=client,
        resolver=resolver,
        trust_store=trust,
        authorities=[root_ca],
        policy=FirefoxPolicy(origin_frames=True),
    )
    return network, context, server_a, server_b


PAGE = WebPage(
    hostname="www.a.com",
    resources=[
        Subresource("api.b.com", "/v1/data",
                    ContentType.APPLICATION_JSON, 3_000),
    ],
)


class TestMisdirectedRetry:
    def test_421_then_retry_succeeds(self):
        network, context, server_a, server_b = build_world(
            misconfigured_origin=True
        )
        archive = BrowserEngine(context).load_blocking(PAGE)
        api = [e for e in archive.entries if e.hostname == "api.b.com"]
        assert len(api) == 1
        entry = api[0]
        # The final outcome is a 200 from server B on a fresh connection.
        assert entry.status == 200
        assert entry.new_tls_connection
        assert not entry.coalesced
        # Server A ate the misdirected attempt.
        assert server_a.stats.misdirected == 1
        assert server_b.stats.requests == 1
        # The wasted round trips show up as blocked time ("incurring
        # additional RTT penalties", §2.2).
        assert entry.timings.blocked > 0

    def test_no_origin_no_misdirection(self):
        network, context, server_a, server_b = build_world(
            misconfigured_origin=False
        )
        archive = BrowserEngine(context).load_blocking(PAGE)
        assert server_a.stats.misdirected == 0
        api = [e for e in archive.entries if e.hostname == "api.b.com"]
        assert api[0].status == 200

    def test_misdirection_is_slower_than_direct(self):
        _, context_bad, _, _ = build_world(misconfigured_origin=True)
        bad = BrowserEngine(context_bad).load_blocking(PAGE)
        _, context_good, _, _ = build_world(misconfigured_origin=False)
        good = BrowserEngine(context_good).load_blocking(PAGE)
        bad_api = [e for e in bad.entries if e.hostname == "api.b.com"][0]
        good_api = [e for e in good.entries if e.hostname == "api.b.com"][0]
        assert bad_api.finished_at > good_api.finished_at


class TestH1Fallback:
    def test_legacy_host_negotiates_http11(self):
        network, context, _, server_b = build_world(legacy_host=True)
        archive = BrowserEngine(context).load_blocking(PAGE)
        api = [e for e in archive.entries if e.hostname == "api.b.com"][0]
        assert api.status == 200
        assert api.protocol == "http/1.1"

    def test_h1_requests_serialize_on_one_connection(self):
        network, context, _, server_b = build_world(legacy_host=True)
        page = WebPage(
            hostname="www.a.com",
            resources=[
                Subresource("api.b.com", f"/v1/item{i}",
                            ContentType.APPLICATION_JSON, 3_000)
                for i in range(3)
            ],
        )
        archive = BrowserEngine(context).load_blocking(page)
        api = [e for e in archive.entries if e.hostname == "api.b.com"]
        assert [e.status for e in api] == [200, 200, 200]
        assert all(e.protocol == "http/1.1" for e in api)
        # At most 6 connections per host; with 3 requests discovered
        # together the browser opens up to 3.
        fresh = [e for e in api if e.new_tls_connection]
        assert 1 <= len(fresh) <= 3

    def test_h1_never_coalesces(self):
        network, context, _, _ = build_world(legacy_host=True)
        archive = BrowserEngine(context).load_blocking(PAGE)
        api = [e for e in archive.entries if e.hostname == "api.b.com"]
        assert all(not e.coalesced for e in api)
