"""Smoke tests: the runnable examples stay runnable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def run_cli(*args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
        cwd=EXAMPLES.parent,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Chromium" in result.stdout
        assert "ORIGIN" in result.stdout
        assert "coalesced" in result.stdout

    def test_origin_frame_server(self):
        result = run_example("origin_frame_server.py")
        assert result.returncode == 0, result.stderr
        assert "ORIGIN frame bytes" in result.stdout
        assert "421" in result.stdout
        assert "fail-open" in result.stdout

    def test_middlebox_incident(self):
        result = run_example("middlebox_incident.py")
        assert result.returncode == 0, result.stderr
        assert "FAILED" in result.stdout      # phase 2 breaks
        assert "phase 4" in result.stdout     # and the fix lands

    def test_waterfall_reconstruction(self):
        result = run_example("waterfall_reconstruction.py")
        assert result.returncode == 0, result.stderr
        assert "MEASURED" in result.stdout
        assert "RECONSTRUCTED" in result.stdout
        assert "coalesced" in result.stdout

    def test_coalescing_study_small(self):
        result = run_example("coalescing_study.py", "30")
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "Figure 3" in result.stdout
        assert "certificate plan" in result.stdout

    def test_traffic_study_small(self):
        result = run_example("traffic_study.py", "12", timeout=300)
        assert result.returncode == 0, result.stderr
        assert "What-if" in result.stdout
        assert "baseline" in result.stdout
        assert "ideal-san" in result.stdout
        assert "Figure 8" in result.stdout
        assert "reason-coded decisions" in result.stdout


class TestScenarioFiles:
    def test_chaos_scenario_resolves(self):
        result = run_cli("run", "examples/scenario_chaos.toml",
                         "--dry-run")
        assert result.returncode == 0, result.stderr
        resolved = result.stdout + result.stderr  # --dry-run diags
        assert "repro chaos" in resolved
        assert "--schedule examples/faults_demo.toml" in resolved
        assert "--compare-policies" not in resolved

    def test_chaos_demo_schedule_runs(self, tmp_path):
        out = tmp_path / "report.jsonl"
        result = run_cli("chaos", "--schedule",
                         "examples/faults_demo.toml", "--sites", "8",
                         "--seed", "2022", "--shards", "2",
                         "--out", str(out), timeout=300)
        assert result.returncode == 0, result.stderr
        assert "mean blast radius" in result.stdout
        lines = out.read_text().strip().splitlines()
        # Canonical report JSONL: meta + one line per fault + totals.
        assert len(lines) == 6
