"""Smoke tests: the runnable examples stay runnable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Chromium" in result.stdout
        assert "ORIGIN" in result.stdout
        assert "coalesced" in result.stdout

    def test_origin_frame_server(self):
        result = run_example("origin_frame_server.py")
        assert result.returncode == 0, result.stderr
        assert "ORIGIN frame bytes" in result.stdout
        assert "421" in result.stdout
        assert "fail-open" in result.stdout

    def test_middlebox_incident(self):
        result = run_example("middlebox_incident.py")
        assert result.returncode == 0, result.stderr
        assert "FAILED" in result.stdout      # phase 2 breaks
        assert "phase 4" in result.stdout     # and the fix lands

    def test_waterfall_reconstruction(self):
        result = run_example("waterfall_reconstruction.py")
        assert result.returncode == 0, result.stderr
        assert "MEASURED" in result.stdout
        assert "RECONSTRUCTED" in result.stdout
        assert "coalesced" in result.stdout

    def test_coalescing_study_small(self):
        result = run_example("coalescing_study.py", "30")
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "Figure 3" in result.stdout
        assert "certificate plan" in result.stdout

    def test_traffic_study_small(self):
        result = run_example("traffic_study.py", "12", timeout=300)
        assert result.returncode == 0, result.stderr
        assert "What-if" in result.stdout
        assert "baseline" in result.stdout
        assert "ideal-san" in result.stdout
        assert "Figure 8" in result.stdout
        assert "reason-coded decisions" in result.stdout
