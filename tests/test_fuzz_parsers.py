"""Fuzz/property tests: parsers must never crash unexpectedly.

Wire parsers face attacker-controlled bytes; the only acceptable
failure mode is the protocol's own error type.  Hypothesis drives
random and structured-mutation inputs through the HTTP/2 frame parser,
the HPACK decoder, the TLS record layer, and the HTTP/1.1 message
parser.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.h2 import (
    H2Connection,
    H2ConnectionError,
    HpackDecoder,
    HpackError,
    Role,
    parse_frames,
)
from repro.h2.frames import (
    DataFrame,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    SettingsFrame,
)
from repro.h2.http1 import parse_message
from repro.h2.tls_channel import parse_records


class TestFrameParserFuzz:
    @given(st.binary(max_size=400))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            frames, rest = parse_frames(data)
        except H2ConnectionError:
            return  # the protocol's own error is acceptable
        # Whatever parsed, the leftover must be a strict suffix.
        assert data.endswith(rest)

    @given(st.binary(max_size=200), st.integers(0, 60))
    @settings(max_examples=200)
    def test_truncated_valid_frames_buffer(self, payload, cut):
        wire = DataFrame(stream_id=1, data=payload).serialize()
        cut = min(cut, len(wire))
        frames, rest = parse_frames(wire[:-cut] if cut else wire)
        if cut == 0:
            assert len(frames) == 1
        else:
            assert frames == []

    @given(
        st.lists(
            st.sampled_from([
                DataFrame(stream_id=1, data=b"x"),
                HeadersFrame(stream_id=3, header_block=b"\x82"),
                PingFrame(),
                SettingsFrame(settings=((4, 65535),)),
                OriginFrame(origins=("https://a.com",)),
            ]),
            max_size=8,
        )
    )
    def test_concatenated_frames_all_parse(self, frames):
        wire = b"".join(frame.serialize() for frame in frames)
        parsed, rest = parse_frames(wire)
        assert len(parsed) == len(frames)
        assert rest == b""

    @given(st.binary(min_size=9, max_size=100))
    @settings(max_examples=200)
    def test_mutated_headers_never_hang(self, data):
        # Force a frame-sized length prefix so the parser commits.
        body = data[9:]
        header = bytes([0, 0, len(body)]) + data[3:9]
        try:
            parse_frames(header + body)
        except H2ConnectionError:
            pass


class TestHpackDecoderFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_blocks_raise_hpack_error_or_decode(self, block):
        decoder = HpackDecoder()
        try:
            headers = decoder.decode(block)
        except HpackError:
            return
        for name, value in headers:
            assert isinstance(name, str) and isinstance(value, str)


class TestTlsRecordFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        records, rest = parse_records(data)
        assert data.endswith(rest)
        reassembled = b"".join(
            bytes([t]) + len(p).to_bytes(4, "big") + p
            for t, p in records
        ) + rest
        assert reassembled == data


class TestHttp1ParserFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            message, rest = parse_message(data)
        except (ValueError, IndexError):
            # Malformed numerics in content-length / status lines are
            # surfaced as ValueError by design.
            return
        if message is None:
            assert rest == data


class TestConnectionFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_client_survives_garbage_or_fails_cleanly(self, data):
        client = H2Connection(Role.CLIENT)
        client.initiate()
        client.data_to_send()
        try:
            client.receive_data(data)
        except H2ConnectionError:
            # A GOAWAY must have been queued for the peer.
            assert client.data_to_send()
