"""Unit tests for the CA, issuance policy, and chain validation."""

import numpy as np
import pytest

from repro.tlspki import (
    CertificateAuthority,
    CertificateError,
    IssuancePolicy,
    TrustStore,
    validate_chain,
)


@pytest.fixture
def pki():
    rng = np.random.default_rng(42)
    root = CertificateAuthority("Root CA", rng=rng)
    intermediate = CertificateAuthority(
        "Intermediate CA", rng=rng, parent=root
    )
    store = TrustStore([root])
    return root, intermediate, store


class TestIssuance:
    def test_subject_auto_added_to_san(self, pki):
        _, intermediate, _ = pki
        cert = intermediate.issue("www.example.com", ("cdn.example.com",))
        assert "www.example.com" in cert.san
        assert cert.san[0] == "www.example.com"

    def test_wildcard_subject_not_duplicated(self, pki):
        _, intermediate, _ = pki
        cert = intermediate.issue("*.example.com", ("*.example.com",))
        assert cert.san == ("*.example.com",)

    def test_serials_increment(self, pki):
        _, intermediate, _ = pki
        a = intermediate.issue("a.example.com", ())
        b = intermediate.issue("b.example.com", ())
        assert b.serial == a.serial + 1

    def test_issuer_recorded(self, pki):
        _, intermediate, _ = pki
        cert = intermediate.issue("www.example.com", ())
        # Issuer names are case-normalized like hostnames.
        assert cert.issuer == "intermediate ca"

    def test_san_limit_enforced(self):
        ca = CertificateAuthority(
            "Limited CA", policy=IssuancePolicy(max_san_names=3)
        )
        names = tuple(f"h{i}.example.com" for i in range(5))
        with pytest.raises(CertificateError):
            ca.issue("www.example.com", names)

    def test_comodo_style_large_limit(self):
        ca = CertificateAuthority(
            "Comodo-like", policy=IssuancePolicy(max_san_names=2000)
        )
        names = tuple(f"h{i}.example.com" for i in range(1500))
        cert = ca.issue("www.example.com", names)
        assert cert.san_count == 1501

    def test_issuance_counter_and_log(self, pki):
        _, intermediate, _ = pki
        intermediate.issue("a.example.com", ())
        intermediate.issue("b.example.com", ())
        assert intermediate.issuance_count == 2
        assert len(intermediate.issued) == 2

    def test_signature_verifies_with_issuer_only(self, pki):
        root, intermediate, _ = pki
        cert = intermediate.issue("www.example.com", ())
        assert intermediate.verify(cert)
        assert not root.verify(cert)


class TestReissue:
    def test_reissue_adds_san_and_new_serial(self, pki):
        _, intermediate, _ = pki
        original = intermediate.issue("www.example.com", ())
        renewed = intermediate.reissue(
            original, added_san=("thirdparty.cdn.com",)
        )
        assert "thirdparty.cdn.com" in renewed.san
        assert set(original.san) <= set(renewed.san)
        assert renewed.serial != original.serial
        assert intermediate.verify(renewed)

    def test_reissue_preserves_lifetime(self, pki):
        _, intermediate, _ = pki
        original = intermediate.issue("www.example.com", (), now=100.0)
        renewed = intermediate.reissue(original)
        assert (renewed.not_after - renewed.not_before) == pytest.approx(
            original.not_after - original.not_before
        )

    def test_reissue_by_wrong_ca_rejected(self, pki):
        root, intermediate, _ = pki
        cert = intermediate.issue("www.example.com", ())
        with pytest.raises(CertificateError):
            root.reissue(cert)


class TestChains:
    def test_chain_for_leaf_ends_at_root(self, pki):
        root, intermediate, _ = pki
        leaf = intermediate.issue("www.example.com", ())
        chain = intermediate.chain_for(leaf)
        assert [c.subject for c in chain] == [
            "www.example.com", "intermediate ca", "root ca",
        ]

    def test_root_certificate_is_self_signed(self, pki):
        root, _, _ = pki
        assert root.certificate.issuer == root.certificate.subject
        assert root.verify(root.certificate)


class TestValidation:
    def validate(self, pki, chain, hostname, now=1.0):
        root, intermediate, store = pki
        return validate_chain(
            chain, hostname, now, store, [root, intermediate]
        )

    def test_valid_chain_passes(self, pki):
        _, intermediate, _ = pki
        leaf = intermediate.issue("www.example.com", ())
        result = self.validate(pki, intermediate.chain_for(leaf),
                               "www.example.com")
        assert result.ok, result.errors
        assert result.signature_checks == 3

    def test_hostname_mismatch_fails(self, pki):
        _, intermediate, _ = pki
        leaf = intermediate.issue("www.example.com", ())
        result = self.validate(pki, intermediate.chain_for(leaf),
                               "other.example.com")
        assert not result.ok
        assert any("not covered" in e for e in result.errors)

    def test_wildcard_san_validates_subdomain(self, pki):
        _, intermediate, _ = pki
        leaf = intermediate.issue("*.example.com", ())
        result = self.validate(pki, intermediate.chain_for(leaf),
                               "shard7.example.com")
        assert result.ok

    def test_expired_leaf_fails(self, pki):
        _, intermediate, _ = pki
        leaf = intermediate.issue("www.example.com", (), now=0.0,
                                  lifetime_ms=10.0)
        result = self.validate(pki, intermediate.chain_for(leaf),
                               "www.example.com", now=100.0)
        assert not result.ok
        assert any("expired" in e for e in result.errors)

    def test_untrusted_root_fails(self, pki):
        _, intermediate, _ = pki
        rogue_root = CertificateAuthority("Rogue Root")
        rogue_mid = CertificateAuthority("Rogue Mid", parent=rogue_root)
        leaf = rogue_mid.issue("www.example.com", ())
        root, _, store = pki
        result = validate_chain(
            rogue_mid.chain_for(leaf), "www.example.com", 1.0, store,
            [root, intermediate, rogue_root, rogue_mid],
        )
        assert not result.ok
        assert any("not in trust store" in e for e in result.errors)

    def test_tampered_certificate_fails(self, pki):
        _, intermediate, _ = pki
        leaf = intermediate.issue("www.example.com", ())
        forged = leaf.with_added_san("evil.example.com")
        # Attacker re-attaches the old signature to modified content.
        object.__setattr__(forged, "signature", leaf.signature)
        chain = [forged] + intermediate.chain()
        result = self.validate(pki, chain, "evil.example.com")
        assert not result.ok
        assert any("bad signature" in e for e in result.errors)

    def test_broken_chain_linkage_fails(self, pki):
        root, intermediate, store = pki
        leaf = intermediate.issue("www.example.com", ())
        # Skip the intermediate: leaf claims Intermediate CA but next is root.
        chain = [leaf, root.certificate]
        result = validate_chain(chain, "www.example.com", 1.0, store,
                                [root, intermediate])
        assert not result.ok
        assert any("chain break" in e for e in result.errors)

    def test_empty_chain_fails(self, pki):
        result = self.validate(pki, [], "www.example.com")
        assert not result.ok

    def test_leaf_with_ca_flag_fails(self, pki):
        root, intermediate, store = pki
        chain = [intermediate.certificate, root.certificate]
        result = validate_chain(chain, "www.example.com", 1.0, store,
                                [root, intermediate])
        assert not result.ok
        assert any("CA flag" in e for e in result.errors)

    def test_trust_store_rejects_intermediates(self, pki):
        _, intermediate, _ = pki
        with pytest.raises(ValueError):
            TrustStore([intermediate])

    def test_validation_reports_all_errors(self, pki):
        _, intermediate, _ = pki
        leaf = intermediate.issue("www.example.com", (), lifetime_ms=1.0)
        result = self.validate(pki, intermediate.chain_for(leaf),
                               "wrong.example.com", now=100.0)
        assert len(result.errors) >= 2
