"""Pure-function unit tests for deployment analysis pieces."""

import pytest

from repro.deployment.experiment import Group
from repro.deployment.longitudinal import DailyRates
from repro.deployment.passive import LogRecord


class TestDailyRates:
    def make(self):
        return DailyRates(
            days=[0, 1, 2, 3, 4, 5],
            experiment=[20, 21, 5, 5, 20, 19],
            control=[20, 22, 20, 21, 20, 20],
            deployment_window=(2, 4),
        )

    def test_window_membership(self):
        rates = self.make()
        assert not rates.in_window(1)
        assert rates.in_window(2)
        assert rates.in_window(3)
        assert not rates.in_window(4)

    def test_reduction_during(self):
        rates = self.make()
        # experiment 5 vs control 20.5 -> ~75.6% reduction.
        assert rates.reduction_during_deployment() == pytest.approx(
            1 - 5 / 20.5
        )

    def test_reduction_outside_is_small(self):
        rates = self.make()
        assert abs(rates.reduction_outside_deployment()) < 0.05

    def test_no_window_means_no_reduction(self):
        rates = DailyRates(days=[0], experiment=[1], control=[2],
                           deployment_window=None)
        assert rates.reduction_during_deployment() == 0.0
        assert not rates.in_window(0)

    def test_mean_rate_handles_missing_days(self):
        rates = self.make()
        assert rates.mean_rate(Group.CONTROL, [99]) == 0.0


class TestLogRecord:
    def test_flag_bit_semantics(self):
        coalesced = LogRecord(
            timestamp=0.0, connection_id=1, sni="www.site.com",
            authority="cdnjs.cloudflare.com", arrival_index=3,
            referer="https://www.site.com/", group=Group.EXPERIMENT,
            sni_host_mismatch=True,
        )
        direct = LogRecord(
            timestamp=0.0, connection_id=2,
            sni="cdnjs.cloudflare.com",
            authority="cdnjs.cloudflare.com", arrival_index=1,
            referer="https://www.site.com/", group=Group.CONTROL,
            sni_host_mismatch=False,
        )
        assert coalesced.sni_host_mismatch
        assert not direct.sni_host_mismatch
        # Records are frozen (pipeline integrity).
        with pytest.raises(Exception):
            coalesced.timestamp = 1.0
