"""Tests for the datagram (UDP-style) side of the network simulator:
synchronous flow setup, the separate listener namespace, refusal
timing, and tap bypass."""

import pytest

from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network

RTT_MS = 30.0


@pytest.fixture
def net():
    latency = LatencyModel(default=LinkSpec(rtt_ms=RTT_MS,
                                            bandwidth_bpms=1e6))
    network = Network(loop=EventLoop(), latency=latency)
    server = network.add_host(Host("server", "us-east", ["10.0.0.1"]))
    client = network.add_host(Host("client", "us-east", ["10.8.0.1"]))
    return network, server, client


class TestListen:
    def test_listen_requires_owned_address(self, net):
        network, server, _ = net
        with pytest.raises(ValueError, match="not an address"):
            network.listen_datagram(server, "10.9.9.9", 443,
                                    lambda transport: None)

    def test_duplicate_listener_rejected(self, net):
        network, server, _ = net
        network.listen_datagram(server, "10.0.0.1", 443,
                                lambda transport: None)
        with pytest.raises(ValueError, match="already has a datagram"):
            network.listen_datagram(server, "10.0.0.1", 443,
                                    lambda transport: None)

    def test_namespace_separate_from_stream_listeners(self, net):
        network, server, _ = net
        network.listen(server, "10.0.0.1", 443, lambda transport: None)
        # A QUIC endpoint shares 443 with the TCP one.
        network.listen_datagram(server, "10.0.0.1", 443,
                                lambda transport: None)
        assert network.service_at("10.0.0.1", 443) is not None
        assert network.datagram_service_at("10.0.0.1", 443) is not None
        network.unlisten_datagram("10.0.0.1", 443)
        assert network.datagram_service_at("10.0.0.1", 443) is None
        assert network.service_at("10.0.0.1", 443) is not None


class TestConnect:
    def test_connect_is_synchronous(self, net):
        network, server, client = net
        accepted = []
        network.listen_datagram(server, "10.0.0.1", 443, accepted.append)
        transport = network.connect_datagram(client, "10.0.0.1", 443)
        # Both ends exist before the loop runs at all: QUIC folds
        # transport setup into its cryptographic handshake.
        assert transport is not None
        assert accepted and accepted[0] is not transport
        assert network.loop.now() == 0.0

    def test_data_still_pays_path_latency(self, net):
        network, server, client = net
        received = []
        arrival = []

        def accept(server_end):
            server_end.on_data = lambda data: (
                received.append(data), arrival.append(network.loop.now())
            )

        network.listen_datagram(server, "10.0.0.1", 443, accept)
        transport = network.connect_datagram(client, "10.0.0.1", 443)
        transport.send(b"initial flight")
        network.loop.run_until_idle()
        assert received == [b"initial flight"]
        assert arrival[0] == pytest.approx(RTT_MS / 2.0, abs=0.1)

    def test_refused_when_nothing_listens(self, net):
        network, _, client = net
        errors = []
        transport = network.connect_datagram(
            client, "10.0.0.1", 443, on_refused=errors.append
        )
        assert transport is None
        assert errors == []  # the ICMP unreachable takes one RTT
        network.loop.run_until_idle()
        assert len(errors) == 1
        assert "no datagram listener" in str(errors[0])
        assert network.loop.now() == pytest.approx(RTT_MS)

    def test_refused_without_handler_raises_when_event_runs(self, net):
        network, _, client = net
        assert network.connect_datagram(client, "10.0.0.1", 443) is None
        with pytest.raises(Exception, match="no datagram listener"):
            network.loop.run_until_idle()

    def test_taps_do_not_apply_to_datagram_flows(self, net):
        network, server, client = net
        taps = []

        def tap(*args):
            taps.append(args)

        network.add_tap(tap)
        try:
            network.listen_datagram(server, "10.0.0.1", 443,
                                    lambda transport: None)
            network.listen(server, "10.0.0.1", 443, lambda transport: None)
            network.connect_datagram(client, "10.0.0.1", 443)
            assert taps == []
            network.connect(client, "10.0.0.1", 443,
                            lambda transport: None)
            assert len(taps) == 1
        finally:
            network.remove_tap(tap)

    def test_counters(self, net):
        network, server, client = net
        service = network.listen_datagram(server, "10.0.0.1", 443,
                                          lambda transport: None)
        before = network.connections_opened
        network.connect_datagram(client, "10.0.0.1", 443)
        network.connect_datagram(client, "10.0.0.1", 443)
        assert network.connections_opened == before + 2
        assert service.connections_accepted == 2
