"""The unified run pipeline: options, scenarios, and ``repro run``."""

import argparse

import pytest

from repro.cli import main
from repro.cli.args import _nonnegative_int, _parse_breakdown, _positive_int
from repro.runtime import (
    InstrumentationOptions,
    ScenarioError,
    load_scenario,
    parse_scenario,
)


class TestValidators:
    def test_positive_int_accepts_one(self):
        assert _positive_int("1") == 1

    def test_positive_int_rejects_zero_and_negative(self):
        for bad in ("0", "-3"):
            with pytest.raises(argparse.ArgumentTypeError,
                               match="must be >= 1"):
                _positive_int(bad)

    def test_positive_int_rejects_garbage(self):
        with pytest.raises(ValueError):
            _positive_int("two")

    def test_nonnegative_int_accepts_zero(self):
        assert _nonnegative_int("0") == 0

    def test_nonnegative_int_rejects_negative(self):
        with pytest.raises(argparse.ArgumentTypeError,
                           match="must be >= 0"):
            _nonnegative_int("-1")

    def test_parse_breakdown_all_and_order(self):
        assert _parse_breakdown("all") == ["dns", "tls", "validations"]
        assert _parse_breakdown("tls,dns") == ["dns", "tls"]

    def test_parse_breakdown_rejects_unknown(self):
        with pytest.raises(argparse.ArgumentTypeError, match="plt"):
            _parse_breakdown("dns,plt")


class TestInstrumentationOptions:
    def test_defaults_are_inert(self):
        options = InstrumentationOptions()
        assert not options.want_trace
        assert not options.want_audit
        assert not options.live
        assert options.load_rules() == []

    def test_any_instrumentation_forces_live(self):
        assert InstrumentationOptions(trace_out="t.json").live
        assert InstrumentationOptions(metrics=True).live
        assert InstrumentationOptions(audit_out="a.jsonl").live
        assert InstrumentationOptions(force_audit=True).live
        assert InstrumentationOptions(ledger_dir="runs/").live

    def test_from_args_lifts_shared_flags(self):
        ns = argparse.Namespace(trace="t.json", metrics=True,
                                audit=None, ledger="runs/", slo=None)
        options = InstrumentationOptions.from_args(ns)
        assert options.trace_out == "t.json"
        assert options.metrics is True
        assert options.ledger_dir == "runs/"
        assert not options.want_audit

    def test_from_args_tolerates_absent_flags(self):
        options = InstrumentationOptions.from_args(
            argparse.Namespace())
        assert not options.live

    def test_bad_slo_file_exits_2(self, tmp_path, capsys):
        slo = tmp_path / "slo.toml"
        slo.write_text("[[slo]]\nphase = broken\n")
        options = InstrumentationOptions(slo_path=str(slo))
        with pytest.raises(SystemExit) as excinfo:
            options.load_rules()
        assert excinfo.value.code == 2
        assert "slo:" in capsys.readouterr().err


class TestParseScenario:
    def test_flags_render_in_file_order(self):
        scenario = parse_scenario(
            '[run]\ncommand = "traffic"\n'
            '[traffic]\nusers = 40\nmean_visits = 1.5\n'
            '[sinks]\nout = "t.jsonl"\n'
        )
        assert scenario.command == "traffic"
        assert scenario.argv == [
            "traffic", "--users", "40", "--mean-visits", "1.5",
            "--out", "t.jsonl",
        ]

    def test_booleans_become_bare_flags(self):
        scenario = parse_scenario(
            '[run]\ncommand = "crawl"\n'
            '[dataset]\nno_cache = true\nrefresh = false\n'
            '[sinks]\nmetrics = true\n'
        )
        assert scenario.argv == ["crawl", "--no-cache", "--metrics"]

    def test_missing_run_section(self):
        with pytest.raises(ScenarioError, match=r"missing \[run\]"):
            parse_scenario("[traffic]\nusers = 5\n")

    def test_unknown_command(self):
        with pytest.raises(ScenarioError, match="unknown command"):
            parse_scenario('[run]\ncommand = "reportx"\n')

    def test_unquoted_command(self):
        with pytest.raises(ScenarioError, match="quoted"):
            parse_scenario("[run]\ncommand = traffic\n")

    def test_unknown_section(self):
        with pytest.raises(ScenarioError, match=r"\[workers\]"):
            parse_scenario('[run]\ncommand = "crawl"\n'
                           "[workers]\ncount = 4\n")

    def test_array_tables_rejected(self):
        with pytest.raises(ScenarioError, match="plain"):
            parse_scenario('[[run]]\ncommand = "crawl"\n')

    def test_jobs_is_not_a_scenario_knob(self):
        with pytest.raises(ScenarioError, match="execution knob"):
            parse_scenario('[run]\ncommand = "traffic"\n'
                           "[traffic]\njobs = 4\n")

    def test_extra_run_keys_rejected(self):
        with pytest.raises(ScenarioError, match="only 'command'"):
            parse_scenario('[run]\ncommand = "crawl"\nretries = 3\n')

    def test_malformed_toml_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="key = value"):
            parse_scenario('[run]\ncommand "crawl"\n')

    def test_load_scenario_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "nope.toml")


class TestRunCommand:
    def _write(self, tmp_path, text):
        path = tmp_path / "scenario.toml"
        path.write_text(text)
        return str(path)

    def test_dry_run_prints_resolved_argv(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '[run]\ncommand = "crawl"\n[dataset]\nsites = 8\n',
        )
        assert main(["run", path, "--dry-run"]) == 0
        captured = capsys.readouterr()
        assert "repro crawl --sites 8" in captured.err
        assert captured.out == ""

    def test_jobs_override_is_appended(self, tmp_path, capsys):
        path = self._write(tmp_path, '[run]\ncommand = "traffic"\n')
        assert main(["run", path, "--jobs", "2", "--dry-run"]) == 0
        assert "--jobs 2" in capsys.readouterr().err

    def test_parse_failure_exits_2_and_runs_nothing(self, tmp_path,
                                                    capsys):
        out = tmp_path / "t.jsonl"
        path = self._write(
            tmp_path,
            '[run]\ncommand = "traffic"\n'
            "[workers]\ncount = 4\n"
            f'[sinks]\nout = "{out}"\n',
        )
        assert main(["run", path]) == 2
        captured = capsys.readouterr()
        assert "run:" in captured.err
        assert captured.out == ""
        assert not out.exists()

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.toml")]) == 2
        assert "run: cannot read" in capsys.readouterr().err

    def test_flag_values_hit_the_command_validators(self, tmp_path):
        # Scenario values flow through the same argparse validators
        # as a hand-typed command line; nothing executes on failure.
        path = self._write(
            tmp_path,
            '[run]\ncommand = "traffic"\n[traffic]\nusers = 0\n',
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["run", path])
        assert excinfo.value.code == 2

    def test_scenario_crawl_matches_direct_invocation(
            self, tmp_path, capsys):
        cache = tmp_path / "cache"
        direct = ["crawl", "--sites", "8", "--seed", "3", "--shards",
                  "2", "--cache-dir", str(cache), "--tables", "1"]
        assert main(direct) == 0
        direct_out = capsys.readouterr().out
        path = self._write(
            tmp_path,
            '[run]\ncommand = "crawl"\n'
            "[dataset]\nsites = 8\nseed = 3\nshards = 2\n"
            f'cache_dir = "{cache}"\n'
            '[render]\ntables = "1"\n',
        )
        assert main(["run", path]) == 0
        captured = capsys.readouterr()
        assert "cache: hit" in captured.err
        assert captured.out == direct_out
