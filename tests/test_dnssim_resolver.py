"""Unit tests for answer policies, the authority, and the caching resolver."""

import numpy as np
import pytest

from repro.dnssim import (
    AuthoritativeServer,
    CachingResolver,
    FixedOrderPolicy,
    NxDomain,
    RandomRotationPolicy,
    RoundRobinPolicy,
    SingleAddressPolicy,
    Zone,
)
from repro.netsim import EventLoop

ADDRESSES = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]


def make_authority(policy=None):
    authority = AuthoritativeServer(answer_policy=policy)
    zone = Zone("example.com")
    zone.add_a("www.example.com", ADDRESSES, ttl=1000.0)
    zone.add_cname("alias.example.com", "www.example.com")
    authority.add_zone(zone)
    return authority


class TestAnswerPolicies:
    def test_fixed_order_preserves_zone_order(self):
        policy = FixedOrderPolicy()
        assert policy.order("x", ADDRESSES) == ADDRESSES

    def test_round_robin_rotates_per_query(self):
        policy = RoundRobinPolicy()
        first = policy.order("x", ADDRESSES)
        second = policy.order("x", ADDRESSES)
        assert first == ADDRESSES
        assert second == ADDRESSES[1:] + ADDRESSES[:1]

    def test_round_robin_is_per_name(self):
        policy = RoundRobinPolicy()
        policy.order("x", ADDRESSES)
        assert policy.order("y", ADDRESSES) == ADDRESSES

    def test_random_rotation_subsets(self):
        policy = RandomRotationPolicy(np.random.default_rng(3), answer_size=2)
        answer = policy.order("x", ADDRESSES)
        assert len(answer) == 2
        assert set(answer) <= set(ADDRESSES)

    def test_random_rotation_full_set_is_permutation(self):
        policy = RandomRotationPolicy(np.random.default_rng(3))
        answer = policy.order("x", ADDRESSES)
        assert sorted(answer) == sorted(ADDRESSES)

    def test_single_address_policy(self):
        assert SingleAddressPolicy().order("x", ADDRESSES) == ["10.0.0.1"]

    def test_policies_handle_empty_sets(self):
        for policy in (
            FixedOrderPolicy(),
            RoundRobinPolicy(),
            RandomRotationPolicy(np.random.default_rng(0)),
            SingleAddressPolicy(),
        ):
            assert policy.order("x", []) == []


class TestAuthoritativeServer:
    def test_query_returns_addresses_and_ttl(self):
        authority = make_authority()
        addresses, ttl, chain = authority.query("www.example.com")
        assert addresses == ADDRESSES
        assert ttl == 1000.0
        assert chain == ()

    def test_cname_chased_across_names(self):
        authority = make_authority()
        addresses, _, chain = authority.query("alias.example.com")
        assert addresses == ADDRESSES
        assert chain == ("www.example.com",)

    def test_nxdomain_for_unknown_name(self):
        authority = make_authority()
        with pytest.raises(NxDomain):
            authority.query("nope.example.com")
        with pytest.raises(NxDomain):
            authority.query("www.unknown-zone.org")

    def test_cname_loop_detected(self):
        authority = AuthoritativeServer()
        zone = Zone("loop.com")
        zone.add_cname("a.loop.com", "b.loop.com")
        zone.add_cname("b.loop.com", "a.loop.com")
        authority.add_zone(zone)
        with pytest.raises(NxDomain):
            authority.query("a.loop.com")

    def test_longest_suffix_zone_wins(self):
        authority = AuthoritativeServer()
        outer = Zone("example.com")
        outer.add_a("www.sub.example.com", "10.0.0.1")
        inner = Zone("sub.example.com")
        inner.add_a("www.sub.example.com", "10.9.9.9")
        authority.add_zone(outer)
        authority.add_zone(inner)
        addresses, _, _ = authority.query("www.sub.example.com")
        assert addresses == ["10.9.9.9"]


class TestCachingResolver:
    def make_resolver(self, **kwargs):
        loop = EventLoop()
        resolver = CachingResolver(loop, make_authority(), **kwargs)
        return loop, resolver

    def test_async_resolution_delivers_answer(self):
        loop, resolver = self.make_resolver()
        answers = []
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert len(answers) == 1
        assert answers[0].addresses == ADDRESSES
        assert not answers[0].from_cache

    def test_resolution_takes_latency(self):
        loop, resolver = self.make_resolver(median_latency_ms=25.0)
        times = []
        resolver.resolve("www.example.com", lambda a: times.append(loop.now()))
        loop.run_until_idle()
        assert times == [25.0]

    def test_latency_distribution_with_rng(self):
        loop, resolver = self.make_resolver(
            rng=np.random.default_rng(1), median_latency_ms=20.0
        )
        answers = []
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert answers[0].query_time_ms > 0
        assert answers[0].query_time_ms != 20.0  # jittered

    def test_cache_hit_is_instant_and_flagged(self):
        loop, resolver = self.make_resolver(median_latency_ms=25.0)
        answers = []
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        t_after_first = loop.now()
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert answers[1].from_cache
        assert answers[1].query_time_ms == 0.0
        assert loop.now() == t_after_first
        assert resolver.stats.cache_hits == 1

    def test_cache_expires_after_ttl(self):
        loop, resolver = self.make_resolver(median_latency_ms=10.0)
        answers = []
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        loop.run_until(loop.now() + 2000.0)  # past the 1000ms TTL
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert not answers[1].from_cache

    def test_flush_cache_forces_requery(self):
        loop, resolver = self.make_resolver()
        answers = []
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        resolver.flush_cache()
        resolver.resolve("www.example.com", answers.append)
        loop.run_until_idle()
        assert not answers[1].from_cache

    def test_nxdomain_goes_to_error_handler(self):
        loop, resolver = self.make_resolver()
        errors = []
        resolver.resolve("missing.example.com", lambda a: None, errors.append)
        loop.run_until_idle()
        assert len(errors) == 1
        assert isinstance(errors[0], NxDomain)
        assert resolver.stats.nxdomain == 1

    def test_nxdomain_without_handler_gives_empty_answer(self):
        loop, resolver = self.make_resolver()
        answers = []
        resolver.resolve("missing.example.com", answers.append)
        loop.run_until_idle()
        assert answers[0].empty

    def test_plaintext_accounting(self):
        loop, resolver = self.make_resolver()
        resolver.resolve("www.example.com", lambda a: None)
        loop.run_until_idle()
        assert resolver.stats.plaintext_queries == 1
        assert resolver.stats.encrypted_queries == 0

    def test_encrypted_transport_accounting(self):
        loop, resolver = self.make_resolver(encrypted_transport=True)
        resolver.resolve("www.example.com", lambda a: None)
        loop.run_until_idle()
        assert resolver.stats.encrypted_queries == 1
        assert resolver.stats.plaintext_queries == 0

    def test_cache_hits_do_not_count_as_transport_queries(self):
        loop, resolver = self.make_resolver()
        resolver.resolve("www.example.com", lambda a: None)
        loop.run_until_idle()
        resolver.resolve("www.example.com", lambda a: None)
        loop.run_until_idle()
        assert resolver.stats.plaintext_queries == 1
        assert resolver.stats.queries == 2

    def test_resolve_now_synchronous_path(self):
        loop, resolver = self.make_resolver()
        answer = resolver.resolve_now("alias.example.com")
        assert answer.addresses == ADDRESSES
        assert answer.cname_chain == ("www.example.com",)
        assert loop.now() == 0.0

    def test_resolve_now_uses_cache(self):
        _, resolver = self.make_resolver()
        resolver.resolve_now("www.example.com")
        answer = resolver.resolve_now("www.example.com")
        assert answer.from_cache

    def test_resolve_now_raises_nxdomain(self):
        _, resolver = self.make_resolver()
        with pytest.raises(NxDomain):
            resolver.resolve_now("missing.example.com")

    def test_cache_hit_rate_statistic(self):
        loop, resolver = self.make_resolver()
        resolver.resolve_now("www.example.com")
        resolver.resolve_now("www.example.com")
        assert resolver.stats.cache_hit_rate == 0.5
