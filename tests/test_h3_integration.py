"""Integration tests for the h2-to-h3 protocol dimension: a generated
world crawled with ``--alpn h2,h3`` must demonstrate Alt-Svc upgrade,
HTTPS-RR discovery, 0-RTT and cross-hostname resumption, and a strict
handshake-time saving over the same crawl pinned to h2 -- with
identical bodies."""

import dataclasses
import hashlib
import json

import pytest

from repro.audit.reasons import ReasonCode
from repro.dataset.cache import CACHE_FORMAT_VERSION, cache_key
from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import CrawlParams, ParallelCrawler

#: Smallest deterministic world exhibiting every h3 phenomenon at
#: once (fewer sites lose cross-host tickets or Alt-Svc upgrades).
CONFIG = DatasetConfig(site_count=12, seed=2022)


def crawl(alpn):
    params = CrawlParams(policy="chromium", speculative_rate=0.0,
                        alpn=alpn)
    crawler = ParallelCrawler(CONFIG, params=params, shard_count=1)
    return crawler.crawl_traced(trace=False, audit=True)


@pytest.fixture(scope="module")
def h2_crawl():
    return crawl("h2")


@pytest.fixture(scope="module")
def h3_crawl():
    return crawl("h2,h3")


def handshake_ms(result):
    """Total pre-request handshake time across all successful pages."""
    return sum(
        max(entry.timings.connect, 0.0) + max(entry.timings.ssl, 0.0)
        for archive in result.successes
        for entry in archive.entries
    )


def body_signature(result):
    """Order-insensitive per-page request sets: h3 changes completion
    order (timing), never what was fetched."""
    return [
        (archive.page.url, archive.page.success,
         sorted((e.url, e.status, e.transfer_size)
                for e in archive.entries))
        for archive in result.archives
    ]


class TestProtocolPhenomena:
    def test_h3_requests_served(self, h3_crawl):
        result, _ = h3_crawl
        protocols = {}
        for archive in result.successes:
            for entry in archive.entries:
                protocols[entry.protocol] = \
                    protocols.get(entry.protocol, 0) + 1
        assert protocols.get("h3", 0) > 0
        assert protocols.get("h2", 0) > 0  # h2-only hosts remain h2

    def test_all_discovery_and_resumption_codes_present(self, h3_crawl):
        _, trace = h3_crawl
        counts = {}
        for event in trace.audit:
            counts[event.code] = counts.get(event.code, 0) + 1
        for code in (
            ReasonCode.ALT_SVC_UPGRADE,
            ReasonCode.HTTPS_RR_H3,
            ReasonCode.QUIC_HANDSHAKE_1RTT,
            ReasonCode.ZERO_RTT_RESUMED,
            ReasonCode.CROSS_HOST_TICKET,
        ):
            assert counts.get(code, 0) > 0, f"no {code} events"

    def test_h2_crawl_emits_no_protocol_events(self, h2_crawl):
        _, trace = h2_crawl
        protocol_codes = {
            ReasonCode.ALT_SVC_UPGRADE,
            ReasonCode.HTTPS_RR_H3,
            ReasonCode.QUIC_HANDSHAKE_1RTT,
            ReasonCode.ZERO_RTT_RESUMED,
            ReasonCode.CROSS_HOST_TICKET,
        }
        assert not any(e.code in protocol_codes for e in trace.audit)

    def test_h3_saves_handshake_time(self, h2_crawl, h3_crawl):
        h2_result, _ = h2_crawl
        h3_result, h3_trace = h3_crawl
        assert handshake_ms(h3_result) < handshake_ms(h2_result)
        saved = h3_trace.metrics.counter(
            "quic.handshake_rtts_saved"
        ).value
        assert saved > 0

    def test_bodies_identical_across_protocols(self, h2_crawl,
                                               h3_crawl):
        h2_result, _ = h2_crawl
        h3_result, _ = h3_crawl
        assert body_signature(h2_result) == body_signature(h3_result)


class TestCacheKeyStability:
    def test_default_alpn_keeps_pre_h3_key(self):
        """``alpn="h2"`` must address the same cache entry as code
        that predates the field entirely."""
        params = CrawlParams()
        key = cache_key(CONFIG, params, shard_count=4)
        legacy_doc = dataclasses.asdict(params)
        del legacy_doc["alpn"]
        legacy = hashlib.sha256(json.dumps(
            {
                "version": CACHE_FORMAT_VERSION,
                "config": dataclasses.asdict(CONFIG),
                "params": legacy_doc,
                "shard_count": 4,
            },
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")).hexdigest()[:32]
        assert key == legacy

    def test_h3_offer_addresses_a_different_entry(self):
        base = cache_key(CONFIG, CrawlParams(), shard_count=4)
        h3 = cache_key(CONFIG, CrawlParams(alpn="h2,h3"), shard_count=4)
        assert base != h3
