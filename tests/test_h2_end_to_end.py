"""End-to-end tests: H2 client and ORIGIN-frame server over netsim."""

import numpy as np
import pytest

from repro.h2 import H2ClientSession, H2Server, ServerConfig, TlsClientConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore


@pytest.fixture
def world():
    """A network with one CDN edge serving two hostnames and a client."""
    latency = LatencyModel(default=LinkSpec(rtt_ms=20.0, bandwidth_bpms=1e6))
    network = Network(loop=EventLoop(), latency=latency)
    root = CertificateAuthority("Root CA", rng=np.random.default_rng(7))
    issuer = CertificateAuthority("Edge CA", parent=root,
                                  rng=np.random.default_rng(8))
    trust = TrustStore([root])
    authorities = [root, issuer]

    edge_host = network.add_host(Host("edge", "us-east", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "us-east", ["10.8.0.1"]))

    leaf = issuer.issue(
        "www.example.com",
        ("www.example.com", "static.example.com", "thirdparty.cdn.com"),
    )
    config = ServerConfig(
        chains=[issuer.chain_for(leaf)],
        serves=["www.example.com", "static.example.com",
                "thirdparty.cdn.com"],
        origin_sets={
            "*": ("https://static.example.com", "https://thirdparty.cdn.com"),
        },
    )
    server = H2Server(network, edge_host, config)
    server.listen("10.0.0.1")

    def make_session(sni="www.example.com", origin_aware=True, tls13=True):
        tls = TlsClientConfig(
            sni=sni,
            trust_store=trust,
            authorities=authorities,
            now=network.loop.now,
            tls13=tls13,
        )
        return H2ClientSession(
            network, client_host, "10.0.0.1", tls,
            origin_aware=origin_aware,
        )

    return network, server, make_session, issuer


def run(network):
    network.loop.run_until_idle()


class TestHandshakeAndRequest:
    def test_simple_get(self, world):
        network, server, make_session, _ = world
        session = make_session()
        responses = []
        session.connect(
            on_ready=lambda: session.request(
                "www.example.com", "/", responses.append
            )
        )
        run(network)
        assert len(responses) == 1
        assert responses[0].status == 200
        assert b"served /" in responses[0].body
        assert server.stats.requests == 1
        assert server.stats.tls_handshakes == 1

    def test_certificate_chain_reaches_client(self, world):
        network, _, make_session, _ = world
        session = make_session()
        session.connect()
        run(network)
        assert session.ready
        leaf = session.leaf_certificate
        assert leaf is not None
        assert leaf.covers("www.example.com")
        assert leaf.covers("thirdparty.cdn.com")

    def test_unknown_sni_fails_handshake(self, world):
        network, _, make_session, _ = world
        session = make_session(sni="unknown.example.org")
        failures = []
        session.connect(on_failed=failures.append)
        run(network)
        assert failures
        assert not session.ready

    def test_tls13_is_faster_than_tls12(self, world):
        network, _, make_session, _ = world
        t13 = make_session(tls13=True)
        t13.connect()
        run(network)
        first_done = t13.connected_at

        t12 = make_session(sni="www.example.com", tls13=False)
        start = network.loop.now()
        t12.connect()
        run(network)
        t12_duration = t12.connected_at - start
        assert t12_duration > first_done  # one extra round trip

    def test_multiplexed_requests_on_one_connection(self, world):
        network, server, make_session, _ = world
        session = make_session()
        responses = []

        def go():
            session.request("www.example.com", "/a", responses.append)
            session.request("www.example.com", "/b", responses.append)
            session.request("static.example.com", "/c", responses.append)

        session.connect(on_ready=go)
        run(network)
        assert [r.status for r in responses] == [200, 200, 200]
        assert server.stats.connections == 1


class TestOriginFrameEndToEnd:
    def test_client_receives_origin_set(self, world):
        network, server, make_session, _ = world
        session = make_session()
        received = []
        session.on_origin_received = received.append
        session.connect()
        run(network)
        assert received == [
            ("https://static.example.com", "https://thirdparty.cdn.com")
        ]
        assert session.origin_set_covers("thirdparty.cdn.com")
        assert not session.origin_set_covers("other.com")
        assert server.stats.origin_frames_sent == 1

    def test_origin_unaware_client_ignores_frame(self, world):
        network, _, make_session, _ = world
        session = make_session(origin_aware=False)
        received = []
        session.on_origin_received = received.append
        responses = []
        session.connect(
            on_ready=lambda: session.request(
                "www.example.com", "/", responses.append
            )
        )
        run(network)
        # Fail-open: no origin set, but traffic is unaffected.
        assert received == []
        assert session.origin_set == frozenset()
        assert responses and responses[0].status == 200

    def test_server_with_origin_disabled_sends_none(self, world):
        network, server, make_session, _ = world
        server.config.send_origin_frames = False
        session = make_session()
        received = []
        session.on_origin_received = received.append
        session.connect()
        run(network)
        assert received == []
        assert server.stats.origin_frames_sent == 0

    def test_coalesced_request_for_origin_set_member(self, world):
        """The paper's core mechanism: one connection serves the third
        party because ORIGIN + certificate SAN authorize it."""
        network, server, make_session, _ = world
        session = make_session()
        responses = []

        def go():
            session.request("www.example.com", "/", responses.append)
            # Same connection, different authority: SNI != Host, the
            # exact signal the passive pipeline flags (paper §5.2).
            session.request("thirdparty.cdn.com", "/lib.js", responses.append)

        session.connect(on_ready=go)
        run(network)
        assert [r.status for r in responses] == [200, 200]
        assert server.stats.connections == 1
        connection = server.connections[0]
        authorities = [authority for _, authority, _
                       in connection.request_log]
        assert "thirdparty.cdn.com" in authorities
        assert connection.sni == "www.example.com"


class TestMisdirectedRequest:
    def test_unserved_authority_gets_421(self, world):
        network, server, make_session, _ = world
        session = make_session()
        responses = []
        session.connect(
            on_ready=lambda: session.request(
                "not-on-this-server.com", "/", responses.append
            )
        )
        run(network)
        assert responses[0].status == 421
        assert server.stats.misdirected == 1
        assert session.misdirected == responses

    def test_421_does_not_kill_connection(self, world):
        network, _, make_session, _ = world
        session = make_session()
        responses = []

        def go():
            session.request("not-on-this-server.com", "/",
                            responses.append)
            session.request("www.example.com", "/", responses.append)

        session.connect(on_ready=go)
        run(network)
        assert [r.status for r in responses] == [421, 200]


class TestConnectionTiming:
    def test_connect_costs_tcp_plus_tls_rtts(self, world):
        network, _, make_session, _ = world
        session = make_session()
        session.connect()
        run(network)
        # TCP (1 RTT) + TLS 1.3 (1 RTT) = 2 x 20ms, plus serialization.
        assert session.connected_at == pytest.approx(40.0, abs=5.0)
