"""Shared client-ingress bottleneck tests."""

import pytest

from repro.netsim import (
    EventLoop,
    Host,
    LatencyModel,
    LinkSpec,
    Network,
)


def make_network(shared_bandwidth=None):
    latency = LatencyModel(
        default=LinkSpec(rtt_ms=20.0, bandwidth_bpms=1e9)
    )
    if shared_bandwidth is not None:
        latency.enable_shared_ingress("client", shared_bandwidth)
    return Network(loop=EventLoop(), latency=latency)


def connected_pair(net, server_name, server_ip):
    server = net.add_host(Host(server_name, "servers", [server_ip]))
    ends = {}
    net.listen(server, server_ip, 443,
               lambda t: ends.__setitem__("server", t))
    net.connect(net.host("client-host"), server_ip, 443,
                lambda t: ends.__setitem__("client", t))
    net.loop.run_until_idle()
    return ends["client"], ends["server"]


class TestSharedIngress:
    def test_invalid_bandwidth_rejected(self):
        latency = LatencyModel()
        with pytest.raises(ValueError):
            latency.enable_shared_ingress("client", 0.0)

    def test_unshared_region_returns_none(self):
        latency = LatencyModel()
        assert latency.ingress_completion("elsewhere", 0.0, 100) is None

    def test_queue_serializes(self):
        latency = LatencyModel()
        latency.enable_shared_ingress("client", 10.0)  # 10 B/ms
        first = latency.ingress_completion("client", 0.0, 100)
        second = latency.ingress_completion("client", 0.0, 100)
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(20.0)  # waited for the first

    def test_queue_drains_when_idle(self):
        latency = LatencyModel()
        latency.enable_shared_ingress("client", 10.0)
        latency.ingress_completion("client", 0.0, 100)  # done at 10
        late = latency.ingress_completion("client", 100.0, 100)
        assert late == pytest.approx(110.0)

    def test_reset(self):
        latency = LatencyModel()
        latency.enable_shared_ingress("client", 10.0)
        latency.ingress_completion("client", 0.0, 1000)
        latency.reset_shared_ingress()
        assert latency.ingress_completion("client", 0.0, 10) == \
            pytest.approx(1.0)

    def test_parallel_downloads_contend_on_the_wire(self):
        """Two servers sending to one client share its access link;
        total completion time reflects the sum of the bytes."""
        net = make_network(shared_bandwidth=10.0)  # 10 B/ms ingress
        net.add_host(Host("client-host", "client", ["10.9.0.1"]))
        a_client, a_server = connected_pair(net, "a", "10.0.0.1")
        b_client, b_server = connected_pair(net, "b", "10.0.0.2")

        finished = []
        a_client.on_data = lambda d: finished.append(("a", net.loop.now()))
        b_client.on_data = lambda d: finished.append(("b", net.loop.now()))
        start = net.loop.now()
        a_server.send(b"x" * 1000)  # 100ms of link time
        b_server.send(b"y" * 1000)  # another 100ms, queued behind
        net.loop.run_until_idle()
        times = dict(finished)
        assert times["a"] - start == pytest.approx(110.0)  # ser + one-way
        assert times["b"] - start == pytest.approx(210.0)

    def test_server_side_unaffected(self):
        """Only the shared region queues; uploads to servers do not."""
        net = make_network(shared_bandwidth=10.0)
        net.add_host(Host("client-host", "client", ["10.9.0.1"]))
        a_client, a_server = connected_pair(net, "a", "10.0.0.1")
        got = []
        a_server.on_data = lambda d: got.append(net.loop.now())
        start = net.loop.now()
        a_client.send(b"u" * 1000)
        net.loop.run_until_idle()
        # Upload rides the (effectively infinite) default bandwidth.
        assert got[0] - start == pytest.approx(10.0, abs=0.1)
