"""The population-scale traffic subsystem, unit through end to end.

End-to-end scenarios here stay tiny (a dozen users, a handful of
sites) -- the full-size determinism and what-if checks live in the CI
``traffic-smoke`` job and ``benchmarks/bench_traffic.py``.
"""

import pytest

from repro.audit.log import events_to_jsonl
from repro.audit.reasons import ReasonCode
from repro.cli import main
from repro.dataset.world import build_world
from repro.deployment.experiment import deployment_world_config
from repro.traffic import (
    BASELINE_COHORTS,
    LoadCounters,
    ScenarioConfig,
    TrafficAggregate,
    WHAT_IF_POLICIES,
    build_population,
    deploy_fleet_origin,
    edge_groups,
    apply_edge_capacity,
    plan_user_shards,
    run_scenario,
    scenario_for_policy,
    simulate_shard,
    what_if_rows,
)
from repro.traffic.edge import SELF_HOSTED


def tiny_scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        users=12,
        site_count=6,
        seed=2022,
        duration_ms=8_000.0,
        mean_visits_per_user=2.0,
        bucket_ms=2_000.0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestPopulation:
    def test_population_is_deterministic(self):
        shard = plan_user_shards(tiny_scenario(), 1)[0]
        first = build_population(shard)
        second = build_population(shard)
        assert first == second

    def test_shards_partition_users_contiguously(self):
        scenario = tiny_scenario(users=10)
        shards = plan_user_shards(scenario, 2)
        ids = []
        for shard in shards:
            profiles, _ = build_population(shard)
            ids.extend(sorted(profiles))
        assert ids == list(range(10))

    def test_cohort_mix_covers_population(self):
        shard = plan_user_shards(tiny_scenario(users=40), 1)[0]
        profiles, _ = build_population(shard)
        names = {profile.cohort.name for profile in profiles.values()}
        assert names <= {spec.name for spec in BASELINE_COHORTS}
        assert len(names) > 1  # the mix actually mixes

    def test_schedule_sorted_and_in_window(self):
        scenario = tiny_scenario(users=20)
        shard = plan_user_shards(scenario, 1)[0]
        _, schedule = build_population(shard)
        times = [visit.at_ms for visit in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < scenario.duration_ms for t in times)
        assert any(visit.visit_seq > 0 for visit in schedule)


class TestAggregate:
    def test_merge_adds_counters(self):
        left = TrafficAggregate(users=2)
        left.edge_for("provider:X").connections = 3
        left.cohort_for("a").visits = 4
        left.bucket_for(0.0).requests = 5
        right = TrafficAggregate(users=3)
        right.edge_for("provider:X").connections = 7
        right.cohort_for("a").visits = 1
        right.bucket_for(0.0).requests = 2
        left.merge(right)
        assert left.users == 5
        assert left.edges["provider:X"].connections == 10
        assert left.cohorts["a"].visits == 5
        assert left.buckets[0].requests == 7

    def test_dict_roundtrip_preserves_jsonl(self):
        aggregate = TrafficAggregate(users=4, duration_ms=1000.0)
        aggregate.edge_for("provider:X").handshakes = 2
        aggregate.cohort_for("a").plt_total_ms = 123.4567891
        aggregate.bucket_for(4500.0).coalesced_requests = 1
        restored = TrafficAggregate.from_dict(aggregate.to_dict())
        assert restored.to_jsonl() == aggregate.to_jsonl()

    def test_coalesced_share_series_skips_empty_buckets(self):
        aggregate = TrafficAggregate(bucket_ms=1000.0)
        aggregate.bucket_for(0.0).requests = 10
        aggregate.bucket_for(0.0).coalesced_requests = 5
        aggregate.bucket_for(2500.0)  # empty: no requests
        series = aggregate.coalesced_share_series()
        assert series == [(0.0, 0.5, 10)]


class TestEdgeGroups:
    def test_groups_cover_every_server_kind(self):
        world = build_world(deployment_world_config(
            site_count=8, seed=2022,
        ))
        names = [name for name, _ in edge_groups(world)]
        assert len(names) == len(set(names))
        assert any(name.startswith("provider:") for name in names)
        assert SELF_HOSTED in names

    def test_capacity_applies_to_edges_not_origins(self):
        world = build_world(deployment_world_config(
            site_count=8, seed=2022,
        ))
        apply_edge_capacity(world, 4)
        for server in world.provider_servers.values():
            assert server.config.max_concurrent_connections == 4
        for hosted in world.sites:
            if hosted.record.self_hosted:
                assert (hosted.server.config.max_concurrent_connections
                        is None)


class TestFleetOriginDeployment:
    def test_reissues_cover_cohosted_popular_names(self):
        world = build_world(deployment_world_config(
            site_count=6, seed=2022,
        ))
        reissued = deploy_fleet_origin(world)
        assert reissued > 0
        by_provider = {}
        for hostname, provider in world.popular_hostnames.items():
            by_provider.setdefault(provider, []).append(hostname)
        for provider, popular in by_provider.items():
            server = world.provider_servers.get(provider)
            if server is None:
                continue
            assert server.config.send_origin_frames
            for hostname in popular:
                chain = next(
                    chain for chain in server.config.chains
                    if chain[0].subject == hostname
                )
                assert all(chain[0].covers(name) for name in popular)
                origin_set = server.config.origin_sets[hostname]
                assert origin_set == tuple(
                    f"https://{name}" for name in sorted(popular)
                )

    def test_provider_hosted_site_certs_grow(self):
        world = build_world(deployment_world_config(
            site_count=6, seed=2022,
        ))
        deploy_fleet_origin(world)
        for hosted in world.sites:
            record = hosted.record
            if record.self_hosted or not hosted.certificate.san:
                continue
            popular = sorted(
                name for name, provider
                in world.popular_hostnames.items()
                if provider == record.provider
            )
            assert all(hosted.certificate.covers(name)
                       for name in popular)

    def test_idempotent_on_second_call(self):
        world = build_world(deployment_world_config(
            site_count=6, seed=2022,
        ))
        deploy_fleet_origin(world)
        assert deploy_fleet_origin(world) == 0


class TestSimulateShard:
    def test_counters_and_audit_reconcile(self):
        shard = plan_user_shards(tiny_scenario(), 1)[0]
        shard_result = simulate_shard(shard)
        aggregate = shard_result.payload
        events = shard_result.events
        monitor = shard_result.extra
        assert aggregate.visits > 0
        assert aggregate.completed > 0
        assert aggregate.totals.connections > 0
        assert aggregate.totals.handshakes > 0
        assert aggregate.totals.requests > 0
        # The fleet peak is a gauge over all edges, bounded by the sum
        # of per-edge activity.
        assert 0 < aggregate.totals.peak_concurrent <= \
            aggregate.totals.connections
        assert monitor.current_connections == 0  # all drained
        assert events
        # Every decision carries a real reason code (no UNKNOWNs).
        for event in events:
            assert ReasonCode(event.reason)

    def test_revisits_hit_warm_caches(self):
        shard = plan_user_shards(
            tiny_scenario(users=16, mean_visits_per_user=3.0), 1,
        )[0]
        aggregate = simulate_shard(shard, audit=False).payload
        revisits = sum(t.revisits for t in aggregate.cohorts.values())
        cached = sum(
            t.cached_responses for t in aggregate.cohorts.values()
        )
        assert revisits > 0
        assert cached > 0
        assert aggregate.totals.resumed > 0  # TLS tickets survive

    def test_overload_goaways_and_retries(self):
        shard = plan_user_shards(
            tiny_scenario(users=16, edge_capacity=2), 1,
        )[0]
        shard_result = simulate_shard(shard)
        aggregate = shard_result.payload
        events = shard_result.events
        assert aggregate.totals.goaways > 0
        assert aggregate.retries > 0
        reasons = {event.reason for event in events}
        assert ReasonCode.EDGE_OVERLOAD_GOAWAY.value in reasons
        assert ReasonCode.MISS_RETRY_AFTER_GOAWAY.value in reasons

    def test_zero_retry_budget_degrades_gracefully(self):
        shard = plan_user_shards(
            tiny_scenario(users=16, edge_capacity=2,
                          goaway_retry_limit=0), 1,
        )[0]
        aggregate = simulate_shard(shard, audit=False).payload
        assert aggregate.totals.goaways > 0
        assert aggregate.retries == 0
        assert aggregate.failed > 0  # refused loads fail, not crash


class TestRunScenario:
    def test_jobs_do_not_change_a_byte(self):
        scenario = tiny_scenario()
        serial, serial_trace = run_scenario(
            scenario, shard_count=2, jobs=1
        )
        parallel, parallel_trace = run_scenario(
            scenario, shard_count=2, jobs=2
        )
        assert serial.to_jsonl() == parallel.to_jsonl()
        assert events_to_jsonl(serial_trace.audit) == \
            events_to_jsonl(parallel_trace.audit)

    def test_shard_count_is_part_of_the_experiment(self):
        scenario = tiny_scenario()
        one, _ = run_scenario(scenario, shard_count=1, audit=False)
        two, _ = run_scenario(scenario, shard_count=2, audit=False)
        assert one.users == two.users == scenario.users
        # Different layouts are different experiments (per-shard world
        # replicas), not required to agree byte for byte.
        assert one.visits > 0 and two.visits > 0


class TestWhatIf:
    def test_origin_reduces_edge_connections(self):
        base = tiny_scenario(users=12, site_count=10)
        baseline, _ = run_scenario(
            scenario_for_policy(base, "baseline"), audit=False,
        )
        origin, _ = run_scenario(
            scenario_for_policy(base, "origin"), audit=False,
        )
        assert origin.totals.connections < baseline.totals.connections
        assert origin.totals.handshakes < baseline.totals.handshakes
        assert origin.totals.coalesced_requests > \
            baseline.totals.coalesced_requests

    def test_rows_cover_every_policy(self):
        results = []
        for index, policy in enumerate(WHAT_IF_POLICIES):
            aggregate = TrafficAggregate(users=1)
            aggregate.totals.connections = 10 - index
            aggregate.cohort_for("a").completed = 1
            aggregate.cohort_for("a").plt_total_ms = 100.0
            results.append((policy, aggregate))
        headers, rows = what_if_rows(results)
        assert headers[0] == "scenario"
        assert [row[0] for row in rows] == list(WHAT_IF_POLICIES)
        assert rows[0][1] == "10"


class TestTrafficCli:
    def test_traffic_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["traffic"])
        assert args.users == 1000
        assert args.sites == 40
        assert args.scenario == "baseline"
        assert args.what_if is False

    def test_traffic_run_writes_canonical_jsonl(self, tmp_path, capsys):
        out = tmp_path / "aggregate.jsonl"
        audit_out = tmp_path / "audit.jsonl"
        assert main([
            "traffic", "--users", "8", "--sites", "5",
            "--duration", "6", "--bucket", "2",
            "--out", str(out), "--audit", str(audit_out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "Per-cohort outcomes" in stdout
        assert "Edge load by group" in stdout
        assert "Figure 8" in stdout
        lines = out.read_text().splitlines()
        assert lines  # canonical JSONL, meta first
        assert '"kind":"meta"' in lines[0]
        assert audit_out.read_text().strip()

    def test_cache_stats_and_prune(self, tmp_path, capsys):
        cache_dir = tmp_path / "crawls"
        cache_dir.mkdir()
        for index in range(3):
            (cache_dir / f"crawl-{index:032x}.jsonl").write_text("{}\n")
        assert main([
            "cache", "stats", "--cache-dir", str(cache_dir),
        ]) == 0
        assert "3 entries" in capsys.readouterr().out
        assert main([
            "cache", "prune", "--cache-dir", str(cache_dir),
            "--max-entries", "1",
        ]) == 0
        assert len(list(cache_dir.glob("crawl-*.jsonl"))) == 1

    def test_cache_prune_requires_a_bound(self, tmp_path):
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
        ]) == 2
