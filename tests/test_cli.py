"""CLI smoke tests (tiny scales; each command end to end)."""

import pytest

from repro.cli import POLICIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crawl_defaults(self):
        args = build_parser().parse_args(["crawl"])
        assert args.sites == 150
        assert args.policy == "chromium"

    def test_policy_choices_cover_registry(self):
        for name in POLICIES:
            args = build_parser().parse_args(["crawl", "--policy", name])
            assert args.policy == name

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--policy", "safari"])

    def test_deploy_phases(self):
        args = build_parser().parse_args(["deploy", "--phase", "ip"])
        assert args.phase == "ip"


class TestCommands:
    def test_crawl_command(self, capsys):
        assert main(["crawl", "--sites", "25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out

    def test_model_command(self, capsys):
        assert main(["model", "--sites", "25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "headline" in out

    def test_deploy_command(self, capsys):
        assert main(["deploy", "--sites", "80", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "passive reduction" in out

    def test_privacy_command(self, capsys):
        assert main(["privacy", "--sites", "25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Privacy" in out
        assert "signal reduction" in out
