"""CLI smoke tests (tiny scales; each command end to end)."""

import argparse

import pytest

from repro import __version__
from repro.cli import POLICIES, _parse_alpn, _parse_tables, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crawl_defaults(self):
        args = build_parser().parse_args(["crawl"])
        assert args.sites == 150
        assert args.policy == "chromium"
        assert args.jobs == 1
        assert args.shards == 0
        assert args.tables == ["1", "2", "3"]
        assert args.no_cache is False
        assert args.refresh is False

    def test_policy_choices_cover_registry(self):
        for name in POLICIES:
            args = build_parser().parse_args(["crawl", "--policy", name])
            assert args.policy == name

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--policy", "safari"])

    def test_bad_tables_rejected_before_crawling(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--tables", "1,9"])

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--jobs", "0"])

    def test_deploy_phases(self):
        args = build_parser().parse_args(["deploy", "--phase", "ip"])
        assert args.phase == "ip"

    def test_crawl_pipeline_flags(self):
        args = build_parser().parse_args(
            ["model", "--jobs", "4", "--shards", "8",
             "--cache-dir", "/tmp/x", "--refresh"]
        )
        assert args.jobs == 4
        assert args.shards == 8
        assert args.cache_dir == "/tmp/x"
        assert args.refresh is True


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["--version"])
        assert exit_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestParseAlpn:
    def test_default_is_h2_only(self):
        args = build_parser().parse_args(["crawl"])
        assert args.alpn == "h2"

    def test_h2_h3_accepted(self):
        args = build_parser().parse_args(["crawl", "--alpn", "h2,h3"])
        assert args.alpn == "h2,h3"

    def test_canonical_ordering(self):
        # Offer order is normalized so cache keys cannot fork on it.
        assert _parse_alpn("h3,h2") == "h2,h3"
        assert _parse_alpn(" h2 , h3 ") == "h2,h3"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError, match="spdy"):
            _parse_alpn("h2,spdy")

    def test_h2_is_mandatory(self):
        # h3 endpoints are discovered over h2 (Alt-Svc / HTTPS RRs).
        with pytest.raises(argparse.ArgumentTypeError,
                           match="must include h2"):
            _parse_alpn("h3")

    def test_bad_alpn_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--alpn", "h3"])


class TestParseTables:
    def test_default_selection(self):
        assert _parse_tables("1,2,3") == ["1", "2", "3"]

    def test_all(self):
        assert _parse_tables("all") == ["1", "2", "3", "4", "5", "6", "7"]

    def test_subset_rendered_in_canonical_order(self):
        assert _parse_tables("7, 1,4") == ["1", "4", "7"]

    def test_unknown_table_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_tables("1,9")


class TestCommands:
    def test_crawl_command(self, capsys, tmp_path):
        assert main(["crawl", "--sites", "25", "--seed", "3",
                     "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        out = captured.out
        # Diagnostics are stderr-only; stdout stays clean table output.
        assert "cache: miss" in captured.err
        assert "cache:" not in out
        assert "shards:" in captured.err
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out

    def test_crawl_tables_subset(self, capsys, tmp_path):
        assert main(["crawl", "--sites", "25", "--seed", "3",
                     "--cache-dir", str(tmp_path),
                     "--tables", "1,7"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 7" in out
        assert "Table 2" not in out
        assert "Table 3" not in out

    def test_crawl_cache_hit_second_invocation(self, capsys, tmp_path):
        argv = ["crawl", "--sites", "25", "--seed", "3",
                "--cache-dir", str(tmp_path), "--tables", "1"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "cache: miss, stored" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "cache: hit" in second.err
        # Identical characterization either way.
        assert second.out == first.out

    def test_crawl_jobs_match_serial(self, capsys, tmp_path):
        base = ["crawl", "--sites", "8", "--seed", "3", "--shards", "2",
                "--no-cache", "--tables", "1"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_model_command(self, capsys, tmp_path):
        assert main(["model", "--sites", "25", "--seed", "3",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "headline" in out
        assert "certificates needing no change" in out

    def test_model_uses_crawl_cache(self, capsys, tmp_path):
        argv = ["model", "--sites", "25", "--seed", "3",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache: hit" in capsys.readouterr().err

    def test_model_default_alpn_has_no_protocol_rows(self, capsys,
                                                     tmp_path):
        assert main(["model", "--sites", "25", "--seed", "3",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # h2-only output stays exactly the pre-h3 report.
        assert "Per-protocol breakdown" not in out

    def test_model_h3_alpn_prints_protocol_rows(self, capsys,
                                                tmp_path):
        assert main(["model", "--sites", "12", "--seed", "2022",
                     "--alpn", "h2,h3",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-protocol breakdown" in out
        assert "h3" in out
        assert "Handshake ms (total)" in out

    def test_explain_h3_alpn_lists_protocol_events(self, capsys,
                                                   tmp_path):
        assert main(["explain", "--sites", "12", "--seed", "2022",
                     "--alpn", "h2,h3", "--pages", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Protocol events" in out
        assert "QUIC_HANDSHAKE_1RTT" in out
        assert "HTTPS_RR_H3" in out

    def test_deploy_command(self, capsys):
        assert main(["deploy", "--sites", "80", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "passive reduction" in out

    def test_privacy_command(self, capsys, tmp_path):
        assert main(["privacy", "--sites", "25", "--seed", "3",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Privacy" in out
        assert "signal reduction" in out
