#!/usr/bin/env python
"""Generate the golden wire-bytes corpus under tests/data/.

The corpus freezes the byte layout produced by the H2 framing, HPACK,
and record-framing layers at the moment it was generated.  The
hot-path optimizations (zero-copy framing, memoized HPACK) must keep
every one of these byte sequences identical -- tests/test_wire_golden.py
replays the corpus against the live code.

Run from the repo root:

    PYTHONPATH=src python scripts/gen_wire_golden.py

Regenerating rewrites the frozen reference; only do that when the wire
format itself intentionally changes (never for a performance PR).
"""

from __future__ import annotations

import json
import pathlib

from repro.h2 import frames as fr
from repro.h2.errors import ErrorCode
from repro.h2.hpack import HpackDecoder, HpackEncoder
from repro.transport.framing import (
    REC_APPDATA,
    REC_CERT,
    REC_FINISHED,
    REC_HELLO,
    REC_TICKET,
    pack_record,
    parse_records,
)

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "data"


def frame_corpus():
    """A spread of every frame type, including edge cases."""
    specs = [
        ("data-plain", fr.DataFrame, dict(stream_id=1, data=b"hello world")),
        ("data-empty-end", fr.DataFrame,
         dict(stream_id=3, flags=fr.FLAG_END_STREAM, data=b"")),
        ("data-padded", fr.DataFrame,
         dict(stream_id=5, data=b"padded payload", pad_length=7)),
        ("data-large", fr.DataFrame,
         dict(stream_id=7, data=bytes(range(256)) * 64)),
        ("headers-plain", fr.HeadersFrame,
         dict(stream_id=1, flags=fr.FLAG_END_HEADERS,
              header_block=b"\x82\x87\x84")),
        ("headers-end-stream", fr.HeadersFrame,
         dict(stream_id=9, flags=fr.FLAG_END_HEADERS | fr.FLAG_END_STREAM,
              header_block=b"\x88\x0f\x10\x0a2147483647")),
        ("headers-padded", fr.HeadersFrame,
         dict(stream_id=11, flags=fr.FLAG_END_HEADERS,
              header_block=b"\x82", pad_length=3)),
        ("priority", fr.PriorityFrame,
         dict(stream_id=13, dependency=9, weight=200, exclusive=True)),
        ("rst-stream", fr.RstStreamFrame,
         dict(stream_id=15, error_code=ErrorCode.REFUSED_STREAM)),
        ("settings", fr.SettingsFrame,
         dict(settings=((1, 65536), (3, 1000), (4, 6291456), (5, 16384)))),
        ("settings-ack", fr.SettingsFrame, dict(flags=fr.FLAG_ACK)),
        ("push-promise", fr.PushPromiseFrame,
         dict(stream_id=1, flags=fr.FLAG_END_HEADERS,
              promised_stream_id=2, header_block=b"\x82\x84")),
        ("ping", fr.PingFrame, dict(opaque=b"\x01\x02\x03\x04\x05\x06\x07\x08")),
        ("ping-ack", fr.PingFrame,
         dict(flags=fr.FLAG_ACK, opaque=b"deadbeef")),
        ("goaway", fr.GoAwayFrame,
         dict(last_stream_id=31, error_code=ErrorCode.ENHANCE_YOUR_CALM,
              debug_data=b"calm down")),
        ("window-update-conn", fr.WindowUpdateFrame, dict(increment=1048576)),
        ("window-update-stream", fr.WindowUpdateFrame,
         dict(stream_id=17, increment=65535)),
        ("continuation", fr.ContinuationFrame,
         dict(stream_id=19, flags=fr.FLAG_END_HEADERS,
              header_block=b"\x0f\x0d\x0233")),
        ("origin", fr.OriginFrame,
         dict(origins=("https://example.com",
                       "https://images.example.com",
                       "https://static.example-cdn.net"))),
        ("origin-empty", fr.OriginFrame, dict(origins=())),
        ("certificate", fr.CertificateFrame,
         dict(cert_id=3, fragment=b'{"chain": "fragment-one"}')),
        ("certificate-continued", fr.CertificateFrame,
         dict(flags=fr.FLAG_TO_BE_CONTINUED, cert_id=3,
              fragment=b'{"chain": "fragme')),
        ("unknown", fr.UnknownFrame,
         dict(stream_id=21, flags=0x5, raw_type=0xB0,
              raw_payload=b"mystery bytes")),
    ]
    vectors = []
    for name, cls, kwargs in specs:
        frame = cls(**kwargs)
        wire = frame.serialize()
        reparsed, rest = fr.parse_frame(wire)
        assert rest == b"", name
        vectors.append({
            "name": name,
            "cls": cls.__name__,
            "kwargs": {
                key: value.hex() if isinstance(value, bytes)
                else int(value) if isinstance(value, ErrorCode)
                else list(value) if isinstance(value, tuple)
                else value
                for key, value in kwargs.items()
            },
            "hex": wire.hex(),
            # Padding / priority flags are consumed by the parser, so a
            # parse->serialize round trip may legally differ from the
            # original wire bytes; freeze what the current code produces.
            "reparse_hex": reparsed.serialize().hex(),
        })
    return vectors


def hpack_corpus():
    """Stateful encode/decode session with dynamic-table churn."""
    blocks = [
        # Typical first request on a connection.
        [(":method", "GET"), (":scheme", "https"),
         (":authority", "www.example.com"), (":path", "/"),
         ("accept", "text/html"), ("user-agent", "repro-crawler/1.0")],
        # Repeat visit: dynamic table should now carry authority etc.
        [(":method", "GET"), (":scheme", "https"),
         (":authority", "www.example.com"), (":path", "/style.css"),
         ("accept", "text/css"), ("user-agent", "repro-crawler/1.0")],
        # Response-style block.
        [(":status", "200"), ("content-type", "text/html; charset=utf-8"),
         ("content-length", "5120"), ("server", "repro-origin"),
         ("alt-svc", 'h3=":443"; ma=86400')],
        # Never-index headers must stay literal.
        [(":method", "POST"), (":scheme", "https"),
         (":authority", "api.example.com"), (":path", "/submit"),
         ("cookie", "session=abc123; theme=dark"),
         ("authorization", "Bearer tok_secret_value")],
        # Mixed-case names (encoder lowercases), repeated custom headers.
        [(":method", "GET"), (":scheme", "https"),
         (":authority", "cdn.example-provider.net"),
         (":path", "/asset/9f8e7d6c.js"),
         ("X-Custom-Tag", "alpha"), ("x-custom-tag", "alpha")],
        # Second hit of the custom header: indexed from dynamic table.
        [(":method", "GET"), (":scheme", "https"),
         (":authority", "cdn.example-provider.net"),
         (":path", "/asset/1a2b3c4d.css"), ("x-custom-tag", "alpha")],
        # Long value forcing multi-byte integer length.
        [(":status", "304"), ("etag", '"' + "f" * 200 + '"'),
         ("cache-control", "public, max-age=31536000, immutable")],
    ]
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    vectors = []
    for headers in blocks:
        wire = encoder.encode(headers)
        decoded = decoder.decode(wire)
        vectors.append({
            "headers": [list(h) for h in headers],
            "hex": wire.hex(),
            "decoded": [list(h) for h in decoded],
        })
    return {
        "blocks": vectors,
        "final_encoder_table_size": encoder.table.size,
        "final_decoder_table_size": decoder.table.size,
        "final_table_len": len(encoder.table),
    }


def record_corpus():
    """TLS/QUIC record framing vectors, including a coalesced stream."""
    records = [
        (REC_HELLO, b'{"sni": "www.example.com", "alpn": ["h2"]}'),
        (REC_CERT, b'{"chain": ["leaf", "intermediate"]}' + b" " * 40),
        (REC_FINISHED, b""),
        (REC_TICKET, b'{"ticket": "0123456789abcdef"}'),
        (REC_APPDATA, bytes(range(200))),
    ]
    vectors = []
    stream = b""
    for rec_type, payload in records:
        wire = pack_record(rec_type, payload)
        stream += wire
        vectors.append({
            "type": rec_type,
            "payload": payload.hex(),
            "hex": wire.hex(),
        })
    parsed, rest = parse_records(stream)
    assert rest == b"" and len(parsed) == len(records)
    return {"records": vectors, "stream_hex": stream.hex()}


def main() -> None:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    corpus = {
        "comment": "Frozen pre-optimization wire bytes; see "
                   "scripts/gen_wire_golden.py",
        "frames": frame_corpus(),
        "hpack": hpack_corpus(),
        "tls_records": record_corpus(),
    }
    out = DATA_DIR / "wire_golden.json"
    out.write_text(json.dumps(corpus, indent=1) + "\n")
    print(f"wrote {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
