#!/usr/bin/env bash
# Crawl-throughput regression gate.
#
# Runs benchmarks/bench_crawl.py on a small world and fails if serial
# sites/sec regressed more than 20% against the checked-in
# BENCH_crawl.json baseline.  On multi-core machines (>= 2 CPUs) it
# also requires the parallel run to beat the serial run.
#
# The hard gate stays on the UNINSTRUMENTED serial run -- tracing and
# auditing are opt-in, so the baseline comparison measures the
# collectors-disabled path.  The telemetry overhead (traced vs untraced
# serial throughput) and the audit overhead (audited vs unaudited) are
# reported for trend-watching but do not fail the gate.
#
# Usage: scripts/bench.sh [sites] [jobs]
#   REPRO_BENCH_CRAWL_SITES / REPRO_BENCH_CRAWL_JOBS override defaults.
#   REPRO_BENCH_OUT_DIR keeps the result JSONs there (e.g. for CI
#   artifact upload) instead of deleting them on exit.
#   REPRO_BENCH_SERIAL_GATE_ONLY=1 gates only on serial throughput
#   (and the micro gate); the parallel-speedup bound is skipped --
#   for CI runners whose core count and load vary run to run.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

SITES="${1:-${REPRO_BENCH_CRAWL_SITES:-120}}"
JOBS="${2:-${REPRO_BENCH_CRAWL_JOBS:-4}}"
BASELINE="BENCH_crawl.json"
MICRO_BASELINE="BENCH_micro.json"
if [ -n "${REPRO_BENCH_OUT_DIR:-}" ]; then
    mkdir -p "$REPRO_BENCH_OUT_DIR"
    CURRENT="$REPRO_BENCH_OUT_DIR/bench_crawl.json"
    MICRO_CURRENT="$REPRO_BENCH_OUT_DIR/bench_micro.json"
else
    CURRENT="$(mktemp /tmp/bench_crawl.XXXXXX.json)"
    MICRO_CURRENT="$(mktemp /tmp/bench_micro.XXXXXX.json)"
    trap 'rm -f "$CURRENT" "$MICRO_CURRENT"' EXIT
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_crawl.py \
    --sites "$SITES" --jobs "$JOBS" --output "$CURRENT"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "$BASELINE" "$CURRENT" <<'EOF'
import json
import multiprocessing
import sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
try:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
except FileNotFoundError:
    print(f"bench.sh: no baseline at {baseline_path}; skipping the "
          "regression gate (commit one with benchmarks/bench_crawl.py)")
    sys.exit(0)

with open(current_path) as handle:
    current = json.load(handle)

# Normalise to throughput so the gate works when the site counts of
# the baseline and this run differ.  The gate compares the untraced
# serial run: tracing is opt-in, so this is the path the 20% bound
# protects.
base_rate = baseline["serial"]["sites_per_sec"]
cur_rate = current["serial"]["sites_per_sec"]
ratio = cur_rate / base_rate
print(f"bench.sh: serial (untraced) {cur_rate:.2f} sites/sec vs "
      f"baseline {base_rate:.2f} ({ratio:.2f}x)")
failed = False
if ratio < 0.8:
    print("bench.sh: FAIL -- serial crawl throughput regressed more "
          "than 20% against the baseline")
    failed = True

traced = current.get("traced")
if traced:
    print(f"bench.sh: tracing overhead "
          f"{traced['overhead_vs_serial']:.2f}x untraced serial "
          f"({traced['sites_per_sec']:.2f} sites/sec, "
          f"{traced['spans']} spans; informational, not gated)")

audited = current.get("audited")
if audited:
    print(f"bench.sh: audit overhead "
          f"{audited['overhead_vs_serial']:.2f}x unaudited serial "
          f"({audited['sites_per_sec']:.2f} sites/sec, "
          f"{audited['events']} events; informational, not gated)")

import os

if os.environ.get("REPRO_BENCH_SERIAL_GATE_ONLY") == "1":
    print("bench.sh: REPRO_BENCH_SERIAL_GATE_ONLY=1; parallel speedup "
          f"{current['speedup']:.2f}x reported but not gated")
elif multiprocessing.cpu_count() >= 2:
    if current["speedup"] < 1.0:
        print(f"bench.sh: FAIL -- jobs={current['jobs']} slower than "
              f"jobs=1 on a {multiprocessing.cpu_count()}-core machine "
              f"(speedup {current['speedup']:.2f}x)")
        failed = True
    else:
        print(f"bench.sh: parallel speedup {current['speedup']:.2f}x "
              f"on {multiprocessing.cpu_count()} cores")
else:
    print("bench.sh: single-core machine; skipping the parallel "
          "speedup gate")

sys.exit(1 if failed else 0)
EOF

# Hot-path microbenchmark gate.  Individual microbenchmarks are noisy
# on shared machines, so the bound is deliberately loose: fail only
# when a benchmark drops below half the checked-in baseline rate.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_micro.py \
    --output "$MICRO_CURRENT"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "$MICRO_BASELINE" "$MICRO_CURRENT" <<'EOF'
import json
import sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
try:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
except FileNotFoundError:
    print(f"bench.sh: no baseline at {baseline_path}; skipping the "
          "microbenchmark gate (commit one with "
          "benchmarks/bench_micro.py)")
    sys.exit(0)

with open(current_path) as handle:
    current = json.load(handle)

failed = False
for name, base in baseline["results"].items():
    cur = current["results"].get(name)
    if cur is None:
        print(f"bench.sh: FAIL -- microbenchmark {name} missing from "
              "the current run")
        failed = True
        continue
    ratio = cur["ops_per_sec"] / base["ops_per_sec"]
    print(f"bench.sh: micro {name} {cur['ops_per_sec']:,.0f} "
          f"{cur['unit']}/sec vs baseline {base['ops_per_sec']:,.0f} "
          f"({ratio:.2f}x)")
    if ratio < 0.5:
        print(f"bench.sh: FAIL -- {name} regressed below half the "
              "baseline rate")
        failed = True

sys.exit(1 if failed else 0)
EOF

# Traffic-simulation benchmark: informational only.  The traffic
# runner rides the same simulation hot paths the crawl gate already
# protects; this stage reports visits/sec (and re-proves the jobs=1 ==
# jobs=N byte-identity, which IS a hard failure) without adding a
# second throughput gate.
TRAFFIC_USERS="${REPRO_BENCH_TRAFFIC_USERS:-60}"
TRAFFIC_SITES="${REPRO_BENCH_TRAFFIC_SITES:-12}"
if [ -n "${REPRO_BENCH_OUT_DIR:-}" ]; then
    TRAFFIC_CURRENT="$REPRO_BENCH_OUT_DIR/bench_traffic.json"
else
    TRAFFIC_CURRENT="$(mktemp /tmp/bench_traffic.XXXXXX.json)"
    trap 'rm -f "$CURRENT" "$MICRO_CURRENT" "$TRAFFIC_CURRENT"' EXIT
fi
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_traffic.py \
    --users "$TRAFFIC_USERS" --sites "$TRAFFIC_SITES" \
    --duration 15 --shards 2 --jobs "$JOBS" \
    --output "$TRAFFIC_CURRENT"
echo "bench.sh: traffic stage informational (identity check gated above)"

# Chaos benchmark: informational only, same rationale as traffic --
# the chaos runner rides the crawl hot paths the crawl gate protects.
# Reports the idle-injector and faulted-run overhead vs a plain crawl;
# the empty-schedule == plain and jobs=1 == jobs=N byte-identity
# checks inside bench_chaos.py ARE hard failures.
CHAOS_SITES="${REPRO_BENCH_CHAOS_SITES:-20}"
if [ -n "${REPRO_BENCH_OUT_DIR:-}" ]; then
    CHAOS_CURRENT="$REPRO_BENCH_OUT_DIR/bench_chaos.json"
else
    CHAOS_CURRENT="$(mktemp /tmp/bench_chaos.XXXXXX.json)"
    trap 'rm -f "$CURRENT" "$MICRO_CURRENT" "$TRAFFIC_CURRENT" "$CHAOS_CURRENT"' EXIT
fi
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_chaos.py \
    --sites "$CHAOS_SITES" --shards 2 --jobs "$JOBS" \
    --output "$CHAOS_CURRENT"
echo "bench.sh: chaos stage informational (identity checks gated above)"

# Run-ledger regression compare: informational trend watch.  Run
# records hold only simulated-clock latencies, so the committed
# BENCH_ledger.jsonl baseline is machine-independent -- any drift
# repro compare flags here is a code-behaviour change, not noise.
# The crawl arguments are pinned (independent of $SITES/$JOBS knobs):
# the baseline only matches its exact configuration.
LEDGER_BASELINE="BENCH_ledger.jsonl"
if [ -n "${REPRO_BENCH_OUT_DIR:-}" ]; then
    LEDGER_DIR="$REPRO_BENCH_OUT_DIR/ledger"
else
    LEDGER_DIR="$(mktemp -d /tmp/bench_ledger.XXXXXX)"
    trap 'rm -f "$CURRENT" "$MICRO_CURRENT" "$TRAFFIC_CURRENT" "$CHAOS_CURRENT"; rm -rf "$LEDGER_DIR"' EXIT
fi
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro crawl \
    --sites 60 --seed 2022 --shards 2 --no-cache --tables 1 \
    --ledger "$LEDGER_DIR" > /dev/null
LEDGER_CURRENT="$(ls "$LEDGER_DIR"/crawl-*.jsonl | head -n 1)"
if [ -f "$LEDGER_BASELINE" ]; then
    if PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro \
            compare "$LEDGER_BASELINE" "$LEDGER_CURRENT" --only-changed; then
        echo "bench.sh: ledger compare clean against $LEDGER_BASELINE"
    else
        echo "bench.sh: ledger compare flagged drift against" \
             "$LEDGER_BASELINE (informational, not gated; refresh the" \
             "baseline with: cp $LEDGER_CURRENT $LEDGER_BASELINE)"
    fi
else
    echo "bench.sh: no $LEDGER_BASELINE; commit one with:" \
         "cp $LEDGER_CURRENT $LEDGER_BASELINE"
fi
