#!/usr/bin/env python
"""CI smoke gate: an ``--alpn h2,h3`` crawl must fetch exactly what
the ``--alpn h2`` crawl of the same seed fetches.

Compares per-page request *sets* (url, status, transfer size) rather
than entry order: h3 changes handshake timing and therefore completion
order, never content.  Also asserts the h3 run actually exercised the
upgrade machinery (some h3 traffic, strictly less handshake time), so
a silent regression to h2-only cannot pass.

Usage: PYTHONPATH=src python scripts/alpn_smoke.py [SITES] [SEED]
"""

import sys

from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import CrawlParams, ParallelCrawler


def crawl(config, alpn):
    params = CrawlParams(policy="chromium", speculative_rate=0.0,
                        alpn=alpn)
    return ParallelCrawler(config, params=params, shard_count=1).crawl()


def body_signature(result):
    return [
        (archive.page.url, archive.page.success,
         sorted((entry.url, entry.status, entry.transfer_size)
                for entry in archive.entries))
        for archive in result.archives
    ]


def handshake_ms(result):
    return sum(
        max(entry.timings.connect, 0.0) + max(entry.timings.ssl, 0.0)
        for archive in result.successes
        for entry in archive.entries
    )


def main(argv):
    sites = int(argv[1]) if len(argv) > 1 else 12
    seed = int(argv[2]) if len(argv) > 2 else 2022
    config = DatasetConfig(site_count=sites, seed=seed)

    h2 = crawl(config, "h2")
    h3 = crawl(config, "h2,h3")

    if body_signature(h2) != body_signature(h3):
        print("FAIL: h2 and h2,h3 crawls fetched different bodies",
              file=sys.stderr)
        return 1

    h3_requests = sum(
        1 for archive in h3.successes for entry in archive.entries
        if entry.protocol == "h3"
    )
    if h3_requests == 0:
        print("FAIL: the h2,h3 crawl served no h3 requests",
              file=sys.stderr)
        return 1

    h2_ms, h3_ms = handshake_ms(h2), handshake_ms(h3)
    if not h3_ms < h2_ms:
        print(f"FAIL: h3 handshake time {h3_ms:.0f}ms not below "
              f"h2-only {h2_ms:.0f}ms", file=sys.stderr)
        return 1

    print(f"alpn smoke OK: {sites} sites, bodies identical, "
          f"{h3_requests} h3 requests, handshake "
          f"{h2_ms:.0f}ms -> {h3_ms:.0f}ms", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
