"""The §5 production validation, simulated end to end.

A deployment CDN (the Cloudflare-analogue provider in the synthetic
world) hosts a heavily used third-party domain.  The experiment:

1. select a sample of CDN-hosted sites that request the third party
   (§5.1), split into experiment and control groups;
2. reissue every sample certificate -- experiment certs gain the third
   party's name, control certs gain an equal-length unused name
   (Figure 6);
3. deploy **IP coalescing** (§5.2: one dedicated address for sample
   and third-party domains) or **ORIGIN frames** (§5.3: the CDN's
   servers advertise per-SNI origin sets);
4. measure passively (sampled server logs with the SNI != Host flag
   bit; Figure 8) and actively (page loads with the Firefox model;
   Figures 7a/7b).

The §6.7 middlebox bug is modelled in
:mod:`repro.deployment.middlebox`.
"""

from repro.deployment.experiment import (
    DeploymentExperiment,
    Group,
    SampleSite,
)
from repro.deployment.passive import LogRecord, PassivePipeline
from repro.deployment.active import ActiveMeasurement, ActiveResult
from repro.deployment.longitudinal import (
    LongitudinalStudy,
    DailyRates,
)
from repro.deployment.middlebox import BuggyMiddlebox

__all__ = [
    "DeploymentExperiment",
    "Group",
    "SampleSite",
    "LogRecord",
    "PassivePipeline",
    "ActiveMeasurement",
    "ActiveResult",
    "LongitudinalStudy",
    "DailyRates",
    "BuggyMiddlebox",
]
