"""Server-side passive measurement pipeline (§5.2/§5.3).

A randomly sampled share of requests at the CDN is logged with:

* a per-connection identifier and the request's arrival order on it;
* the ``SNI != Host`` flag bit -- "a reasonable signal of connection
  coalescing";
* the treatment label (experiment / control), derived from the
  (page-truncated) Referer;
* the timestamp, for the Figure 8 longitudinal series.

Connection-level counting deduplicates by connection id exactly as the
paper describes ("we look for arrivals >= 2, making sure to count the
corresponding unique identifier only once").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.deployment.experiment import DeploymentExperiment, Group
from repro.h2.server import H2Server


@dataclass(frozen=True)
class LogRecord:
    """One sampled request at the CDN edge."""

    timestamp: float
    connection_id: int
    sni: str
    authority: str
    arrival_index: int
    referer: str
    group: Optional[Group]
    #: The coalescing signal: the request's Host differs from the SNI
    #: the connection was established with.
    sni_host_mismatch: bool
    user_agent: str = ""


def coalesced_share_series(
    records: List[LogRecord], bucket_ms: float
) -> List[Tuple[float, float, int]]:
    """Figure 8-style time series over edge log records.

    Buckets ``records`` by timestamp and returns
    ``(bucket_start_ms, coalesced_share, requests)`` per non-empty
    bucket in time order, where the share is the fraction of requests
    whose Host differed from the connection's SNI.  Shared between the
    §5 passive pipeline and the population-scale traffic monitor
    (:mod:`repro.traffic`), which produce the same record shape.
    """
    if bucket_ms <= 0:
        raise ValueError(f"bad bucket width {bucket_ms}")
    buckets: Dict[int, Tuple[int, int]] = {}
    for record in records:
        index = int(record.timestamp // bucket_ms)
        requests, coalesced = buckets.get(index, (0, 0))
        buckets[index] = (
            requests + 1,
            coalesced + (1 if record.sni_host_mismatch else 0),
        )
    return [
        (index * bucket_ms, coalesced / requests, requests)
        for index, (requests, coalesced) in sorted(buckets.items())
    ]


class PassivePipeline:
    """Attachable logging pipeline over a CDN server."""

    def __init__(
        self,
        experiment: DeploymentExperiment,
        sampling_rate: float = 0.01,
        seed: int = 97,
        firefox_only: bool = False,
    ) -> None:
        if not 0 < sampling_rate <= 1:
            raise ValueError(f"bad sampling rate {sampling_rate}")
        self.experiment = experiment
        self.sampling_rate = sampling_rate
        self.firefox_only = firefox_only
        self.rng = np.random.default_rng(seed)
        self.records: List[LogRecord] = []
        self._connection_ids: Dict[int, int] = {}
        self._next_connection_id = 1
        self._attached_server: Optional[H2Server] = None

    # -- attachment -----------------------------------------------------------

    def attach(self) -> None:
        server = self.experiment.cdn_server
        server.request_observer = self._observe
        self._attached_server = server

    def detach(self) -> None:
        if self._attached_server is not None:
            self._attached_server.request_observer = None
            self._attached_server = None

    # -- observation --------------------------------------------------------

    def _observe(self, connection, authority, arrival_index, headers
                 ) -> None:
        if self.rng.random() >= self.sampling_rate:
            return
        header_map = dict(headers)
        user_agent = header_map.get("user-agent", "")
        if self.firefox_only and "firefox" not in user_agent.lower():
            return
        key = id(connection)
        if key not in self._connection_ids:
            self._connection_ids[key] = self._next_connection_id
            self._next_connection_id += 1
        referer = header_map.get("referer", "")
        self.records.append(
            LogRecord(
                timestamp=self.experiment.world.network.loop.now(),
                connection_id=self._connection_ids[key],
                sni=connection.sni,
                authority=authority,
                arrival_index=arrival_index,
                referer=referer,
                group=self.experiment.group_of_domain(referer),
                sni_host_mismatch=(connection.sni != authority),
                user_agent=user_agent,
            )
        )

    # -- analysis ---------------------------------------------------------------

    def third_party_records(self) -> List[LogRecord]:
        return [
            record for record in self.records
            if record.authority == self.experiment.third_party
        ]

    def coalesced_connection_count(self, group: Group) -> int:
        """Connections on which a third-party request rode a
        different-SNI connection (counted once per connection id)."""
        seen: Set[int] = set()
        for record in self.third_party_records():
            if record.group is group and record.sni_host_mismatch \
                    and record.arrival_index >= 2:
                seen.add(record.connection_id)
        return len(seen)

    def direct_connection_count(self, group: Group) -> int:
        """New TLS connections made *to* the third party itself."""
        seen: Set[int] = set()
        for record in self.third_party_records():
            if record.group is group and not record.sni_host_mismatch:
                seen.add(record.connection_id)
        return len(seen)

    def tls_connection_reduction(self) -> float:
        """Relative reduction in new third-party TLS connections,
        experiment vs control -- §5.2 reports 56%, §5.3 ~50%."""
        control = self.direct_connection_count(Group.CONTROL)
        experiment = self.direct_connection_count(Group.EXPERIMENT)
        if control == 0:
            return 0.0
        return 1.0 - experiment / control

    def coalesced_share_over_time(
        self, bucket_ms: float
    ) -> List[Tuple[float, float, int]]:
        """Figure 8's series over this pipeline's sampled records."""
        return coalesced_share_series(self.records, bucket_ms)

    def rates_in_window(
        self, start: float, end: float
    ) -> Dict[Group, int]:
        """Direct third-party connections per group in [start, end)."""
        out = {Group.EXPERIMENT: set(), Group.CONTROL: set()}
        for record in self.third_party_records():
            if not start <= record.timestamp < end:
                continue
            if record.group is None or record.sni_host_mismatch:
                continue
            out[record.group].add(record.connection_id)
        return {group: len(ids) for group, ids in out.items()}
