"""Longitudinal traffic study (Figure 8).

Simulates weeks of production traffic to the sample sites: every
simulated day, a population of visits loads each site; the passive
pipeline logs sampled requests; daily direct-TLS-connection rates to
the third party are collected per treatment group.  The ORIGIN (or IP)
deployment is switched on for a window in the middle, producing the
paper's before/during/after contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.deployment.active import FIREFOX_96_UA
from repro.deployment.experiment import DeploymentExperiment, Group
from repro.deployment.passive import PassivePipeline

#: One simulated day, in ms.
DAY_MS = 24.0 * 3600 * 1000


@dataclass
class DailyRates:
    """Direct third-party TLS connections per day, per group."""

    days: List[int] = field(default_factory=list)
    experiment: List[int] = field(default_factory=list)
    control: List[int] = field(default_factory=list)
    deployment_window: Optional[tuple] = None

    def in_window(self, day: int) -> bool:
        if self.deployment_window is None:
            return False
        start, end = self.deployment_window
        return start <= day < end

    def mean_rate(self, group: Group, days: List[int]) -> float:
        series = (
            self.experiment if group is Group.EXPERIMENT else self.control
        )
        values = [series[self.days.index(day)] for day in days
                  if day in self.days]
        return float(np.mean(values)) if values else 0.0

    def reduction_during_deployment(self) -> float:
        """Experiment-vs-control reduction inside the window (~50%)."""
        if self.deployment_window is None:
            return 0.0
        window_days = [day for day in self.days if self.in_window(day)]
        control = self.mean_rate(Group.CONTROL, window_days)
        experiment = self.mean_rate(Group.EXPERIMENT, window_days)
        if control == 0:
            return 0.0
        return 1.0 - experiment / control

    def reduction_outside_deployment(self) -> float:
        outside = [day for day in self.days if not self.in_window(day)]
        control = self.mean_rate(Group.CONTROL, outside)
        experiment = self.mean_rate(Group.EXPERIMENT, outside)
        if control == 0:
            return 0.0
        return 1.0 - experiment / control


class LongitudinalStudy:
    """Drives daily traffic and toggles the deployment mid-study."""

    def __init__(
        self,
        experiment: DeploymentExperiment,
        pipeline: PassivePipeline,
        visits_per_site_per_day: int = 1,
        seed: int = 71,
    ) -> None:
        self.experiment = experiment
        self.pipeline = pipeline
        self.visits_per_site_per_day = visits_per_site_per_day
        self.rng = np.random.default_rng(seed)
        world = experiment.world
        self.context = BrowserContext(
            network=world.network,
            client_host=world.client_host,
            resolver=world.make_resolver(median_latency_ms=30.0),
            trust_store=world.trust_store,
            authorities=world.authorities,
            policy=FirefoxPolicy(origin_frames=True),
            rng=self.rng,
            asdb=world.asdb,
            user_agent=FIREFOX_96_UA,
        )
        self.engine = BrowserEngine(self.context)

    def _run_day(self) -> None:
        loop = self.experiment.world.network.loop
        for site in self.experiment.sample:
            for _ in range(self.visits_per_site_per_day):
                self.engine.new_session()
                self.engine.load_blocking(site.hosted.record.page)
        # Advance to the next day boundary.
        day_index = int(loop.now() // DAY_MS)
        loop.run_until((day_index + 1) * DAY_MS)

    def run(
        self,
        total_days: int = 8,
        deploy_on: int = 2,
        deploy_off: int = 6,
        enable: Optional[Callable[[], None]] = None,
        disable: Optional[Callable[[], None]] = None,
    ) -> DailyRates:
        """Run the study; ORIGIN is live on days [deploy_on, deploy_off)."""
        enable = enable or self.experiment.enable_origin_frames
        disable = disable or self.experiment.disable_origin_frames
        loop = self.experiment.world.network.loop
        start_day = int(loop.now() // DAY_MS)
        rates = DailyRates(
            deployment_window=(start_day + deploy_on,
                               start_day + deploy_off)
        )
        for offset in range(total_days):
            day = start_day + offset
            if offset == deploy_on:
                enable()
            if offset == deploy_off:
                disable()
            day_start = loop.now()
            self._run_day()
            counts = self.pipeline.rates_in_window(day_start, loop.now())
            rates.days.append(day)
            rates.experiment.append(counts[Group.EXPERIMENT])
            rates.control.append(counts[Group.CONTROL])
        return rates
