"""Sample selection, group assignment, and certificate reissuance (§5.1).

The deployment third party defaults to ``cdnjs.cloudflare.com`` -- the
synthetic analogue of the domain "used by ~50% of the top 1M websites"
that motivated the real deployment.  The control group's padding domain
has exactly the same byte length, so both treatment groups' certificate
modifications are byte-identical in size (Figure 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.world import HostedSite, SyntheticWorld
from repro.tlspki.certificate import Certificate


class Group(enum.Enum):
    EXPERIMENT = "experiment"
    CONTROL = "control"


#: The third-party domain the deployment coalesces.
DEFAULT_THIRD_PARTY = "cdnjs.cloudflare.com"
#: Equal-byte-length domain used by nobody (Figure 6's integrity trick).
DEFAULT_CONTROL_DOMAIN = "00njs.cloudflare.com"


def deployment_world_config(site_count: int = 300, seed: int = 2022):
    """A :class:`~repro.dataset.generator.DatasetConfig` tuned for the
    §5 experiment at laptop scale.

    The real sample drew the 5000 highest third-party-volume domains
    from ~75K CDN-hosted sites; at small N the same selection would be
    nearly empty, so the CDN's hosting share and the third party's
    usage rate are boosted to yield a usable sample while keeping
    per-page structure identical.
    """
    from repro.dataset.generator import DatasetConfig

    return DatasetConfig(
        site_count=site_count,
        seed=seed,
        popular_usage_overrides={DEFAULT_THIRD_PARTY: 0.60},
        provider_site_share_overrides={"Cloudflare": 0.45},
        # Library CDNs are overwhelmingly loaded via plain <script>
        # tags; only a small share uses crossorigin/fetch() (the §5.3
        # residual that capped coalescing at ~64%).
        popular_anonymous_rate=0.05,
    )


@dataclass
class SampleSite:
    """One site enrolled in the deployment."""

    hosted: HostedSite
    group: Group
    original_certificate: Certificate
    reissued_certificate: Optional[Certificate] = None

    @property
    def domain(self) -> str:
        return self.hosted.record.entry.domain

    @property
    def root_hostname(self) -> str:
        return self.hosted.record.root_hostname


class DeploymentExperiment:
    """Builds and manages the §5 experiment on a synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        provider: str = "Cloudflare",
        third_party: str = DEFAULT_THIRD_PARTY,
        control_domain: str = DEFAULT_CONTROL_DOMAIN,
        sample_size: int = 5000,
        subpage_only_rate: float = 0.22,
        seed: int = 31,
    ) -> None:
        if len(third_party) != len(control_domain):
            raise ValueError(
                "control domain must match the third party's byte length "
                f"({len(third_party)} vs {len(control_domain)})"
            )
        self.world = world
        self.provider = provider
        self.third_party = third_party
        self.control_domain = control_domain
        self.rng = np.random.default_rng(seed)
        self.sample: List[SampleSite] = []
        self.removed_subpage_only = 0
        self._select_sample(sample_size, subpage_only_rate)

    # -- selection ----------------------------------------------------------

    def _uses_third_party(self, hosted: HostedSite) -> bool:
        return any(
            resource.hostname == self.third_party
            for resource in hosted.record.page.resources
        )

    def _select_sample(self, size: int, subpage_only_rate: float) -> None:
        candidates = [
            hosted
            for hosted in self.world.sites
            if hosted.record.provider == self.provider
            and hosted.record.accessible
            and self._uses_third_party(hosted)
            # Legacy no-SAN certificates cannot take byte-equal SAN
            # additions (reissuing modernizes them); the CDN's managed
            # certificates all carry SANs.
            and hosted.certificate.san_count > 0
        ]
        # Rank by request volume to the third party (the paper took the
        # 5000 domains with the most third-party requests).
        candidates.sort(
            key=lambda hosted: sum(
                1 for r in hosted.record.page.resources
                if r.hostname == self.third_party
            ),
            reverse=True,
        )
        candidates = candidates[:size]
        # Remove sites whose root page cannot trigger the request --
        # the paper dropped 22% that only referenced the third party
        # from subpages.
        kept: List[HostedSite] = []
        for hosted in candidates:
            if self.rng.random() < subpage_only_rate:
                self.removed_subpage_only += 1
            else:
                kept.append(hosted)
        for hosted in kept:
            group = (
                Group.EXPERIMENT if self.rng.random() < 0.5 else
                Group.CONTROL
            )
            self.sample.append(
                SampleSite(
                    hosted=hosted,
                    group=group,
                    original_certificate=hosted.certificate,
                )
            )

    def sites_in(self, group: Group) -> List[SampleSite]:
        return [site for site in self.sample if site.group is group]

    def group_of_domain(self, domain_or_referer: str) -> Optional[Group]:
        for site in self.sample:
            if site.domain in domain_or_referer:
                return site.group
        return None

    # -- certificate reissuance (Figure 6) ---------------------------------

    def reissue_certificates(self, now: float = 0.0) -> int:
        """Renew every sample certificate with its group's added SAN.

        Returns the number of certificates reissued.  The CDN server's
        chain index picks up the new certificates immediately.
        """
        reissued = 0
        for site in self.sample:
            added = (
                self.third_party if site.group is Group.EXPERIMENT
                else self.control_domain
            )
            issuer = self.world.issuers[site.hosted.record.issuer]
            old = site.hosted.certificate
            renewed = issuer.reissue(old, added_san=(added,), now=now)
            site.reissued_certificate = renewed
            self._swap_chain(site.hosted, old, renewed, issuer)
            site.hosted.certificate = renewed
            reissued += 1
        return reissued

    def _swap_chain(self, hosted, old, new, issuer) -> None:
        config = hosted.server.config
        for index, chain in enumerate(config.chains):
            if chain and chain[0].serial == old.serial \
                    and chain[0].subject == old.subject:
                config.chains[index] = issuer.chain_for(new)
                return
        config.chains.append(issuer.chain_for(new))

    def certificate_size_deltas(self) -> Dict[Group, List[int]]:
        """Per-group growth in certificate bytes after reissue."""
        deltas: Dict[Group, List[int]] = {
            Group.EXPERIMENT: [], Group.CONTROL: [],
        }
        for site in self.sample:
            if site.reissued_certificate is None:
                continue
            deltas[site.group].append(
                site.reissued_certificate.size_bytes
                - site.original_certificate.size_bytes
            )
        return deltas

    # -- deployment switches -------------------------------------------------

    @property
    def cdn_server(self):
        return self.world.provider_servers[self.provider]

    def enable_origin_frames(self) -> None:
        """§5.3: the CDN advertises per-SNI origin sets.

        Experiment sites advertise the third party; control sites
        advertise the (unused) control domain, keeping frame sizes
        identical across groups.
        """
        config = self.cdn_server.config
        config.send_origin_frames = True
        for site in self.sample:
            origin = (
                self.third_party if site.group is Group.EXPERIMENT
                else self.control_domain
            )
            for hostname in site.hosted.record.own_hostnames():
                config.origin_sets[hostname] = (f"https://{origin}",)

    def disable_origin_frames(self) -> None:
        config = self.cdn_server.config
        config.send_origin_frames = False
        config.origin_sets.clear()

    def deploy_ip_coalescing(self) -> str:
        """§5.2: one new, dedicated address serves every sample domain
        and the third party; DNS answers collapse to that address.

        Returns the dedicated IP.
        """
        server = self.cdn_server
        ip = self.world.allocator.allocate(1)[0]
        self.world.network.add_address(server.host, ip)
        self.world.asdb.register(
            f"{ip}/32",
            self.world.asdb.asn_of(server.host.addresses[0]),
            self.provider,
        )
        server.listen(ip, 443)
        server.listen_plain(ip, 80)
        for site in self.sample:
            record = site.hosted.record
            zone = self.world.dns_authority.zone_for(record.entry.domain)
            for hostname in record.own_hostnames():
                from repro.dnssim.records import RecordType
                zone.remove(hostname, RecordType.A)
                zone.add_a(hostname, [ip])
        third_zone = self.world.dns_authority.zone_for(self.third_party)
        from repro.dnssim.records import RecordType
        third_zone.remove(self.third_party, RecordType.A)
        third_zone.add_a(self.third_party, [ip])
        self._dedicated_ip = ip
        return ip

    def undo_ip_coalescing(self) -> None:
        """Restore the third party's standard traffic engineering.

        Sample-domain DNS is left on the dedicated address (harmless);
        the third party reverts to the provider pool, restoring SLAs
        as in the paper's ORIGIN phase.
        """
        from repro.dnssim.records import RecordType

        server = self.cdn_server
        pool = [a for a in server.host.addresses
                if a != getattr(self, "_dedicated_ip", None)]
        third_zone = self.world.dns_authority.zone_for(self.third_party)
        third_zone.remove(self.third_party, RecordType.A)
        third_zone.add_a(self.third_party, pool[:3])
