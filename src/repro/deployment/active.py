"""Client-side active measurement (§5.2/§5.3, Figures 7a/7b).

Loads every sample site with the Firefox browser model (the only
browser with client-side ORIGIN support) and counts the *new TLS
connections to the third-party domain* during each page load: 0 means
the request was fully coalesced.

Per-visit content churn is modelled: with a small probability a visit
does not request the third party at all (sites change between
measurement campaigns -- the §5.3 discussion attributes part of the
gap to exactly this churn).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.deployment.experiment import DeploymentExperiment, Group
from repro.web.har import HarArchive
from repro.web.page import WebPage

FIREFOX_91_UA = (
    "Mozilla/5.0 (X11; Linux x86_64; rv:91.0) Gecko/20100101 Firefox/91.0"
)
FIREFOX_96_UA = (
    "Mozilla/5.0 (X11; Linux x86_64; rv:96.0) Gecko/20100101 Firefox/96.0"
)


@dataclass
class ActiveResult:
    """Per-group distributions of new third-party connections and
    page-load times (the latter feeds Figure 9 bottom)."""

    new_connections: Dict[Group, List[int]] = field(
        default_factory=lambda: {Group.EXPERIMENT: [], Group.CONTROL: []}
    )
    page_load_times: Dict[Group, List[float]] = field(
        default_factory=lambda: {Group.EXPERIMENT: [], Group.CONTROL: []}
    )

    def median_plt(self, group: Group) -> float:
        values = self.page_load_times[group]
        return float(np.median(values)) if values else 0.0

    def plt_difference(self) -> float:
        """Fractional PLT difference, experiment vs control (positive =
        experiment faster).  The paper measured ~1% (§6.1)."""
        control = self.median_plt(Group.CONTROL)
        if control == 0:
            return 0.0
        return 1.0 - self.median_plt(Group.EXPERIMENT) / control

    def fraction_with(self, group: Group, count: int) -> float:
        values = self.new_connections[group]
        if not values:
            return 0.0
        return sum(1 for v in values if v == count) / len(values)

    def fraction_at_most(self, group: Group, count: int) -> float:
        values = self.new_connections[group]
        if not values:
            return 0.0
        return sum(1 for v in values if v <= count) / len(values)

    def max_connections(self, group: Group) -> int:
        values = self.new_connections[group]
        return max(values) if values else 0

    def cdf(self, group: Group) -> List[Tuple[int, float]]:
        values = sorted(self.new_connections[group])
        if not values:
            return []
        out = []
        total = len(values)
        for count in range(values[-1] + 1):
            out.append(
                (count, sum(1 for v in values if v <= count) / total)
            )
        return out


class ActiveMeasurement:
    """Runs Figure 7's methodology against the deployed experiment."""

    def __init__(
        self,
        experiment: DeploymentExperiment,
        origin_frames: bool = True,
        churn_rate: float = 0.08,
        speculative_rate: float = 0.05,
        user_agent: str = FIREFOX_96_UA,
        seed: int = 53,
    ) -> None:
        self.experiment = experiment
        self.churn_rate = churn_rate
        self.rng = np.random.default_rng(seed)
        world = experiment.world
        self.context = BrowserContext(
            network=world.network,
            client_host=world.client_host,
            resolver=world.make_resolver(median_latency_ms=30.0),
            trust_store=world.trust_store,
            authorities=world.authorities,
            policy=FirefoxPolicy(origin_frames=origin_frames),
            rng=self.rng,
            speculative_rate=speculative_rate,
            asdb=world.asdb,
            user_agent=user_agent,
        )
        self.engine = BrowserEngine(self.context)

    def _visit_page(self, page: WebPage) -> WebPage:
        """Apply per-visit churn: maybe drop the third party."""
        if self.rng.random() >= self.churn_rate:
            return page
        third = self.experiment.third_party
        kept = [r for r in page.resources if r.hostname != third]
        dropped_paths = {
            r.path for r in page.resources if r.hostname == third
        }
        # Also drop resources whose parent disappeared.
        changed = True
        while changed:
            changed = False
            remaining = []
            for resource in kept:
                if resource.parent in dropped_paths:
                    dropped_paths.add(resource.path)
                    changed = True
                else:
                    remaining.append(resource)
            kept = remaining
        return WebPage(
            hostname=page.hostname,
            root_path=page.root_path,
            root_size_bytes=page.root_size_bytes,
            resources=kept,
            rank=page.rank,
        )

    def new_third_party_connections(self, archive: HarArchive) -> int:
        third = self.experiment.third_party
        return sum(
            1 for entry in archive.entries
            if entry.hostname == third
            and entry.timings.used_new_connection
        )

    def run(self, limit: Optional[int] = None) -> ActiveResult:
        result = ActiveResult()
        sample = self.experiment.sample[:limit] if limit else \
            self.experiment.sample
        for site in sample:
            self.engine.new_session()
            page = self._visit_page(site.hosted.record.page)
            archive = self.engine.load_blocking(page)
            result.new_connections[site.group].append(
                self.new_third_party_connections(archive)
            )
            result.page_load_times[site.group].append(
                archive.page.on_load
            )
        return result
