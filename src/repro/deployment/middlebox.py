"""The non-compliant HTTP/2 middlebox of §6.7.

A TLS-terminating network agent (antivirus / corporate proxy) sits on
path for some clients.  RFC 7540 §4.1 requires unknown frame types to
be ignored; the buggy agent instead tears the connection down when it
sees one -- which is exactly what an ORIGIN frame (type 0xC) looks
like to software written before RFC 8336.

The middlebox installs as a network tap and inspects server-to-client
bytes: it parses the simulated TLS records, reassembles the HTTP/2
frame stream inside APPDATA records, and checks every frame type
against its known set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.h2.frames import FRAME_HEADER_LEN, KNOWN_TYPES
from repro.transport.framing import REC_APPDATA, consume_records
from repro.netsim.network import Host, Network
from repro.netsim.transport import Transport
from repro.telemetry import RegistryStats


class MiddleboxStats(RegistryStats):
    """Inspection counters, backed by the unified metrics registry."""

    _prefix = "middlebox."
    _counters = (
        "connections_inspected",
        "frames_inspected",
        "unknown_frames_seen",
        "connections_torn_down",
    )


class _ConnectionInspector:
    """Per-connection reassembly state for one inspected flow."""

    def __init__(self, middlebox: "BuggyMiddlebox",
                 transport: Transport) -> None:
        self.middlebox = middlebox
        self.transport = transport
        self._record_buffer = bytearray()
        self._frame_buffer = bytearray()
        self.dead = False

    def inspect(self, data: bytes) -> bool:
        """Returns False to abort the connection."""
        if self.dead:
            return False
        self._record_buffer += data
        for record_type, payload in consume_records(self._record_buffer):
            if record_type != REC_APPDATA:
                continue
            self._frame_buffer += payload
            if not self._scan_frames():
                self.dead = True
                return False
        return True

    def _scan_frames(self) -> bool:
        while len(self._frame_buffer) >= FRAME_HEADER_LEN:
            length = int.from_bytes(self._frame_buffer[0:3], "big")
            if len(self._frame_buffer) < FRAME_HEADER_LEN + length:
                return True  # wait for more bytes
            frame_type = self._frame_buffer[3]
            del self._frame_buffer[: FRAME_HEADER_LEN + length]
            self.middlebox.stats.frames_inspected += 1
            if frame_type not in self.middlebox.known_types:
                self.middlebox.stats.unknown_frames_seen += 1
                if self.middlebox.tear_down_on_unknown:
                    # The §6.7 bug: kill the TLS connection instead of
                    # ignoring the frame.
                    self.middlebox.stats.connections_torn_down += 1
                    audit = self.middlebox.audit
                    if audit.enabled:
                        audit.record(
                            "middlebox",
                            ReasonCode.MIDDLEBOX_TEARDOWN_UNKNOWN_FRAME,
                            frame_type=frame_type,
                        )
                    return False
        return True


class BuggyMiddlebox:
    """A network tap that polices HTTP/2 frames for selected clients.

    ``tear_down_on_unknown=True`` reproduces the §6.7 failure; setting
    it to False models the vendor's eventual fix (ignore and pass).
    """

    def __init__(
        self,
        network: Network,
        protected_clients: Set[str],
        tear_down_on_unknown: bool = True,
    ) -> None:
        self.network = network
        self.protected_clients = set(protected_clients)
        self.tear_down_on_unknown = tear_down_on_unknown
        #: Types the agent recognizes: RFC 7540 only -- no ORIGIN.
        self.known_types = frozenset(KNOWN_TYPES)
        self.stats = MiddleboxStats()
        #: Decision-audit log; assign a live one to record teardowns.
        self.audit = NULL_AUDIT
        self._installed = False

    def install(self) -> None:
        if not self._installed:
            self.network.add_tap(self._tap)
            self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.network.remove_tap(self._tap)
            self._installed = False

    def fix(self) -> None:
        """Apply the vendor fix confirmed in September 2022 (§6.7)."""
        self.tear_down_on_unknown = False

    def _tap(
        self,
        client: Host,
        server_ip: str,
        port: int,
        client_end: Transport,
        server_end: Transport,
    ) -> None:
        if client.name not in self.protected_clients:
            return
        self.stats.connections_inspected += 1
        inspector = _ConnectionInspector(self, server_end)
        server_end.outbound_inspector = inspector.inspect
