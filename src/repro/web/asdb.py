"""IP-to-ASN mapping.

The paper resolves every request destination to its origin autonomous
system using "an internal database at Cloudflare" (§4.1); this module
is the simulation's equivalent, with /8../32 longest-prefix matching
over registered blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.addresses import ipv4_to_int


@dataclass(frozen=True)
class AsInfo:
    """One autonomous system."""

    asn: int
    org: str

    def __str__(self) -> str:
        return f"AS {self.asn} ({self.org})"


class AsDatabase:
    """Longest-prefix IP → AS lookups over registered CIDR blocks."""

    #: Prefix lengths supported, longest first for LPM.
    PREFIX_LENGTHS = (32, 24, 16, 8)

    def __init__(self) -> None:
        self._tables: Dict[int, Dict[int, AsInfo]] = {
            length: {} for length in self.PREFIX_LENGTHS
        }
        self._by_asn: Dict[int, AsInfo] = {}

    @staticmethod
    def _prefix_key(address_int: int, length: int) -> int:
        return address_int >> (32 - length)

    def register(self, cidr: str, asn: int, org: str) -> AsInfo:
        """Register a block, e.g. ``register("10.0.0.0/24", 13335,
        "Cloudflare")``."""
        if "/" not in cidr:
            raise ValueError(f"{cidr!r} is not CIDR notation")
        base, length_text = cidr.split("/", 1)
        length = int(length_text)
        if length not in self._tables:
            raise ValueError(
                f"unsupported prefix length /{length}; "
                f"use one of {self.PREFIX_LENGTHS}"
            )
        info = self._by_asn.get(asn)
        if info is None:
            info = AsInfo(asn=asn, org=org)
            self._by_asn[asn] = info
        elif info.org != org:
            raise ValueError(
                f"AS {asn} already registered as {info.org!r}, not {org!r}"
            )
        key = self._prefix_key(ipv4_to_int(base), length)
        self._tables[length][key] = info
        return info

    def lookup(self, address: str) -> Optional[AsInfo]:
        """Longest-prefix match; ``None`` for unregistered space."""
        address_int = ipv4_to_int(address)
        for length in self.PREFIX_LENGTHS:
            info = self._tables[length].get(
                self._prefix_key(address_int, length)
            )
            if info is not None:
                return info
        return None

    def asn_of(self, address: str) -> Optional[int]:
        info = self.lookup(address)
        return info.asn if info is not None else None

    def org_of(self, address: str) -> Optional[str]:
        info = self.lookup(address)
        return info.org if info is not None else None

    def info_for_asn(self, asn: int) -> Optional[AsInfo]:
        return self._by_asn.get(asn)

    def __len__(self) -> int:
        return len(self._by_asn)
