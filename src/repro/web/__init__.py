"""Web object model: pages, subresources, HAR timelines, AS mapping."""

from repro.web.content import ContentType, CONTENT_TYPE_SIZES
from repro.web.asdb import AsDatabase, AsInfo
from repro.web.page import FetchMode, Subresource, WebPage
from repro.web.har import HarArchive, HarEntry, HarPage, HarTimings

__all__ = [
    "ContentType",
    "CONTENT_TYPE_SIZES",
    "AsDatabase",
    "AsInfo",
    "FetchMode",
    "Subresource",
    "WebPage",
    "HarArchive",
    "HarEntry",
    "HarPage",
    "HarTimings",
]
