"""Content types and typical transfer sizes.

The type list mirrors the paper's Table 5 (top 12 content types across
35.9M requests).  Typical sizes are drawn from HTTP Archive medians for
each type and drive serialization delay in the page-load simulation.
"""

from __future__ import annotations

import enum
from typing import Dict


class ContentType(enum.Enum):
    """The content types seen in the paper's dataset (Table 5)."""

    APPLICATION_JAVASCRIPT = "application/javascript"
    IMAGE_JPEG = "image/jpeg"
    IMAGE_PNG = "image/png"
    TEXT_HTML = "text/html"
    IMAGE_GIF = "image/gif"
    TEXT_CSS = "text/css"
    TEXT_JAVASCRIPT = "text/javascript"
    APPLICATION_JSON = "application/json"
    APPLICATION_X_JAVASCRIPT = "application/x-javascript"
    FONT_WOFF2 = "font/woff2"
    IMAGE_WEBP = "image/webp"
    TEXT_PLAIN = "text/plain"

    @property
    def is_script(self) -> bool:
        return self in (
            ContentType.APPLICATION_JAVASCRIPT,
            ContentType.TEXT_JAVASCRIPT,
            ContentType.APPLICATION_X_JAVASCRIPT,
        )

    @property
    def is_image(self) -> bool:
        return self in (
            ContentType.IMAGE_JPEG,
            ContentType.IMAGE_PNG,
            ContentType.IMAGE_GIF,
            ContentType.IMAGE_WEBP,
        )

    @property
    def is_render_blocking(self) -> bool:
        """Scripts and stylesheets block rendering; they sit on the
        critical path the reconstruction model compacts (§4.1)."""
        return self.is_script or self is ContentType.TEXT_CSS

    @property
    def can_discover_children(self) -> bool:
        """HTML, CSS and scripts can reference further subresources
        (e.g. fonts from CSS, XHR from scripts)."""
        return (
            self is ContentType.TEXT_HTML
            or self is ContentType.TEXT_CSS
            or self.is_script
        )


#: Typical transfer size in bytes per content type (HTTP Archive-like
#: medians); used for serialization-delay modelling.
CONTENT_TYPE_SIZES: Dict[ContentType, int] = {
    ContentType.APPLICATION_JAVASCRIPT: 22_000,
    ContentType.IMAGE_JPEG: 38_000,
    ContentType.IMAGE_PNG: 18_000,
    ContentType.TEXT_HTML: 27_000,
    ContentType.IMAGE_GIF: 2_000,
    ContentType.TEXT_CSS: 14_000,
    ContentType.TEXT_JAVASCRIPT: 20_000,
    ContentType.APPLICATION_JSON: 3_000,
    ContentType.APPLICATION_X_JAVASCRIPT: 21_000,
    ContentType.FONT_WOFF2: 28_000,
    ContentType.IMAGE_WEBP: 15_000,
    ContentType.TEXT_PLAIN: 1_500,
}
