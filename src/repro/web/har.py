"""HAR-style timelines (HTTP Archive format, trimmed to what we use).

The crawler writes one :class:`HarArchive` per page load; the
coalescing model in :mod:`repro.core` consumes these, exactly as the
paper's pipeline consumed WebPageTest HAR files (§3.1, §4.1).

Timing semantics follow the HAR 1.2 spec: per entry, ``blocked`` (queue
/ CPU before the network), ``dns``, ``connect`` (TCP), ``ssl`` (TLS,
not included in ``connect`` here), ``send``, ``wait`` (server think),
``receive`` (body download).  ``-1`` means "did not happen" (e.g. no
DNS because the connection was reused).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional

NOT_APPLICABLE = -1.0


@dataclass
class HarTimings:
    """Per-request phase durations in milliseconds."""

    blocked: float = 0.0
    dns: float = NOT_APPLICABLE
    connect: float = NOT_APPLICABLE
    ssl: float = NOT_APPLICABLE
    send: float = 0.0
    wait: float = 0.0
    receive: float = 0.0

    def total(self) -> float:
        """Wall-clock duration of the entry (negative phases skipped)."""
        return sum(
            max(value, 0.0)
            for value in (
                self.blocked, self.dns, self.connect, self.ssl,
                self.send, self.wait, self.receive,
            )
        )

    @property
    def used_new_connection(self) -> bool:
        return self.connect >= 0.0

    @property
    def used_dns(self) -> bool:
        return self.dns >= 0.0

    def validate(self) -> None:
        for name in ("blocked", "send", "wait", "receive"):
            if getattr(self, name) < 0:
                raise ValueError(f"timing {name} cannot be negative")
        for name in ("dns", "connect", "ssl"):
            value = getattr(self, name)
            if value < 0 and value != NOT_APPLICABLE:
                raise ValueError(
                    f"timing {name} must be >= 0 or -1, got {value}"
                )


@dataclass
class HarEntry:
    """One request in a page-load timeline."""

    url: str
    hostname: str
    path: str
    started_at: float
    timings: HarTimings
    status: int = 200
    server_ip: str = ""
    protocol: str = "h2"
    content_type: str = ""
    transfer_size: int = 0
    #: IPs in the DNS answer used for this request (empty on reuse).
    dns_addresses: List[str] = field(default_factory=list)
    #: Leaf certificate SAN entries when a new TLS session validated.
    certificate_san: List[str] = field(default_factory=list)
    certificate_issuer: str = ""
    #: Origin AS of the server IP at the time of the request.
    asn: int = 0
    as_org: str = ""
    secure: bool = True
    fetch_mode: str = "normal"
    coalesced: bool = False
    #: Path of the resource whose parsing discovered this one ("" for
    #: the root document) -- the initiator chain browsers record.
    initiator_path: str = ""

    @property
    def finished_at(self) -> float:
        return self.started_at + self.timings.total()

    @property
    def new_tls_connection(self) -> bool:
        return self.timings.ssl >= 0.0


@dataclass
class HarPage:
    """Page-level summary."""

    url: str
    hostname: str
    rank: int = 0
    on_content_load: float = 0.0
    on_load: float = 0.0
    success: bool = True
    failure_reason: str = ""
    #: Connections (with TLS handshakes) opened beyond those attributed
    #: to entries: speculative/racing connections (paper §4.2 explains
    #: why measured TLS counts exceed DNS counts).
    extra_tls_connections: int = 0


@dataclass
class HarArchive:
    """One page load: the page record and its entries."""

    page: HarPage
    entries: List[HarEntry] = field(default_factory=list)

    @property
    def request_count(self) -> int:
        return len(self.entries)

    @property
    def page_load_time(self) -> float:
        return self.page.on_load

    def dns_query_count(self) -> int:
        return sum(1 for entry in self.entries if entry.timings.used_dns)

    def tls_connection_count(self) -> int:
        return (
            sum(1 for entry in self.entries if entry.new_tls_connection)
            + self.page.extra_tls_connections
        )

    def new_connection_count(self) -> int:
        return (
            sum(1 for entry in self.entries
                if entry.timings.used_new_connection)
            + self.page.extra_tls_connections
        )

    def unique_asns(self) -> List[int]:
        seen: List[int] = []
        for entry in self.entries:
            if entry.asn and entry.asn not in seen:
                seen.append(entry.asn)
        return seen

    def entries_by_start(self) -> List[HarEntry]:
        return sorted(self.entries, key=lambda entry: entry.started_at)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "page": asdict(self.page),
            "entries": [asdict(entry) for entry in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, doc: Dict) -> "HarArchive":
        page = HarPage(**doc["page"])
        entries = []
        for raw in doc["entries"]:
            raw = dict(raw)
            raw["timings"] = HarTimings(**raw["timings"])
            entries.append(HarEntry(**raw))
        return cls(page=page, entries=entries)

    @classmethod
    def from_json(cls, text: str) -> "HarArchive":
        return cls.from_dict(json.loads(text))
