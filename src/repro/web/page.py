"""Webpage structure: root document plus a subresource dependency graph.

A :class:`WebPage` is what the dataset generator emits and the browser
engine loads.  Each :class:`Subresource` names its parent (the resource
whose parsing discovers it), a discovery delay (CPU/parse time after
the parent's body arrives), a content type, a size, and a *fetch mode*
-- the paper found that requests made with ``crossorigin=anonymous``
or via ``fetch()``/``XMLHttpRequest`` were not coalesced by Firefox
(§5.3), so the mode is a first-class attribute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dnssim.records import normalize_name
from repro.web.content import ContentType


class FetchMode(enum.Enum):
    """How the browser fetches a subresource."""

    #: Normal element fetch (``<img>``, ``<script>``, ``<link>``).
    NORMAL = "normal"
    #: ``crossorigin="anonymous"`` element fetch (CORS, no credentials).
    CORS_ANONYMOUS = "cors-anonymous"
    #: Programmatic ``fetch()`` / ``XMLHttpRequest``.
    SCRIPT_FETCH = "script-fetch"


@dataclass
class Subresource:
    """One object a page needs beyond the root document."""

    hostname: str
    path: str
    content_type: ContentType
    size_bytes: int
    parent: Optional[str] = None  # parent path; None = root document
    discovery_delay_ms: float = 5.0
    fetch_mode: FetchMode = FetchMode.NORMAL
    #: False for legacy cleartext http:// subresources (Table 3 found
    #: 1.47% of requests still insecure).
    secure: bool = True

    def __post_init__(self) -> None:
        self.hostname = normalize_name(self.hostname)
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/': {self.path!r}")
        if self.size_bytes < 0:
            raise ValueError(f"negative size: {self.size_bytes}")
        if self.discovery_delay_ms < 0:
            raise ValueError(
                f"negative discovery delay: {self.discovery_delay_ms}"
            )

    @property
    def scheme(self) -> str:
        return "https" if self.secure else "http"

    @property
    def url(self) -> str:
        return f"{self.scheme}://{self.hostname}{self.path}"

    @property
    def coalescing_eligible(self) -> bool:
        """Firefox only coalesces secure NORMAL-mode fetches (§5.3)."""
        return self.fetch_mode is FetchMode.NORMAL and self.secure


@dataclass
class WebPage:
    """A root document and its subresource graph."""

    hostname: str
    root_path: str = "/"
    root_size_bytes: int = 27_000
    resources: List[Subresource] = field(default_factory=list)
    rank: int = 0  # Tranco-style popularity rank, 1 = most popular

    def __post_init__(self) -> None:
        self.hostname = normalize_name(self.hostname)
        self._validate_graph()

    @property
    def url(self) -> str:
        return f"https://{self.hostname}{self.root_path}"

    def _validate_graph(self) -> None:
        known_paths = {self.root_path}
        for resource in self.resources:
            known_paths.add(resource.path)
        for resource in self.resources:
            if resource.parent is not None and resource.parent not in known_paths:
                raise ValueError(
                    f"{resource.url} names unknown parent {resource.parent!r}"
                )
        self._assert_acyclic()

    def _normalized_parent(self, parent: Optional[str]) -> Optional[str]:
        """The root path and ``None`` both mean "discovered by the root"."""
        return None if parent in (None, self.root_path) else parent

    def _assert_acyclic(self) -> None:
        children: Dict[Optional[str], List[str]] = {}
        for resource in self.resources:
            parent = self._normalized_parent(resource.parent)
            children.setdefault(parent, []).append(resource.path)
        seen = set()
        stack: List[Optional[str]] = [None]  # None = root document
        while stack:
            node = stack.pop()
            for child in children.get(node, []):
                if child in seen:
                    raise ValueError(
                        f"dependency cycle or duplicate path at {child!r}"
                    )
                seen.add(child)
                stack.append(child)
        missing = {r.path for r in self.resources} - seen
        if missing:
            raise ValueError(
                f"resources unreachable from the root: {sorted(missing)}"
            )

    def children_of(self, parent_path: Optional[str]) -> List[Subresource]:
        """Resources discovered by parsing ``parent_path`` (``None`` or
        the root path for root-document children)."""
        wanted = self._normalized_parent(parent_path)
        return [
            resource
            for resource in self.resources
            if self._normalized_parent(resource.parent) == wanted
        ]

    def hostnames(self) -> List[str]:
        """All distinct hostnames the page touches, root first."""
        seen = [self.hostname]
        for resource in self.resources:
            if resource.hostname not in seen:
                seen.append(resource.hostname)
        return seen

    def sharded_hostnames(self) -> List[str]:
        """Hostnames other than the root's (the sharding targets)."""
        return [name for name in self.hostnames() if name != self.hostname]

    @property
    def request_count(self) -> int:
        """Total requests to fully load the page (root + subresources)."""
        return 1 + len(self.resources)
