"""Privacy exposure analysis (paper §6.2).

The paper's final position is that ORIGIN frames' primary benefit is
*privacy*: "each coalesced connection hides an otherwise exposed
plaintext SNI, and at least one DNS query if transmitted over UDP or
TCP on port 53".  This module counts exactly those signals -- the
hostnames an on-path observer learns from a page load -- under the
measured client, the ideal ORIGIN client, and optional ECH/encrypted-
DNS deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.core.grouping import ServiceGrouper, by_asn
from repro.core.timeline import ReconstructionOptions, reconstruct
from repro.web.har import HarArchive


@dataclass
class PrivacyExposure:
    """On-path observable signals from one page load."""

    #: Hostnames leaked through plaintext DNS queries.
    dns_leaked: Set[str] = field(default_factory=set)
    #: Hostnames leaked through plaintext SNI in ClientHellos.
    sni_leaked: Set[str] = field(default_factory=set)
    #: Raw counts (a hostname can leak several times).
    plaintext_dns_queries: int = 0
    plaintext_sni_handshakes: int = 0

    @property
    def leaked_hostnames(self) -> Set[str]:
        return self.dns_leaked | self.sni_leaked

    @property
    def total_signals(self) -> int:
        return self.plaintext_dns_queries + self.plaintext_sni_handshakes


def exposure_from_archive(
    archive: HarArchive,
    encrypted_dns: bool = False,
    ech: bool = False,
) -> PrivacyExposure:
    """What an on-path observer saw during this page load.

    ``encrypted_dns`` models DoH/DoT (queries leave the path);
    ``ech`` models Encrypted Client Hello (SNI leaves the path).
    """
    exposure = PrivacyExposure()
    for entry in archive.entries:
        if entry.timings.used_dns and not encrypted_dns:
            exposure.plaintext_dns_queries += 1
            exposure.dns_leaked.add(entry.hostname)
        if entry.new_tls_connection and not ech:
            exposure.plaintext_sni_handshakes += 1
            exposure.sni_leaked.add(entry.hostname)
        if not entry.secure:
            # Cleartext HTTP leaks the hostname outright.
            exposure.sni_leaked.add(entry.hostname)
    return exposure


@dataclass
class PrivacyComparison:
    """Per-page exposure under each client model."""

    measured: List[PrivacyExposure]
    ideal_origin: List[PrivacyExposure]

    def median_signals(self) -> Dict[str, float]:
        return {
            "measured": float(np.median(
                [e.total_signals for e in self.measured]
            )) if self.measured else 0.0,
            "ideal_origin": float(np.median(
                [e.total_signals for e in self.ideal_origin]
            )) if self.ideal_origin else 0.0,
        }

    def median_hostnames_hidden(self) -> float:
        """Median count of hostnames the ideal client hides entirely."""
        hidden = [
            len(m.leaked_hostnames) - len(i.leaked_hostnames)
            for m, i in zip(self.measured, self.ideal_origin)
        ]
        return float(np.median(hidden)) if hidden else 0.0

    def signal_reduction(self) -> float:
        medians = self.median_signals()
        if medians["measured"] == 0:
            return 0.0
        return 1.0 - medians["ideal_origin"] / medians["measured"]


def compare_privacy(
    archives: Sequence[HarArchive],
    grouper: ServiceGrouper = by_asn,
    options: ReconstructionOptions = None,
) -> PrivacyComparison:
    """Exposure today vs under ideal ORIGIN coalescing.

    The ideal client's exposure comes from the §4.1 reconstruction:
    coalesced requests make no DNS query and no new TLS handshake, so
    their hostnames never cross the wire in cleartext.
    """
    options = options or ReconstructionOptions()
    measured: List[PrivacyExposure] = []
    ideal: List[PrivacyExposure] = []
    for archive in archives:
        if not archive.page.success:
            continue
        measured.append(exposure_from_archive(archive))
        rebuilt = reconstruct(archive, grouper, options).reconstructed
        ideal.append(exposure_from_archive(rebuilt))
    return PrivacyComparison(measured=measured, ideal_origin=ideal)
