"""Predicted DNS / TLS / certificate-validation counts (paper §4.2).

"In an ideal coalescing, the number of DNS queries, TLS handshakes,
and certificate validations is equal to the number of separate
services (not domains or hostnames) needed to serve all webpage
resources."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.core.grouping import ServiceGrouper, by_asn, by_ip
from repro.web.har import HarArchive, HarEntry


@dataclass(frozen=True)
class CoalescingCounts:
    """Per-page counts under some client model."""

    dns_queries: int
    tls_connections: int
    certificate_validations: int


def measured_counts(archive: HarArchive) -> CoalescingCounts:
    """What the crawl actually observed."""
    return CoalescingCounts(
        dns_queries=archive.dns_query_count(),
        tls_connections=archive.tls_connection_count(),
        certificate_validations=archive.tls_connection_count(),
    )


def _service_count(
    archive: HarArchive, grouper: ServiceGrouper
) -> int:
    """Distinct services among successful entries; entries the grouper
    cannot place (no ASN/IP) each count as their own service."""
    services: Set[str] = set()
    unplaceable = 0
    for entry in archive.entries:
        if entry.status != 200:
            continue
        service = grouper(entry)
        if service is None:
            unplaceable += 1
        else:
            services.add(service)
    return len(services) + unplaceable


def ideal_origin_counts(archive: HarArchive) -> CoalescingCounts:
    """Best-case ORIGIN coalescing: one of everything per origin AS."""
    count = _service_count(archive, by_asn)
    return CoalescingCounts(
        dns_queries=count,
        tls_connections=count,
        certificate_validations=count,
    )


def ideal_ip_counts(archive: HarArchive) -> CoalescingCounts:
    """IP-based 'missed opportunities': one of everything per server IP.

    This is the no-changes upper bound -- "no two hostnames are listed
    on a single certificate" is not required because connections are
    only merged when they already hit the same address.
    """
    count = _service_count(archive, by_ip)
    return CoalescingCounts(
        dns_queries=count,
        tls_connections=count,
        certificate_validations=count,
    )


def origin_set_for_page(
    archive: HarArchive, grouper: ServiceGrouper = by_asn
) -> dict:
    """The ORIGIN sets the model says servers should advertise.

    Returns ``{service_key: [hostnames...]}`` -- "the set of names that
    should appear in an ORIGIN Frame for a website are those that could
    have been coalesced" (§4.1).
    """
    sets: dict = {}
    for entry in archive.entries:
        if entry.status != 200:
            continue
        service = grouper(entry)
        if service is None:
            continue
        hostnames = sets.setdefault(service, [])
        if entry.hostname not in hostnames:
            hostnames.append(entry.hostname)
    return {
        service: hostnames
        for service, hostnames in sets.items()
        if len(hostnames) > 1
    }
