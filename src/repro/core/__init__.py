"""The paper's primary contribution: best-case coalescing modelling.

Implements §4 of the paper over HAR archives produced by the crawler:

* :mod:`repro.core.grouping` -- the "service" equivalence that decides
  what could share a connection (by ASN for ORIGIN-frame coalescing,
  by IP for IP-based coalescing, by one CDN's ASN for the
  deployment-only prediction);
* :mod:`repro.core.timeline` -- §4.1's conservative waterfall
  reconstruction (Figure 2);
* :mod:`repro.core.coalescing` -- §4.2's predicted DNS / TLS /
  certificate-validation counts (Figure 3);
* :mod:`repro.core.certplan` -- §4.3's least-effort certificate
  modification plan (Figures 4-5, Tables 8-9);
* :mod:`repro.core.predictions` -- page-load-time predictions
  (Figure 9 top) and the paper's headline reductions (§7).
"""

from repro.core.grouping import (
    ServiceGrouper,
    by_asn,
    by_ip,
    by_hostname,
    by_single_asn,
)
from repro.core.timeline import (
    ReconstructionOptions,
    ReconstructionResult,
    reconstruct,
)
from repro.core.coalescing import (
    CoalescingCounts,
    measured_counts,
    ideal_ip_counts,
    ideal_origin_counts,
    origin_set_for_page,
)
from repro.core.certplan import (
    SitePlan,
    CertificatePlan,
    plan_certificates,
    san_distribution_table,
    provider_addition_table,
)
from repro.core.predictions import (
    Figure3Data,
    figure3,
    PltPrediction,
    predict_plt,
    headline_reductions,
)
from repro.core.privacy import (
    PrivacyExposure,
    PrivacyComparison,
    exposure_from_archive,
    compare_privacy,
)

__all__ = [
    "ServiceGrouper",
    "by_asn",
    "by_ip",
    "by_hostname",
    "by_single_asn",
    "ReconstructionOptions",
    "ReconstructionResult",
    "reconstruct",
    "CoalescingCounts",
    "measured_counts",
    "ideal_ip_counts",
    "ideal_origin_counts",
    "origin_set_for_page",
    "SitePlan",
    "CertificatePlan",
    "plan_certificates",
    "san_distribution_table",
    "provider_addition_table",
    "Figure3Data",
    "figure3",
    "PltPrediction",
    "predict_plt",
    "headline_reductions",
    "PrivacyExposure",
    "PrivacyComparison",
    "exposure_from_archive",
    "compare_privacy",
]
