"""Waterfall reconstruction (paper §4.1, Figure 2).

Rebuilds a page-load timeline as if every coalescable request had
ridden an existing connection: its DNS, TCP-connect, and TLS phases
are removed, and every request it (transitively) triggered starts
earlier.  Two conservatisms from the paper are preserved:

* the CPU/parse gap between a parent finishing and a child starting is
  kept unchanged ("in an effort to model browsers' dependency graph
  computation time");
* among coalescable requests launched concurrently, only the *minimum*
  DNS time is removed; the excess of slower lookups is retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.core.grouping import ServiceGrouper
from repro.web.har import HarArchive, HarEntry, HarPage, HarTimings

#: Requests whose starts fall within this window of each other are
#: "concurrent" for the minimum-DNS conservatism.
CONCURRENCY_WINDOW_MS = 10.0


@dataclass
class ReconstructionOptions:
    """Knobs for the reconstruction model."""

    #: Drop DNS time for coalesced requests entirely (the ideal client
    #: of §6.8).  When False, DNS is retained -- Firefox's conservative
    #: behaviour of querying anyway.
    drop_dns: bool = True
    #: Respect fetch modes: requests made via fetch()/XHR or with
    #: crossorigin=anonymous cannot coalesce (§5.3).  The §4 model
    #: predates that discovery and ignores it, so the default is False.
    respect_fetch_modes: bool = False
    #: Insecure (cleartext) requests can only reuse same-IP
    #: connections; they never TLS-coalesce.
    include_insecure: bool = False
    #: Coalescing requires HTTP/2 multiplexing on both sides; entries
    #: negotiated down to HTTP/1.1 cannot ride a shared connection.
    require_h2: bool = True


@dataclass
class ReconstructionResult:
    original: HarArchive
    reconstructed: HarArchive
    coalesced_urls: List[str]
    time_saved_ms: float

    @property
    def plt_improvement(self) -> float:
        """Fractional PLT reduction (0.27 == 27% faster)."""
        before = self.original.page.on_load
        if before <= 0:
            return 0.0
        return (before - self.reconstructed.page.on_load) / before


def _eligible(entry: HarEntry, options: ReconstructionOptions) -> bool:
    if entry.status != 200:
        return False
    if not entry.secure and not options.include_insecure:
        return False
    if options.respect_fetch_modes and entry.fetch_mode != "normal":
        return False
    if options.require_h2 and entry.protocol != "h2":
        return False
    return True


def reconstruct(
    archive: HarArchive,
    grouper: ServiceGrouper,
    options: Optional[ReconstructionOptions] = None,
) -> ReconstructionResult:
    """Reconstruct ``archive`` under ideal coalescing for ``grouper``."""
    options = options or ReconstructionOptions()
    entries = archive.entries_by_start()
    if not entries:
        return ReconstructionResult(
            original=archive,
            reconstructed=HarArchive(page=replace(archive.page)),
            coalesced_urls=[],
            time_saved_ms=0.0,
        )

    coalesced = _mark_coalesced(entries, grouper, options)
    dns_savings = _concurrent_dns_savings(entries, grouper, coalesced,
                                          options)

    # Index entries by path for initiator lookups.
    by_path: Dict[str, HarEntry] = {}
    for entry in entries:
        by_path.setdefault(entry.path, entry)

    new_start: Dict[int, float] = {}
    new_finish: Dict[int, float] = {}
    rebuilt: List[HarEntry] = []

    def rebuilt_finish_of_initiator(entry: HarEntry) -> Tuple[float, float]:
        """(original initiator finish, rebuilt initiator finish)."""
        initiator = by_path.get(entry.initiator_path)
        if initiator is None or initiator is entry:
            return entry.started_at, entry.started_at
        key = id(initiator)
        if key not in new_finish:
            return initiator.finished_at, initiator.finished_at
        return initiator.finished_at, new_finish[key]

    for entry in entries:
        orig_init_finish, new_init_finish = rebuilt_finish_of_initiator(
            entry
        )
        # Preserve the CPU/discovery gap between initiator and start.
        gap = max(0.0, entry.started_at - orig_init_finish)
        start = (
            new_init_finish + gap
            if entry.initiator_path else entry.started_at
        )

        timings = replace(entry.timings)
        if id(entry) in coalesced:
            timings.connect = -1.0
            timings.ssl = -1.0
            if options.drop_dns and timings.dns >= 0:
                saving = dns_savings.get(id(entry), timings.dns)
                remainder = timings.dns - saving
                timings.dns = remainder if remainder > 1e-9 else -1.0
            # Reused connections also shed speculative blocked time.
            timings.blocked = min(timings.blocked, 1.0)

        new_entry = replace(entry, started_at=start, timings=timings,
                            coalesced=(id(entry) in coalesced
                                       or entry.coalesced))
        rebuilt.append(new_entry)
        new_start[id(entry)] = start
        new_finish[id(entry)] = start + timings.total()

    on_load = max(new_finish.values()) - min(
        entry.started_at for entry in entries
    )
    page = replace(
        archive.page,
        on_load=on_load,
        on_content_load=min(archive.page.on_content_load, on_load),
        # An ideal client has no speculative racing connections.
        extra_tls_connections=0,
    )
    reconstructed = HarArchive(page=page, entries=rebuilt)
    return ReconstructionResult(
        original=archive,
        reconstructed=reconstructed,
        coalesced_urls=[
            entry.url for entry in entries if id(entry) in coalesced
        ],
        time_saved_ms=archive.page.on_load - on_load,
    )


def _mark_coalesced(
    entries: List[HarEntry],
    grouper: ServiceGrouper,
    options: ReconstructionOptions,
) -> Set[int]:
    """First request per service keeps its connection; later ones ride it."""
    seen_services: Set[str] = set()
    coalesced: Set[int] = set()
    for entry in entries:
        service = grouper(entry) if _eligible(entry, options) else None
        if service is None:
            continue
        if service in seen_services:
            # Only requests that actually paid for a new connection
            # gain anything from coalescing.
            if entry.timings.used_new_connection or entry.timings.used_dns:
                coalesced.add(id(entry))
        else:
            seen_services.add(service)
    return coalesced


def _concurrent_dns_savings(
    entries: List[HarEntry],
    grouper: ServiceGrouper,
    coalesced: Set[int],
    options: ReconstructionOptions,
) -> Dict[int, float]:
    """Per-entry DNS time removable under the min-of-concurrent rule."""
    savings: Dict[int, float] = {}
    groups: Dict[Tuple[str, int], List[HarEntry]] = {}
    for entry in entries:
        if id(entry) not in coalesced or entry.timings.dns < 0:
            continue
        service = grouper(entry)
        window = int(entry.started_at // CONCURRENCY_WINDOW_MS)
        groups.setdefault((service or "", window), []).append(entry)
    for group in groups.values():
        saving = min(entry.timings.dns for entry in group)
        for entry in group:
            savings[id(entry)] = saving
    return savings
