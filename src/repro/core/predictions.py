"""Model predictions: Figure 3, Figure 9 (top), and headline numbers.

Everything here runs the §4 model over a set of crawled HAR archives
and returns distribution data for benches and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.coalescing import (
    ideal_ip_counts,
    ideal_origin_counts,
    measured_counts,
)
from repro.core.grouping import by_single_asn
from repro.core.timeline import (
    ReconstructionOptions,
    reconstruct,
)
from repro.core import grouping
from repro.web.har import HarArchive


def _successes(archives: Sequence[HarArchive]) -> List[HarArchive]:
    return [a for a in archives if a.page.success]


@dataclass
class Figure3Data:
    """Per-page count distributions for Figure 3's four CDFs."""

    measured_dns: List[int]
    measured_tls: List[int]
    ideal_ip: List[int]
    ideal_origin: List[int]

    def medians(self) -> Dict[str, float]:
        return {
            "measured_dns": float(np.median(self.measured_dns)),
            "measured_tls": float(np.median(self.measured_tls)),
            "ideal_ip": float(np.median(self.ideal_ip)),
            "ideal_origin": float(np.median(self.ideal_origin)),
        }

    def reduction_vs_measured(self) -> Dict[str, float]:
        """Median reductions the paper headlines (§4.2): ~64% DNS and
        ~67% TLS under ideal ORIGIN coalescing."""
        m = self.medians()
        out = {}
        if m["measured_dns"]:
            out["origin_dns_reduction"] = (
                1.0 - m["ideal_origin"] / m["measured_dns"]
            )
            out["ip_dns_reduction"] = 1.0 - m["ideal_ip"] / m["measured_dns"]
        if m["measured_tls"]:
            out["origin_tls_reduction"] = (
                1.0 - m["ideal_origin"] / m["measured_tls"]
            )
            out["ip_tls_reduction"] = 1.0 - m["ideal_ip"] / m["measured_tls"]
        return out

    def validation_percentiles(self) -> Dict[str, float]:
        """Certificate-validation stats quoted for Figure 3: measured
        p75 vs ideal p75, and interquartile ranges."""
        measured = np.array(self.measured_tls, dtype=float)
        ideal = np.array(self.ideal_origin, dtype=float)
        return {
            "measured_p75": float(np.percentile(measured, 75)),
            "ideal_p75": float(np.percentile(ideal, 75)),
            "measured_iqr": float(
                np.percentile(measured, 75) - np.percentile(measured, 25)
            ),
            "ideal_iqr": float(
                np.percentile(ideal, 75) - np.percentile(ideal, 25)
            ),
        }


def figure3(archives: Sequence[HarArchive]) -> Figure3Data:
    """Measured vs ideal-IP vs ideal-ORIGIN count distributions."""
    ok = _successes(archives)
    return Figure3Data(
        measured_dns=[measured_counts(a).dns_queries for a in ok],
        measured_tls=[measured_counts(a).tls_connections for a in ok],
        ideal_ip=[ideal_ip_counts(a).tls_connections for a in ok],
        ideal_origin=[ideal_origin_counts(a).tls_connections for a in ok],
    )


@dataclass
class PltPrediction:
    """PLT distributions under the model (Figure 9 top)."""

    measured: List[float]
    ideal_ip: List[float]
    ideal_origin: List[float]
    cdn_origin: List[float] = field(default_factory=list)

    def median_improvements(self) -> Dict[str, float]:
        """Fractional median PLT improvements vs measured.

        Paper: ~10% (IP), ~27% (ORIGIN), ~1.5% (single-CDN ORIGIN).
        """
        base = float(np.median(self.measured))
        out = {}
        if base > 0:
            out["ip"] = 1.0 - float(np.median(self.ideal_ip)) / base
            out["origin"] = 1.0 - float(np.median(self.ideal_origin)) / base
            if self.cdn_origin:
                out["cdn_origin"] = (
                    1.0 - float(np.median(self.cdn_origin)) / base
                )
        return out


def predict_plt(
    archives: Sequence[HarArchive],
    cdn_asn: Optional[int] = None,
    options: Optional[ReconstructionOptions] = None,
) -> PltPrediction:
    """Reconstruct every page under each model and collect PLTs."""
    ok = _successes(archives)
    options = options or ReconstructionOptions()
    measured = [a.page.on_load for a in ok]
    ideal_ip = [
        reconstruct(a, grouping.by_ip, options).reconstructed.page.on_load
        for a in ok
    ]
    ideal_origin = [
        reconstruct(a, grouping.by_asn, options).reconstructed.page.on_load
        for a in ok
    ]
    cdn = []
    if cdn_asn is not None:
        cdn_grouper = by_single_asn(cdn_asn)
        cdn = [
            reconstruct(a, cdn_grouper, options).reconstructed.page.on_load
            for a in ok
        ]
    return PltPrediction(
        measured=measured,
        ideal_ip=ideal_ip,
        ideal_origin=ideal_origin,
        cdn_origin=cdn,
    )


def headline_reductions(
    archives: Sequence[HarArchive],
) -> Dict[str, float]:
    """The paper's §7 headline: median reductions in render-blocking
    DNS queries (-64.28%) and certificate validations (-68.75%)."""
    data = figure3(archives)
    reductions = data.reduction_vs_measured()
    return {
        "dns_reduction": reductions.get("origin_dns_reduction", 0.0),
        "validation_reduction": reductions.get(
            "origin_tls_reduction", 0.0
        ),
    }
