"""Least-effort certificate modification planning (paper §4.3).

For every website: find the hostnames its page needs that are served
by the *same provider* (same origin AS) as the website itself but are
absent from the website's certificate SAN -- those are the additions
that would let a client coalesce them.  Only the website's own
certificate is modified, and only with coalescable names ("our model
takes a compromise position and assumes no change in the number of
certificates").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.world import HostedSite, SyntheticWorld
from repro.dnssim.resolver import NxDomain
from repro.tlspki.certificate import Certificate


def hostname_asn_resolver(
    world: SyntheticWorld,
) -> Callable[[str], Optional[int]]:
    """Map hostnames to origin ASNs through the world's DNS + AS DB."""
    cache: Dict[str, Optional[int]] = {}

    def resolve(hostname: str) -> Optional[int]:
        if hostname not in cache:
            try:
                addresses, _, _ = world.dns_authority.query(hostname)
            except NxDomain:
                cache[hostname] = None
            else:
                cache[hostname] = (
                    world.asdb.asn_of(addresses[0]) if addresses else None
                )
        return cache[hostname]

    return resolve


@dataclass
class SitePlan:
    """The certificate change plan for one website."""

    hosted: HostedSite
    root_asn: Optional[int]
    #: Page hostnames on the site's own AS (coalescable with the root).
    coalescable: Tuple[str, ...]
    #: Coalescable hostnames absent from the certificate SAN.
    additions: Tuple[str, ...]

    @property
    def existing_san_count(self) -> int:
        return self.hosted.certificate.san_count

    @property
    def ideal_san_count(self) -> int:
        return self.existing_san_count + len(self.additions)

    @property
    def change_count(self) -> int:
        return len(self.additions)

    @property
    def needs_changes(self) -> bool:
        return bool(self.additions)


@dataclass
class CertificatePlan:
    """Aggregate plan over the whole dataset."""

    plans: List[SitePlan]

    @property
    def site_count(self) -> int:
        return len(self.plans)

    @property
    def unchanged_fraction(self) -> float:
        """Paper: 62.41% of certificates require no modifications."""
        if not self.plans:
            return 0.0
        unchanged = sum(1 for plan in self.plans if not plan.needs_changes)
        return unchanged / len(self.plans)

    def fraction_with_changes_at_most(self, limit: int) -> float:
        """Paper: <=10 changes covers 92.66% of websites."""
        if not self.plans:
            return 0.0
        covered = sum(
            1 for plan in self.plans if plan.change_count <= limit
        )
        return covered / len(self.plans)

    def fraction_needing_more_than(self, limit: int) -> float:
        if not self.plans:
            return 0.0
        return sum(
            1 for plan in self.plans if plan.change_count > limit
        ) / len(self.plans)

    def existing_san_counts(self) -> List[int]:
        return [plan.existing_san_count for plan in self.plans]

    def ideal_san_counts(self) -> List[int]:
        return [plan.ideal_san_count for plan in self.plans]

    def median_san_shift(self) -> Tuple[float, float]:
        """(existing median, ideal median) over *changed* certs --
        Figure 4 reports a 2 -> 3 median shift among SANs that changed."""
        changed = [plan for plan in self.plans if plan.needs_changes]
        if not changed:
            return 0.0, 0.0
        return (
            float(np.median([p.existing_san_count for p in changed])),
            float(np.median([p.ideal_san_count for p in changed])),
        )

    def sites_with_san_over(self, threshold: int) -> Tuple[int, int]:
        """(before, after) counts of sites above a SAN-size threshold
        -- the paper reports 230 -> 529 sites above 250 names."""
        before = sum(
            1 for plan in self.plans
            if plan.existing_san_count > threshold
        )
        after = sum(
            1 for plan in self.plans if plan.ideal_san_count > threshold
        )
        return before, after

    def largest_ideal_san(self) -> int:
        return max(
            (plan.ideal_san_count for plan in self.plans), default=0
        )

    def figure5_series(self) -> Dict[str, List[int]]:
        """Sites ranked by existing SAN size (descending), with the
        matching change counts and ideal sizes -- Figure 5's series."""
        ordered = sorted(
            self.plans, key=lambda plan: plan.existing_san_count,
            reverse=True,
        )
        return {
            "existing": [plan.existing_san_count for plan in ordered],
            "changes": [plan.change_count for plan in ordered],
            "ideal": sorted(
                (plan.ideal_san_count for plan in self.plans),
                reverse=True,
            ),
        }


def plan_certificates(
    world: SyntheticWorld,
    successful_domains: Optional[Sequence[str]] = None,
) -> CertificatePlan:
    """Build the §4.3 plan for every (optionally: successfully
    crawled) site in the world."""
    resolve_asn = hostname_asn_resolver(world)
    wanted = set(successful_domains) if successful_domains is not None \
        else None
    plans: List[SitePlan] = []
    for hosted in world.sites:
        record = hosted.record
        if wanted is not None and record.entry.domain not in wanted:
            continue
        root_asn = resolve_asn(record.root_hostname)
        coalescable: List[str] = []
        additions: List[str] = []
        for hostname in record.page.hostnames():
            if hostname == record.root_hostname:
                continue
            if root_asn is None or resolve_asn(hostname) != root_asn:
                continue
            coalescable.append(hostname)
            if not hosted.certificate.covers(hostname):
                additions.append(hostname)
        plans.append(
            SitePlan(
                hosted=hosted,
                root_asn=root_asn,
                coalescable=tuple(coalescable),
                additions=tuple(additions),
            )
        )
    return CertificatePlan(plans=plans)


def san_distribution_table(
    plan: CertificatePlan, top: int = 10
) -> List[Tuple[int, int, int, int, float, int]]:
    """Table 8: SAN-size values ranked by how many certificates have
    them, measured vs ideal.

    Rows are ``(rank, measured_value, measured_count, ideal_value,
    ideal_count, pct_change, rank_change)`` where ``pct_change``
    compares the ideal value's certificate count to the same value's
    measured count, and ``rank_change`` is how many rank positions the
    ideal value moved from the measured ranking (0 = unchanged).
    """
    measured = Counter(plan.existing_san_counts())
    ideal = Counter(plan.ideal_san_counts())
    measured_ranked = [value for value, _ in measured.most_common()]
    rows = []
    for rank, ((m_value, m_count), (i_value, i_count)) in enumerate(
        zip(measured.most_common(top), ideal.most_common(top)), start=1
    ):
        baseline = measured.get(i_value, 0)
        pct = ((i_count - baseline) / baseline * 100.0) if baseline else \
            float("inf")
        old_rank = (
            measured_ranked.index(i_value) + 1
            if i_value in measured_ranked else 0
        )
        rank_change = (old_rank - rank) if old_rank else 0
        rows.append((rank, m_value, m_count, i_value, i_count, pct,
                     rank_change))
    return rows


def provider_addition_table(
    world: SyntheticWorld,
    plan: CertificatePlan,
    top_providers: int = 3,
    top_hostnames: int = 5,
) -> List[Tuple[str, int, float, List[Tuple[str, int, float]]]]:
    """Table 9: per top hosting provider, the most-used same-provider
    hostnames its sites would add to their certificates.

    Rows are ``(provider, site_count, site_share, [(hostname,
    using_sites, share_of_provider_sites), ...])``.
    """
    by_provider: Dict[str, List[SitePlan]] = {}
    for site_plan in plan.plans:
        provider = site_plan.hosted.record.provider
        if provider:
            by_provider.setdefault(provider, []).append(site_plan)

    ranked = sorted(
        by_provider.items(), key=lambda item: len(item[1]), reverse=True
    )[:top_providers]

    total_sites = plan.site_count
    rows = []
    for provider, site_plans in ranked:
        usage: Counter = Counter()
        for site_plan in site_plans:
            for hostname in set(site_plan.coalescable):
                own = site_plan.hosted.record.own_hostnames()
                if hostname not in own:
                    usage[hostname] += 1
        host_rows = [
            (hostname, count, count / len(site_plans))
            for hostname, count in usage.most_common(top_hostnames)
        ]
        rows.append(
            (provider, len(site_plans), len(site_plans) / total_sites,
             host_rows)
        )
    return rows
