"""Service groupers: what counts as "the same service"?

The model's core assumption (§4.1): "every server in each ASN can
authoritatively serve all content for that ASN", so the ASN is the
coalescing unit for the ORIGIN-frame best case.  IP-based coalescing
uses the exact server address instead; the deployment-only prediction
(Figure 9's dotted line) lets a *single* CDN's ASN coalesce while every
other request keeps its measured behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.web.har import HarEntry

#: Maps an entry to its service key; ``None`` = never coalescable.
ServiceGrouper = Callable[[HarEntry], Optional[str]]


def by_asn(entry: HarEntry) -> Optional[str]:
    """ORIGIN-frame best case: one service per origin AS."""
    if not entry.asn:
        return None
    return f"asn:{entry.asn}"


def by_ip(entry: HarEntry) -> Optional[str]:
    """IP-based coalescing: one service per server address.

    This is the §4.2 'missed opportunities' model -- no certificate or
    server changes assumed, so only connections that already land on
    the same address can merge.
    """
    if not entry.server_ip:
        return None
    return f"ip:{entry.server_ip}"


def by_hostname(entry: HarEntry) -> Optional[str]:
    """Degenerate grouper: the status quo (per-hostname connections)."""
    if not entry.hostname:
        return None
    return f"host:{entry.hostname}"


def by_single_asn(asn: int) -> ServiceGrouper:
    """Only ``asn`` coalesces; everything else keeps its measured
    behaviour (no new merging).

    Models deploying ORIGIN at one CDN (§6.1's CDN-only prediction).
    """

    def grouper(entry: HarEntry) -> Optional[str]:
        if entry.asn == asn:
            return f"asn:{asn}"
        return None

    return grouper
