"""Execution backends: how shard work actually runs.

The workload decides *what* to simulate; the backend decides *how
many* worker processes execute it and whether the run is observed by
a profiler.  Results never depend on the backend -- shard merging is
order-preserving, so ``jobs=8`` is byte-identical to ``jobs=1``.
"""

from __future__ import annotations

from contextlib import contextmanager


class ExecutionBackend:
    """Plain serial-or-sharded execution with ``jobs`` workers."""

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = jobs

    @contextmanager
    def wrap(self):
        """Context the workload's simulation runs inside (profiling
        hooks live here; the base backend observes nothing)."""
        yield None


class ProfiledBackend(ExecutionBackend):
    """In-process execution under ``cProfile``.

    Always ``jobs=1``: cProfile only observes the calling process, so
    worker fan-out would hide exactly the code a profile run exists
    to expose.
    """

    def __init__(self) -> None:
        super().__init__(jobs=1)
        import cProfile

        self.profiler = cProfile.Profile()

    @contextmanager
    def wrap(self):
        self.profiler.enable()
        try:
            yield self.profiler
        finally:
            self.profiler.disable()

    def stats(self):
        """The collected ``pstats.Stats`` (after :meth:`wrap` exits)."""
        import pstats

        return pstats.Stats(self.profiler)
