"""The unified run pipeline behind every simulation command.

``repro.runtime`` composes a run from four declarative parts --

* a **workload** (:class:`CrawlWorkload` / :class:`TrafficWorkload`):
  the experiment definition and how to execute it,
* :class:`InstrumentationOptions`: what to record (trace, metrics,
  audit, ledger, SLO gates),
* an **execution backend** (:class:`ExecutionBackend` /
  :class:`ProfiledBackend`): how many workers, profiled or not,
* ordered **sinks** (:mod:`repro.runtime.sinks`): where artifacts and
  diagnostics go

-- and :class:`RunPipeline` runs them.  The CLI modules under
:mod:`repro.cli` only parse arguments and render output; scenario
files (:mod:`repro.runtime.scenario`) drive the same pipeline
declaratively via ``repro run``.
"""

from repro.runtime.backend import ExecutionBackend, ProfiledBackend
from repro.runtime.console import diag, shard_progress
from repro.runtime.instrument import (
    counter_total,
    export_trace,
    finish_ledger,
    ledger_watch,
)
from repro.runtime.options import InstrumentationOptions
from repro.runtime.pipeline import RunPipeline
from repro.runtime.scenario import (
    Scenario,
    ScenarioError,
    load_scenario,
    parse_scenario,
)
from repro.runtime.workloads import (
    ChaosWorkload,
    CrawlWorkload,
    RunOutcome,
    TrafficWorkload,
)

__all__ = [
    "ChaosWorkload",
    "CrawlWorkload",
    "ExecutionBackend",
    "InstrumentationOptions",
    "ProfiledBackend",
    "RunOutcome",
    "RunPipeline",
    "Scenario",
    "ScenarioError",
    "TrafficWorkload",
    "counter_total",
    "diag",
    "export_trace",
    "finish_ledger",
    "ledger_watch",
    "load_scenario",
    "parse_scenario",
    "shard_progress",
]
