"""Declarative scenario files for ``repro run``.

A scenario file is the repo-wide TOML subset (see
:mod:`repro.obs.tomlsubset`) describing one pipeline run::

    [run]
    command = "traffic"      # crawl | model | privacy | explain |
                             # traffic | profile | deploy

    [traffic]                # workload knobs (CLI flag names,
    users = 200              # underscores for dashes)
    sites = 40
    shards = 2
    scenario = "origin"

    [instrumentation]
    ledger = "runs/"
    slo = "slo.toml"

    [sinks]
    out = "traffic.jsonl"    # --out / --audit / --trace / metrics

    [render]
    tables = "1,2,3"         # crawl rendering knobs

Keys map 1:1 onto the command's CLI flags and are validated by the
same argparse parsers, so a scenario run is byte-identical to the
equivalent command line.  ``jobs`` is deliberately rejected: worker
count is an execution knob (it never changes results) and belongs to
``repro run --jobs``, not the experiment definition.

Anything outside the subset -- unknown sections, array tables, a
missing ``[run]`` -- is a loud :class:`ScenarioError`; ``repro run``
turns it into exit 2 with nothing executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.obs.tomlsubset import parse_toml_subset


class ScenarioError(ValueError):
    """The scenario file could not be parsed or validated."""


#: Commands a scenario may run (everything that takes only flags).
SCENARIO_COMMANDS = (
    "crawl", "model", "privacy", "explain", "traffic", "profile",
    "deploy", "chaos",
)

#: Accepted sections.  All non-``run`` sections flatten into flags;
#: the split is documentation (what part of the run a knob shapes),
#: not semantics.
SCENARIO_SECTIONS = (
    "run", "dataset", "traffic", "chaos", "instrumentation", "sinks",
    "render",
)

#: Execution knobs that never change results and therefore do not
#: belong in a scenario file.
EXECUTION_KEYS = frozenset({"jobs"})


@dataclass(frozen=True)
class Scenario:
    """One resolved scenario: a command plus its rendered flags."""

    command: str
    flags: Tuple[str, ...]
    source: str

    @property
    def argv(self) -> List[str]:
        """The full sub-command argv (``repro`` excluded)."""
        return [self.command, *self.flags]


def _render_flags(items, where: str) -> List[str]:
    flags: List[str] = []
    for key, value in items.items():
        if key in EXECUTION_KEYS:
            raise ScenarioError(
                f"{where}: {key!r} is an execution knob, not part of "
                f"the scenario; pass --{key} to 'repro run' instead"
            )
        flag = "--" + key.replace("_", "-")
        if isinstance(value, bool):
            if value:
                flags.append(flag)
        else:
            flags.extend([flag, str(value)])
    return flags


def parse_scenario(text: str, source: str = "<scenario>") -> Scenario:
    """Parse a scenario file into a :class:`Scenario`."""
    tables = parse_toml_subset(text, source=source,
                               error=ScenarioError)
    command = None
    flags: List[str] = []
    for table in tables:
        if table.array:
            raise ScenarioError(
                f"{table.where}: scenario files use plain [section] "
                f"tables, got [[{table.name}]]"
            )
        if table.name not in SCENARIO_SECTIONS:
            raise ScenarioError(
                f"{table.where}: unknown section [{table.name}]; "
                f"expected one of "
                f"{', '.join(f'[{s}]' for s in SCENARIO_SECTIONS)}"
            )
        if table.name == "run":
            unknown = set(table.items) - {"command"}
            if unknown:
                raise ScenarioError(
                    f"{table.where}: unknown [run] key(s) "
                    f"{sorted(unknown)}; only 'command' is accepted"
                )
            command = table.items.get("command")
            if not isinstance(command, str):
                raise ScenarioError(
                    f"{table.where}: [run] needs a quoted "
                    f"'command = ...'"
                )
            if command not in SCENARIO_COMMANDS:
                raise ScenarioError(
                    f"{table.where}: unknown command {command!r}; "
                    f"expected one of {', '.join(SCENARIO_COMMANDS)}"
                )
            continue
        flags.extend(_render_flags(table.items, table.where))
    if command is None:
        raise ScenarioError(
            f"{source}: missing [run] section with 'command = ...'"
        )
    return Scenario(command=command, flags=tuple(flags),
                    source=source)


def load_scenario(path) -> Scenario:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ScenarioError(f"cannot read {path}: {error}") from error
    return parse_scenario(text, source=str(path))
