"""Pluggable run sinks.

A sink consumes a finished :class:`~repro.runtime.workloads.RunOutcome`
and persists or renders one artifact: crawl cache entry, trace file,
metrics summary, audit JSONL, traffic aggregate, ledger record, or
the command's stdout tables.  Workloads assemble an *ordered* sink
list from the instrumentation options; the order is part of the CLI's
output contract (diagnostics interleave with stdout deterministically)
and must not be shuffled.
"""

from __future__ import annotations

from repro.runtime.console import diag
from repro.runtime.instrument import export_trace, finish_ledger


class CacheStoreSink:
    """Live crawls bypass cache *reads* but still store the merged
    archives so subsequent untraced runs hit the cache."""

    def __init__(self, cache) -> None:
        self.cache = cache

    def __call__(self, outcome) -> None:
        if self.cache is None:
            diag("cache: disabled")
            return
        self.cache.store(outcome.fingerprint, outcome.result)
        diag(f"cache: bypassed for tracing, stored "
             f"{self.cache.path_for(outcome.fingerprint)}")


class CacheStatusSink:
    """Cached crawls only report how the lookup went (the read/store
    already happened inside ``crawl_cached``)."""

    def __init__(self, cache) -> None:
        self.cache = cache

    def __call__(self, outcome) -> None:
        if self.cache is None:
            diag("cache: disabled")
            return
        status = "hit" if outcome.cache_hit else "miss, stored"
        diag(f"cache: {status} "
             f"{self.cache.path_for(outcome.fingerprint)}")


class TraceSink:
    """Span artifact + optional metrics summary (``--trace`` /
    ``--metrics``); a no-op when neither was requested."""

    def __init__(self, options) -> None:
        self.options = options

    def __call__(self, outcome) -> None:
        export_trace(outcome.trace, self.options.trace_out,
                     self.options.metrics)


class AuditSink:
    """Canonical audit JSONL (``--audit OUT``)."""

    def __init__(self, out) -> None:
        self.out = out

    def __call__(self, outcome) -> None:
        from repro.audit.log import events_to_jsonl

        events = outcome.trace.audit
        with open(self.out, "w", encoding="utf-8") as handle:
            handle.write(events_to_jsonl(events))
        diag(f"audit: {len(events)} events -> {self.out} "
             "(JSONL)")


class AggregateSink:
    """Traffic aggregate JSONL (``--out OUT``), byte-identical
    across ``--jobs``."""

    def __init__(self, out) -> None:
        self.out = out

    def __call__(self, outcome) -> None:
        with open(self.out, "w", encoding="utf-8") as handle:
            handle.write(outcome.result.to_jsonl())
        diag(f"aggregate: -> {self.out} (canonical JSONL)")


class ChaosReportSink:
    """Canonical blast-radius report JSONL (``chaos --out OUT``),
    byte-identical across ``--jobs``."""

    def __init__(self, out) -> None:
        self.out = out

    def __call__(self, outcome) -> None:
        report = outcome.extras["report"]
        with open(self.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_jsonl())
        diag(f"report: -> {self.out} (canonical JSONL)")


class LedgerSink:
    """Append the run record (phases, headline, SLO verdicts)."""

    def __init__(self, ledger_dir, rules, workload) -> None:
        self.ledger_dir = ledger_dir
        self.rules = rules
        self.workload = workload

    def __call__(self, outcome) -> None:
        record = self.workload.build_record(outcome, self.rules)
        finish_ledger(self.ledger_dir, record)


class RenderSink:
    """The command's stdout rendering, positioned in the sink order
    exactly where the legacy CLI printed it."""

    def __init__(self, render) -> None:
        self.render = render

    def __call__(self, outcome) -> None:
        self.render(outcome)
