"""Instrumentation glue shared by every pipeline run.

The heartbeat watcher, trace export, and ledger finalization used to
be private helpers of the CLI monolith; they are workload-independent
(both the crawl and the traffic simulation feed them) and live here
so pipelines and sinks can share one copy.
"""

from __future__ import annotations

from repro.runtime.console import diag


def counter_total(registry, name: str):
    """Sum of one counter series across all label sets."""
    return sum(
        metric.value for metric in registry.metrics()
        if metric.kind == "counter" and metric.name == name
    )


def ledger_watch(hb, rules, unit: str = "pages"):
    """Build the heartbeat callback for ``crawl_traced``/
    ``run_scenario``: after every shard merge it reads the merged-
    so-far metrics and redraws the status line (work done, rate, open
    connection count, SLO burn)."""
    from repro.obs.ledger import phase_docs_from_registry
    from repro.obs.slo import slo_burn

    def watch(done: int, total: int, crawl_trace) -> None:
        if not hb.enabled:
            return
        docs = phase_docs_from_registry(crawl_trace.metrics)
        pages = sum(doc["count"] for doc in docs
                    if doc["name"] == "phase.page")
        conns = counter_total(crawl_trace.metrics,
                              "pool.connections_opened")
        elapsed = hb.elapsed()
        fields = {
            "shards": f"{done}/{total}",
            unit: pages,
            f"{unit}/s": f"{pages / elapsed:.1f}" if elapsed > 0
            else "0.0",
            "conns": conns,
        }
        if rules:
            failing, evaluated = slo_burn(rules, docs)
            fields["slo"] = f"{evaluated - failing}/{evaluated} ok"
        hb.tick(fields, force=done == total)

    return watch


def export_trace(trace, trace_out, want_metrics: bool) -> None:
    """Write the requested trace artifact(s); summary goes to stdout."""
    if trace_out:
        if str(trace_out).endswith(".jsonl"):
            with open(trace_out, "w", encoding="utf-8") as handle:
                handle.write(trace.to_jsonl())
            diag(f"trace: {len(trace.spans)} spans -> {trace_out} "
                 "(span JSONL)")
        else:
            count = trace.write_chrome_trace(trace_out)
            diag(f"trace: {count} spans -> {trace_out} "
                 "(Chrome trace_event; load in Perfetto or "
                 "about:tracing)")
    if want_metrics:
        print(trace.metrics_summary())
        print()


def finish_ledger(ledger_dir, record) -> None:
    """Write the record and print its ledger/SLO diagnostics."""
    from repro.obs.ledger import write_record

    path = write_record(ledger_dir, record)
    diag(f"ledger: run {record.run_id} -> {path}")
    failing = [
        doc["name"] for doc in record.slo
        if doc.get("measured") is not None and not doc.get("ok")
    ]
    if failing:
        diag(f"slo: FAIL {', '.join(failing)}")
    elif record.slo:
        diag(f"slo: {len(record.slo)} gate(s) pass")
