"""Workloads: what a pipeline run simulates.

A workload owns the experiment definition (config + shard layout --
the part that keys caches and run fingerprints), knows how to execute
itself on an :class:`~repro.runtime.backend.ExecutionBackend`, and
assembles the ordered sink list for its outcome.  Two workloads cover
every pipeline command:

* :class:`CrawlWorkload` -- the shared crawl behind ``crawl``,
  ``model``, ``privacy``, ``explain``, and ``profile``; cached unless
  instrumentation forces the live path.
* :class:`TrafficWorkload` -- the population-scale traffic
  simulation behind ``traffic``; always live (no cache exists).
* :class:`ChaosWorkload` -- the fault-injected crawl behind
  ``chaos``; always live (the blast-radius report and audit stream
  only exist when the simulation actually runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.console import shard_progress
from repro.runtime.instrument import ledger_watch
from repro.runtime.sinks import (
    AggregateSink,
    AuditSink,
    CacheStatusSink,
    CacheStoreSink,
    ChaosReportSink,
    LedgerSink,
    RenderSink,
    TraceSink,
)


@dataclass
class RunOutcome:
    """What a workload execution produced.

    ``trace`` is the merged :class:`~repro.telemetry.CrawlTrace` when
    the run was live (instrumented) and ``None`` on the cached path.
    """

    config: object
    shard_count: int
    result: object
    trace: object = None
    cache_hit: bool = False
    fingerprint: str = ""
    extras: dict = field(default_factory=dict)


class CrawlWorkload:
    """The shared crawl pipeline: shards + cache + telemetry."""

    unit = "pages"
    always_live = False

    def __init__(self, config, params, shards: int = 0,
                 cache_dir=None, no_cache: bool = False,
                 refresh: bool = False, command: str = "crawl") -> None:
        from repro.dataset.cache import CrawlCache
        from repro.dataset.shard import plan_shards

        self.config = config
        self.params = params
        self.shard_count = len(plan_shards(config, shards or None))
        self.cache = None if no_cache else CrawlCache(cache_dir)
        self.refresh = refresh
        self.command = command

    def fingerprint(self) -> str:
        """The content-addressed cache key doubles as the run
        fingerprint (config + params + shard layout)."""
        from repro.dataset.cache import cache_key

        return cache_key(self.config, self.params, self.shard_count)

    def _crawler(self, jobs: int):
        from repro.dataset.shard import ParallelCrawler

        return ParallelCrawler(
            self.config, params=self.params,
            shard_count=self.shard_count, jobs=jobs,
        )

    def execute_live(self, backend, options, rules) -> RunOutcome:
        """Instrumented crawl: heartbeat + spans/audit/metrics.

        Bypasses cache reads -- a cache hit would skip the simulation
        and produce no spans, audit events, or phase histograms.
        """
        from repro.obs.heartbeat import Heartbeat

        crawler = self._crawler(backend.jobs)
        hb = Heartbeat()
        try:
            with backend.wrap():
                result, trace = crawler.crawl_traced(
                    progress=None if hb.enabled else shard_progress,
                    trace=options.want_trace,
                    audit=options.want_audit,
                    watch=ledger_watch(hb, rules, unit=self.unit),
                )
        finally:
            hb.close()
        return RunOutcome(
            config=self.config, shard_count=self.shard_count,
            result=result, trace=trace,
            fingerprint=self.fingerprint(),
        )

    def execute_cached(self, backend) -> RunOutcome:
        from repro.dataset.cache import crawl_cached

        result, hit = crawl_cached(
            self.config,
            params=self.params,
            shard_count=self.shard_count,
            jobs=backend.jobs,
            cache=self.cache,
            refresh=self.refresh,
            progress=shard_progress,
        )
        return RunOutcome(
            config=self.config, shard_count=self.shard_count,
            result=result, trace=None, cache_hit=hit,
            fingerprint=self.fingerprint(),
        )

    def execute_profiled(self, backend, options) -> RunOutcome:
        """In-process crawl for ``profile``: no heartbeat, no cache,
        traced only when a span artifact or ledger record needs the
        telemetry registry."""
        crawler = self._crawler(backend.jobs)
        with backend.wrap():
            if options.want_trace or options.ledger_dir:
                result, trace = crawler.crawl_traced(
                    trace=options.want_trace, audit=False
                )
            else:
                result, trace = crawler.crawl(), None
        return RunOutcome(
            config=self.config, shard_count=self.shard_count,
            result=result, trace=trace,
            fingerprint=self.fingerprint(),
        )

    def build_record(self, outcome, rules):
        from repro.obs.ledger import build_crawl_record

        return build_crawl_record(
            self.command, self.config, self.params,
            self.shard_count, outcome.result,
            outcome.trace.metrics, slo_rules=rules,
        )

    def sinks(self, options, rules, live: bool,
              render=None) -> List[object]:
        """Ordered sinks (the legacy diag/stdout interleaving):
        cache, trace+metrics, audit, ledger, then the command's
        rendering."""
        sinks: List[object] = []
        if live:
            sinks.append(CacheStoreSink(self.cache))
            sinks.append(TraceSink(options))
            if options.audit_out:
                sinks.append(AuditSink(options.audit_out))
            if options.ledger_dir:
                sinks.append(
                    LedgerSink(options.ledger_dir, rules, self))
        else:
            sinks.append(CacheStatusSink(self.cache))
        if render is not None:
            sinks.append(RenderSink(render))
        return sinks


class TrafficWorkload:
    """Population-scale traffic simulation with edge load
    accounting.  Always live; the aggregate is the result."""

    unit = "visits"
    always_live = True

    def __init__(self, scenario, shards: int = 0,
                 scenario_name: str = "baseline",
                 aggregate_out: Optional[str] = None) -> None:
        self.scenario = scenario
        self.shards = shards or None
        self.scenario_name = scenario_name
        self.aggregate_out = aggregate_out

    def planned_shards(self) -> int:
        from repro.traffic.scenario import plan_user_shards

        return len(plan_user_shards(self.scenario, self.shards))

    def execute_live(self, backend, options, rules) -> RunOutcome:
        from repro.obs.heartbeat import Heartbeat
        from repro.traffic import run_scenario

        hb = Heartbeat()
        try:
            with backend.wrap():
                aggregate, trace = run_scenario(
                    self.scenario, shard_count=self.shards,
                    jobs=backend.jobs,
                    audit=options.want_audit,
                    trace=options.want_trace,
                    progress=None if hb.enabled else shard_progress,
                    watch=ledger_watch(hb, rules, unit=self.unit),
                )
        finally:
            hb.close()
        return RunOutcome(
            config=self.scenario,
            shard_count=self.planned_shards(),
            result=aggregate, trace=trace,
        )

    def build_record(self, outcome, rules):
        from repro.obs.ledger import build_traffic_record

        return build_traffic_record(
            self.scenario, outcome.shard_count, outcome.result,
            outcome.trace.metrics, slo_rules=rules,
            scenario_name=self.scenario_name,
        )

    def sinks(self, options, rules, live: bool,
              render=None) -> List[object]:
        """Ordered sinks: trace+metrics, *then* the stdout summary
        and tables, then aggregate/audit/ledger artifacts -- the
        exact interleaving the traffic command always printed."""
        sinks: List[object] = [TraceSink(options)]
        if render is not None:
            sinks.append(RenderSink(render))
        if self.aggregate_out:
            sinks.append(AggregateSink(self.aggregate_out))
        if options.audit_out:
            sinks.append(AuditSink(options.audit_out))
        if options.ledger_dir:
            sinks.append(LedgerSink(options.ledger_dir, rules, self))
        return sinks


class ChaosWorkload:
    """A fault-injected crawl: the crawl pipeline plus an armed
    :class:`~repro.chaos.inject.FaultInjector` per shard and the
    shard-merged :class:`~repro.chaos.report.ChaosReport`.

    Always live and never cached: the schedule perturbs the
    simulation, so a cached (unfaulted) crawl would be the wrong
    result, and the report itself only exists on the live path.
    """

    unit = "pages"
    always_live = True

    def __init__(self, config, params, schedule, retry_policy,
                 shards: int = 0,
                 report_out: Optional[str] = None) -> None:
        from repro.dataset.shard import plan_shards

        self.config = config
        self.params = params
        self.schedule = schedule
        self.retry_policy = retry_policy
        self.shard_count = len(plan_shards(config, shards or None))
        self.report_out = report_out

    def fingerprint(self) -> str:
        """Crawl cache key extended with the schedule and retry
        policy: two chaos runs are "the same" only when the fault
        plan matches too."""
        import dataclasses

        from repro.dataset.cache import cache_key
        from repro.obs.ledger import canonical_fingerprint

        return canonical_fingerprint({
            "crawl": cache_key(self.config, self.params,
                               self.shard_count),
            "schedule": self.schedule.to_doc(),
            "retry": dataclasses.asdict(self.retry_policy),
        })

    def execute_live(self, backend, options, rules) -> RunOutcome:
        from repro.chaos.run import ChaosRunner
        from repro.obs.heartbeat import Heartbeat

        runner = ChaosRunner(
            self.config, params=self.params, schedule=self.schedule,
            retry_policy=self.retry_policy,
            shard_count=self.shard_count, jobs=backend.jobs,
        )
        hb = Heartbeat()
        try:
            with backend.wrap():
                result, trace, report = runner.run(
                    progress=None if hb.enabled else shard_progress,
                    trace=options.want_trace,
                    watch=ledger_watch(hb, rules, unit=self.unit),
                )
        finally:
            hb.close()
        return RunOutcome(
            config=self.config, shard_count=self.shard_count,
            result=result, trace=trace,
            fingerprint=self.fingerprint(),
            extras={"report": report},
        )

    def build_record(self, outcome, rules):
        from repro.obs.ledger import build_crawl_record

        record = build_crawl_record(
            "chaos", self.config, self.params,
            self.shard_count, outcome.result,
            outcome.trace.metrics, slo_rules=rules,
        )
        # Rekey onto the chaos fingerprint (schedule + retry policy
        # included) so an unchaosed crawl of the same dataset never
        # collides with a faulted one in the ledger.
        fingerprint = outcome.fingerprint or self.fingerprint()
        record.meta["fingerprint"] = fingerprint
        record.meta["run"] = f"chaos-{fingerprint[:12]}"
        record.meta["schedule"] = self.schedule.source
        report = outcome.extras.get("report")
        if report is not None:
            record.headline.update(
                connections_lost=report.connections_lost,
                coalesced_lost=report.coalesced_lost,
                hostnames_affected=report.hostnames_affected,
                mean_blast_radius=round(report.mean_blast_radius, 6),
                requests_retried=report.requests_retried,
                requests_exhausted=report.requests_exhausted,
            )
        return record

    def sinks(self, options, rules, live: bool,
              render=None) -> List[object]:
        """Ordered sinks: trace+metrics, the stdout report, then the
        report/audit/ledger artifacts (the traffic interleaving)."""
        sinks: List[object] = [TraceSink(options)]
        if render is not None:
            sinks.append(RenderSink(render))
        if self.report_out:
            sinks.append(ChaosReportSink(self.report_out))
        if options.audit_out:
            sinks.append(AuditSink(options.audit_out))
        if options.ledger_dir:
            sinks.append(LedgerSink(options.ledger_dir, rules, self))
        return sinks
