"""The unified run pipeline.

Every simulation command is the same five stages:

1. **configure** -- the workload fixes the experiment definition
   (dataset/scenario config + shard layout) and its fingerprint;
2. **gates** -- SLO rules load up front, so a malformed gate file
   aborts before any simulation (exit 2);
3. **execute** -- the workload runs on the execution backend, live
   (instrumented, cache-bypassing) or cached;
4. **sink** -- the ordered sink list persists artifacts and prints
   diagnostics;
5. **render** -- the command's stdout tables run as the final (or,
   for traffic, mid-order) sink.

The pipeline itself is workload-agnostic; byte-identity across
``--jobs`` comes from the workloads' order-preserving shard merges,
and output-identity with the legacy CLI comes from the workloads'
sink ordering.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.runtime.backend import ExecutionBackend
from repro.runtime.options import InstrumentationOptions
from repro.runtime.workloads import RunOutcome


class RunPipeline:
    """Compose workload + instrumentation + backend (+ render)."""

    def __init__(self, workload,
                 instrumentation: Optional[InstrumentationOptions]
                 = None,
                 backend: Optional[ExecutionBackend] = None,
                 render: Optional[Callable[[RunOutcome], None]]
                 = None) -> None:
        self.workload = workload
        self.instrumentation = (instrumentation
                                or InstrumentationOptions())
        self.backend = backend or ExecutionBackend()
        self.render = render

    def run(self) -> RunOutcome:
        options = self.instrumentation
        rules = options.load_rules()
        live = bool(self.workload.always_live or options.live)
        if live:
            outcome = self.workload.execute_live(
                self.backend, options, rules)
        else:
            outcome = self.workload.execute_cached(self.backend)
        for sink in self.workload.sinks(options, rules, live=live,
                                        render=self.render):
            sink(outcome)
        return outcome
