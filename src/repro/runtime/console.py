"""The CLI's stdout/stderr contract.

Tables and summaries are the *output* of a run and go to stdout;
everything about the run itself -- cache status, shard progress,
trace/audit/ledger destinations, SLO verdicts -- is a diagnostic and
goes to stderr.  Every pipeline stage and sink funnels through
:func:`diag` so the contract cannot drift per command.
"""

from __future__ import annotations

import sys


def diag(message: str) -> None:
    """Diagnostics (cache status, shard progress, trace notes) go to
    stderr so stdout stays clean, parseable table output."""
    print(message, file=sys.stderr)


def shard_progress(done: int, total: int) -> None:
    """The default per-shard progress callback (non-TTY runs)."""
    diag(f"shards: {done}/{total}")
