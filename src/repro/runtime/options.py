"""Declarative instrumentation options.

One frozen record replaces the per-command if-ladders the CLI used to
carry: each command states *what* it wants recorded (trace artifact,
metrics summary, audit log, ledger record, SLO gates) and the
pipeline derives *how* to run from it -- most importantly whether the
crawl must run live (cache reads would skip the simulation and
produce no spans, audit events, or phase histograms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.runtime.console import diag


@dataclass(frozen=True)
class InstrumentationOptions:
    """What a run should record, independent of any workload."""

    #: Trace artifact path (Chrome trace_event JSON, or span JSONL
    #: when it ends in ``.jsonl``).  ``None`` = no trace artifact.
    trace_out: Optional[str] = None
    #: Print the unified metrics summary to stdout after the run.
    metrics: bool = False
    #: Audit-log artifact path (canonical JSONL).  ``None`` = none.
    audit_out: Optional[str] = None
    #: Collect audit events even without ``audit_out`` (commands like
    #: ``explain`` consume the events directly).
    force_audit: bool = False
    #: Ledger directory to append this run's record to.
    ledger_dir: Optional[str] = None
    #: SLO gate file evaluated into the run record.
    slo_path: Optional[str] = None

    @classmethod
    def from_args(cls, args, force_audit: bool = False
                  ) -> "InstrumentationOptions":
        """Lift the shared ``--trace/--metrics/--audit/--ledger/--slo``
        argparse options; absent attributes mean "not requested"."""
        return cls(
            trace_out=getattr(args, "trace", None),
            metrics=getattr(args, "metrics", False),
            audit_out=getattr(args, "audit", None),
            force_audit=force_audit,
            ledger_dir=getattr(args, "ledger", None),
            slo_path=getattr(args, "slo", None),
        )

    @property
    def want_trace(self) -> bool:
        """Spans must be collected (artifact or metrics summary)."""
        return bool(self.trace_out) or self.metrics

    @property
    def want_audit(self) -> bool:
        return bool(self.audit_out) or self.force_audit

    @property
    def live(self) -> bool:
        """Any instrumentation forces the live (cache-bypassing)
        path: a cache hit would skip the simulation entirely."""
        return bool(self.want_trace or self.want_audit
                    or self.ledger_dir)

    def load_rules(self) -> List[object]:
        """Load the SLO gates, if any.

        A malformed SLO file aborts *before* any crawling (exit 2): a
        gate file that cannot be parsed must never let a run pass
        silently.
        """
        if not self.slo_path:
            return []
        from repro.obs.slo import SloError, load_slo

        try:
            return load_slo(self.slo_path)
        except SloError as error:
            diag(f"slo: {error}")
            raise SystemExit(2)
