"""Answer-ordering (load-balancing) policies.

DNS operators "have long been able to return any or all addresses from
a set for load-balancing or other purposes" (paper §2.3, citing RFC
1794).  The policy chosen here is what creates -- or destroys -- the
IP-set overlap that Chromium and Firefox use for coalescing decisions,
so it is a first-class, swappable component.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class AnswerPolicy:
    """Base class: reorder/trim the address list for one answer."""

    def order(self, name: str, addresses: List[str]) -> List[str]:
        raise NotImplementedError


class FixedOrderPolicy(AnswerPolicy):
    """Return addresses exactly as published in the zone."""

    def order(self, name: str, addresses: List[str]) -> List[str]:
        return list(addresses)


class RoundRobinPolicy(AnswerPolicy):
    """Rotate the full set by one position per query, per name.

    Classic BIND-style round robin: every client sees all addresses but
    in a rotating order, so consecutive queries overlap completely --
    the friendliest case for Firefox-style transitive coalescing.
    """

    def __init__(self) -> None:
        self._offsets: Dict[str, int] = {}

    def order(self, name: str, addresses: List[str]) -> List[str]:
        if not addresses:
            return []
        offset = self._offsets.get(name, 0)
        self._offsets[name] = (offset + 1) % len(addresses)
        return addresses[offset:] + addresses[:offset]


class RandomRotationPolicy(AnswerPolicy):
    """Return a random subset of size ``answer_size`` in random order.

    Models large-CDN behaviour where each query draws a few addresses
    from a big pool.  With ``answer_size`` < pool size, two queries may
    share no address at all -- the case where Chromium's strict
    connected-set matching loses coalescing opportunities that
    Firefox's available-set transitivity can still find.
    """

    def __init__(
        self, rng: np.random.Generator, answer_size: Optional[int] = None
    ) -> None:
        self._rng = rng
        self._answer_size = answer_size

    def order(self, name: str, addresses: List[str]) -> List[str]:
        if not addresses:
            return []
        size = len(addresses)
        if self._answer_size is not None:
            size = min(self._answer_size, size)
        picked = self._rng.choice(len(addresses), size=size, replace=False)
        return [addresses[i] for i in picked]


class SingleAddressPolicy(AnswerPolicy):
    """Always return exactly one (the first) address.

    Models anycast front-ends -- and the deployment configuration in
    paper §5.2, where one dedicated address served every experiment
    domain so that IP-based coalescing was guaranteed to match.
    """

    def order(self, name: str, addresses: List[str]) -> List[str]:
        return list(addresses[:1])
