"""Authoritative server and caching stub resolver.

The :class:`AuthoritativeServer` aggregates zones and answers queries
synchronously (zone data is in-process).  The :class:`CachingResolver`
is what browsers use: it adds query latency on the simulated event
loop, a TTL cache keyed on the simulated clock, CNAME chasing, and
per-query accounting used by the privacy analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dnssim.loadbalance import AnswerPolicy, FixedOrderPolicy
from repro.dnssim.records import (
    CacheEntry,
    DnsAnswer,
    RecordType,
    normalize_name,
)
from repro.dnssim.zone import Zone
from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.netsim.events import EventLoop
from repro.obs.phases import NULL_PHASES
from repro.telemetry import NULL_TRACER, RegistryStats


class NxDomain(Exception):
    """The queried name does not exist in any known zone."""


#: Maximum CNAME chain length before the resolver gives up.
MAX_CNAME_DEPTH = 8

#: Default median DNS query latency in ms; matches typical recursive
#: resolver performance for cache-miss lookups from a home network.
DEFAULT_QUERY_LATENCY_MS = 20.0


class ResolverStats(RegistryStats):
    """Counters consumed by the privacy analysis (paper §6.2); backed
    by the unified metrics registry."""

    _prefix = "dns."
    _counters = (
        "queries",
        "cache_hits",
        "nxdomain",
        "plaintext_queries",
        "encrypted_queries",
    )

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0


class AuthoritativeServer:
    """All authoritative zone data reachable by the resolver."""

    def __init__(self, answer_policy: Optional[AnswerPolicy] = None) -> None:
        self._zones: List[Zone] = []
        self._by_origin: Dict[str, Zone] = {}
        self._policy = answer_policy or FixedOrderPolicy()

    @property
    def answer_policy(self) -> AnswerPolicy:
        return self._policy

    @answer_policy.setter
    def answer_policy(self, policy: AnswerPolicy) -> None:
        self._policy = policy

    def add_zone(self, zone: Zone) -> Zone:
        if zone.origin in self._by_origin:
            raise ValueError(f"zone {zone.origin!r} already registered")
        self._zones.append(zone)
        self._by_origin[zone.origin] = zone
        return zone

    def zone_for(self, name: str) -> Optional[Zone]:
        """Longest-suffix matching zone for ``name``.

        Indexed by origin, walking the name's suffixes from most to
        least specific (O(labels), not O(zones)).
        """
        name = normalize_name(name)
        suffix = name
        while suffix:
            zone = self._by_origin.get(suffix)
            if zone is not None:
                return zone
            if "." not in suffix:
                return None
            suffix = suffix.split(".", 1)[1]
        return None

    def query(self, name: str) -> Tuple[List[str], float, Tuple[str, ...]]:
        """Resolve ``name`` to (addresses, min_ttl, cname_chain).

        Follows CNAME chains across zones; raises :class:`NxDomain` when
        no zone has data for the name.
        """
        chain: List[str] = []
        current = normalize_name(name)
        for _ in range(MAX_CNAME_DEPTH):
            zone = self.zone_for(current)
            if zone is None:
                raise NxDomain(current)
            records = zone.lookup(current, RecordType.A)
            if not records:
                raise NxDomain(current)
            if records[0].rtype is RecordType.CNAME:
                chain.append(records[0].value)
                current = records[0].value
                continue
            addresses = self._policy.order(
                current, [r.value for r in records]
            )
            min_ttl = min(r.ttl for r in records)
            return addresses, min_ttl, tuple(chain)
        raise NxDomain(f"CNAME chain too long resolving {name}")

    def query_https(self, name: str) -> Tuple[str, ...]:
        """ALPN list from the name's HTTPS/SVCB record, following
        CNAMEs like :meth:`query`; empty when no record exists."""
        current = normalize_name(name)
        for _ in range(MAX_CNAME_DEPTH):
            zone = self.zone_for(current)
            if zone is None:
                return ()
            records = zone.lookup(current, RecordType.HTTPS)
            if not records:
                return ()
            if records[0].rtype is RecordType.CNAME:
                current = records[0].value
                continue
            return tuple(
                p for p in records[0].value.split(",") if p
            )
        return ()


class CachingResolver:
    """A stub resolver with TTL cache over the simulated event loop."""

    def __init__(
        self,
        loop: EventLoop,
        authority: AuthoritativeServer,
        rng: Optional[np.random.Generator] = None,
        median_latency_ms: float = DEFAULT_QUERY_LATENCY_MS,
        latency_sigma: float = 0.4,
        encrypted_transport: bool = False,
    ) -> None:
        self._loop = loop
        self._authority = authority
        self._rng = rng
        self._median_latency = median_latency_ms
        self._latency_sigma = latency_sigma
        self.encrypted_transport = encrypted_transport
        #: When True, wire queries also fetch the name's HTTPS/SVCB
        #: record (piggybacked: resolvers issue A and HTTPS queries in
        #: parallel, so no extra latency is modelled).  Off by default
        #: so pre-h3 crawls resolve exactly as before.
        self.query_https_records = False
        self._cache: Dict[str, CacheEntry] = {}
        #: In-flight queries: name -> callbacks awaiting the answer.
        #: Browsers coalesce concurrent lookups for the same name, so a
        #: second request while one is outstanding joins it rather than
        #: issuing another wire query.
        self._in_flight: Dict[str, List[Callable[[DnsAnswer], None]]] = {}
        self.stats = ResolverStats()
        #: Span tracer; assign a live one to trace query/cache-hit
        #: spans on the simulated clock (see :mod:`repro.telemetry`).
        self.tracer = NULL_TRACER
        #: Decision-audit log; assign a live one to record how each
        #: query was answered (see :mod:`repro.audit`).
        self.audit = NULL_AUDIT
        #: Phase-latency recorder (run ledger); a live one observes
        #: every wire query's latency into the ``phase.dns`` histogram
        #: (cache hits and joined lookups cost no wire wait).
        self.phases = NULL_PHASES

    # -- latency -----------------------------------------------------------

    def _draw_latency(self) -> float:
        """Lognormal latency around the configured median.

        A lognormal with sigma 0.4 around a 20ms median gives the
        long-tailed profile measured for real recursive resolution.
        """
        if self._rng is None or self._latency_sigma <= 0:
            return self._median_latency
        return float(
            self._median_latency
            * np.exp(self._rng.normal(0.0, self._latency_sigma))
        )

    # -- cache -------------------------------------------------------------

    def flush_cache(self) -> None:
        """Drop every cached answer (new browser session semantics)."""
        self._cache.clear()

    def stale_answer(self, name: str) -> Optional[DnsAnswer]:
        """A copy of an *expired* cached answer, if one is still around.

        Supports the chaos ``dns_stale`` fault: a resolver serving a
        stale record past its TTL (misbehaving caches do this in the
        wild, and coalescing decisions made on stale addresses are
        exactly the hazard the paper's §4 address-matching rules worry
        about).  Never touches the RNG and never evicts, so probing
        for staleness cannot perturb an unfaulted run.
        """
        entry = self._cache.get(normalize_name(name))
        if entry is None or entry.expires_at > self._loop.now():
            return None
        entry.hits += 1
        return DnsAnswer(
            name=entry.answer.name,
            addresses=list(entry.answer.addresses),
            ttl=0.0,
            cname_chain=entry.answer.cname_chain,
            from_cache=True,
            query_time_ms=0.0,
            encrypted_transport=entry.answer.encrypted_transport,
            https_alpn=entry.answer.https_alpn,
        )

    def _cache_get(self, name: str) -> Optional[DnsAnswer]:
        entry = self._cache.get(name)
        if entry is None:
            return None
        if entry.expires_at <= self._loop.now():
            del self._cache[name]
            return None
        entry.hits += 1
        answer = DnsAnswer(
            name=entry.answer.name,
            addresses=list(entry.answer.addresses),
            ttl=entry.answer.ttl,
            cname_chain=entry.answer.cname_chain,
            from_cache=True,
            query_time_ms=0.0,
            encrypted_transport=entry.answer.encrypted_transport,
            https_alpn=entry.answer.https_alpn,
        )
        return answer

    # -- resolution ----------------------------------------------------------

    def resolve(
        self,
        name: str,
        callback: Callable[[DnsAnswer], None],
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Resolve asynchronously; ``callback`` gets the answer.

        Cache hits complete on the next loop turn with zero latency;
        misses complete after a drawn query latency.  Failures go to
        ``on_error`` (or are delivered as an empty answer when no error
        handler is given, which is how browsers experience NXDOMAIN).
        """
        name = normalize_name(name)
        self.stats.queries += 1
        tracer = self.tracer
        span = tracer.begin("dns.query", category="dns", qname=name) \
            if tracer.enabled else None
        cached = self._cache_get(name)
        if cached is not None:
            self.stats.cache_hits += 1
            if span is not None:
                tracer.end(span, cache_hit=True, wire=False,
                           addresses=len(cached.addresses))
            if self.audit.enabled:
                self.audit.record("dns", ReasonCode.DNS_CACHE_HIT,
                                  hostname=name)
            self._loop.schedule(0.0, lambda: callback(cached))
            return

        waiters = self._in_flight.get(name)
        if waiters is not None:
            # Join the outstanding query; the joiner is served "from
            # cache" (it costs no additional wire query of its own).
            def joined(answer: DnsAnswer) -> None:
                if span is not None:
                    tracer.end(span, cache_hit=True, wire=False,
                               joined=True,
                               addresses=len(answer.addresses))
                callback(DnsAnswer(
                    name=answer.name,
                    addresses=list(answer.addresses),
                    ttl=answer.ttl,
                    cname_chain=answer.cname_chain,
                    from_cache=True,
                    query_time_ms=0.0,
                    encrypted_transport=answer.encrypted_transport,
                    https_alpn=answer.https_alpn,
                ))

            if self.audit.enabled:
                self.audit.record("dns",
                                  ReasonCode.DNS_JOINED_IN_FLIGHT,
                                  hostname=name)
            waiters.append(joined)
            return
        self._in_flight[name] = []

        if self.encrypted_transport:
            self.stats.encrypted_queries += 1
        else:
            self.stats.plaintext_queries += 1
        if self.audit.enabled:
            self.audit.record("dns", ReasonCode.DNS_WIRE_QUERY,
                              hostname=name)
        latency = self._draw_latency()

        def complete() -> None:
            waiting = self._in_flight.pop(name, [])
            if self.phases.enabled:
                self.phases.observe("dns", latency)
            try:
                addresses, ttl, chain = self._authority.query(name)
            except NxDomain as error:
                self.stats.nxdomain += 1
                if span is not None:
                    tracer.end(span, cache_hit=False, wire=True,
                               nxdomain=True, addresses=0)
                if self.audit.enabled:
                    self.audit.record("dns", ReasonCode.DNS_NXDOMAIN,
                                      hostname=name)
                empty = DnsAnswer(name=name, addresses=[], ttl=0.0,
                                  query_time_ms=latency)
                if on_error is not None:
                    on_error(error)
                else:
                    callback(empty)
                for waiter in waiting:
                    waiter(empty)
                return
            answer = DnsAnswer(
                name=name,
                addresses=addresses,
                ttl=ttl,
                cname_chain=chain,
                from_cache=False,
                query_time_ms=latency,
                encrypted_transport=self.encrypted_transport,
                https_alpn=(
                    self._authority.query_https(name)
                    if self.query_https_records else ()
                ),
            )
            self._cache[name] = CacheEntry(
                answer=answer, expires_at=self._loop.now() + ttl
            )
            if span is not None:
                tracer.end(span, cache_hit=False, wire=True,
                           nxdomain=False, addresses=len(addresses))
            callback(answer)
            for waiter in waiting:
                waiter(answer)

        self._loop.schedule(latency, complete)

    def resolve_now(self, name: str) -> DnsAnswer:
        """Synchronous resolution for model/analysis code.

        Uses the cache and authority directly without consuming
        simulated time.  Raises :class:`NxDomain` on failure.
        """
        name = normalize_name(name)
        self.stats.queries += 1
        cached = self._cache_get(name)
        if cached is not None:
            self.stats.cache_hits += 1
            if self.tracer.enabled:
                self.tracer.instant("dns.query", category="dns",
                                    qname=name, cache_hit=True,
                                    wire=False, synchronous=True)
            return cached
        if self.encrypted_transport:
            self.stats.encrypted_queries += 1
        else:
            self.stats.plaintext_queries += 1
        if self.tracer.enabled:
            self.tracer.instant("dns.query", category="dns", qname=name,
                                cache_hit=False, wire=False,
                                synchronous=True)
        try:
            addresses, ttl, chain = self._authority.query(name)
        except NxDomain:
            self.stats.nxdomain += 1
            raise
        answer = DnsAnswer(
            name=name, addresses=addresses, ttl=ttl, cname_chain=chain,
            https_alpn=(
                self._authority.query_https(name)
                if self.query_https_records else ()
            ),
        )
        self._cache[name] = CacheEntry(
            answer=answer, expires_at=self._loop.now() + ttl
        )
        return answer
