"""Authoritative zone data.

A :class:`Zone` holds the records below one origin (e.g.
``example.com``), including wildcard entries (``*.example.com``) which
providers commonly use for customer subdomains.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.dnssim.records import RecordType, ResourceRecord, normalize_name


class ZoneError(Exception):
    """Invalid zone content or lookup."""


class Zone:
    """All records under a single DNS origin."""

    def __init__(self, origin: str) -> None:
        origin = normalize_name(origin)
        if not origin:
            raise ZoneError("zone origin cannot be empty")
        self.origin = origin
        self._records: Dict[Tuple[str, RecordType], List[ResourceRecord]] = (
            defaultdict(list)
        )

    def covers(self, name: str) -> bool:
        """True when ``name`` is the origin or ends with ``.origin``."""
        name = normalize_name(name)
        return name == self.origin or name.endswith("." + self.origin)

    def add(self, record: ResourceRecord) -> None:
        """Add a record; it must belong under this zone's origin.

        A name may have either a CNAME or other data, not both, per
        RFC 1034 §3.6.2.
        """
        if not self.covers(record.name):
            raise ZoneError(
                f"{record.name} does not belong to zone {self.origin}"
            )
        key = (record.name, record.rtype)
        if record.rtype is RecordType.CNAME:
            for (name, rtype), existing in self._records.items():
                if name == record.name and existing:
                    raise ZoneError(
                        f"{record.name} already has {rtype.value} data; "
                        "CNAME must be alone at a node"
                    )
        else:
            if self._records.get((record.name, RecordType.CNAME)):
                raise ZoneError(
                    f"{record.name} is a CNAME; cannot add {record.rtype.value}"
                )
        self._records[key].append(record)

    def add_a(self, name: str, addresses, ttl: float = 300_000.0) -> None:
        """Convenience: add one A record per address."""
        if isinstance(addresses, str):
            addresses = [addresses]
        for address in addresses:
            self.add(ResourceRecord(name, RecordType.A, address, ttl))

    def add_cname(self, name: str, target: str, ttl: float = 300_000.0) -> None:
        self.add(ResourceRecord(name, RecordType.CNAME, target, ttl))

    def add_https(self, name: str, alpn=("h3", "h2"),
                  ttl: float = 300_000.0) -> None:
        """Convenience: add an HTTPS/SVCB record advertising ``alpn``."""
        if isinstance(alpn, str):
            alpn = [alpn]
        self.add(ResourceRecord(
            name, RecordType.HTTPS, ",".join(alpn), ttl
        ))

    def remove(self, name: str, rtype: RecordType) -> int:
        """Drop all records at (name, rtype); returns how many were removed."""
        key = (normalize_name(name), rtype)
        removed = len(self._records.get(key, []))
        self._records.pop(key, None)
        return removed

    def lookup(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        """Exact-match lookup, falling back to a wildcard at the same depth.

        Wildcard matching follows the common single-label convention:
        ``*.example.com`` matches ``foo.example.com`` but not
        ``a.b.example.com`` (RFC 4592 differs; providers in this
        simulation only ever publish single-label wildcards).
        """
        name = normalize_name(name)
        exact = self._records.get((name, rtype))
        if exact:
            return list(exact)
        # CNAME at the node takes priority over a wildcard.
        if rtype is not RecordType.CNAME:
            cname = self._records.get((name, RecordType.CNAME))
            if cname:
                return list(cname)
        labels = name.split(".")
        if len(labels) > 2:
            wildcard = "*." + ".".join(labels[1:])
            wild = self._records.get((wildcard, rtype))
            if wild:
                return [
                    ResourceRecord(name, r.rtype, r.value, r.ttl) for r in wild
                ]
        return []

    def names(self) -> List[str]:
        """All names with at least one record, sorted."""
        return sorted({name for (name, _), records in self._records.items()
                       if records})

    def record_count(self) -> int:
        return sum(len(records) for records in self._records.values())

    def __repr__(self) -> str:
        return f"Zone({self.origin!r}, {self.record_count()} records)"
