"""DNS record and answer types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class RecordType(enum.Enum):
    """The record types the simulation needs."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    NS = "NS"
    #: HTTPS/SVCB (RFC 9460); the value is the comma-joined ALPN list
    #: the service endpoint advertises (e.g. ``"h3,h2"``).
    HTTPS = "HTTPS"


def normalize_name(name: str) -> str:
    """Lower-case and strip the trailing dot from a DNS name."""
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    return name


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: str
    rtype: RecordType
    value: str
    ttl: float = 300_000.0  # ms; 300s is a common production TTL

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("record name cannot be empty")
        if self.ttl <= 0:
            raise ValueError(f"TTL must be positive, got {self.ttl}")
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.rtype is RecordType.CNAME:
            object.__setattr__(self, "value", normalize_name(self.value))


@dataclass
class DnsAnswer:
    """The resolver's reply for one query.

    ``addresses`` is the ordered list handed to the client; ordering
    matters because browsers connect to the first address and keep (or
    discard) the rest depending on their coalescing policy.
    ``cname_chain`` records any aliases followed on the way.
    """

    name: str
    addresses: List[str]
    ttl: float
    cname_chain: Tuple[str, ...] = ()
    from_cache: bool = False
    query_time_ms: float = 0.0
    encrypted_transport: bool = False
    #: ALPN protocols from the name's HTTPS/SVCB record; empty when
    #: none exists or the resolver did not ask for one.
    https_alpn: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.addresses


@dataclass
class CacheEntry:
    """A cached answer with its absolute expiry time."""

    answer: DnsAnswer
    expires_at: float
    hits: int = field(default=0)
