"""DNS simulation substrate.

Provides authoritative zones, answer-rotation (load-balancing) policies,
and a caching resolver that runs over the simulated event loop.  The
resolver is where two paper-relevant behaviours live:

* **Multi-address answers with rotation** -- the raw material for the
  IP-coalescing transitivity differences between Chromium and Firefox
  (paper §2.3).
* **Plaintext-query accounting** -- every query that would travel as
  cleartext UDP/TCP-53 is counted, the quantity ORIGIN-frame coalescing
  removes from the network path (paper §6.2).
"""

from repro.dnssim.records import RecordType, ResourceRecord, DnsAnswer
from repro.dnssim.zone import Zone, ZoneError
from repro.dnssim.loadbalance import (
    AnswerPolicy,
    FixedOrderPolicy,
    RoundRobinPolicy,
    RandomRotationPolicy,
    SingleAddressPolicy,
)
from repro.dnssim.resolver import (
    AuthoritativeServer,
    CachingResolver,
    NxDomain,
    ResolverStats,
)

__all__ = [
    "RecordType",
    "ResourceRecord",
    "DnsAnswer",
    "Zone",
    "ZoneError",
    "AnswerPolicy",
    "FixedOrderPolicy",
    "RoundRobinPolicy",
    "RandomRotationPolicy",
    "SingleAddressPolicy",
    "AuthoritativeServer",
    "CachingResolver",
    "NxDomain",
    "ResolverStats",
]
