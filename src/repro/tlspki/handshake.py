"""TLS handshake cost model.

Computes the time a handshake adds on top of an established TCP
connection, as a function of TLS version, link RTT, certificate chain
size, and session resumption.  Two paper-relevant effects live here:

* **Version RTT cost** (paper §6.6): TLS 1.2 needs 2 RTTs, TLS 1.3
  needs 1, resumed TLS 1.3 0-RTT needs none before data.
* **Large-certificate spill** (paper §6.5): a chain that exceeds the
  16KB TLS record size no longer fits the server's initial flight, so
  every additional initial-congestion-window of data adds an RTT.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

from repro.tlspki.certificate import Certificate

#: Maximum TLS record payload (RFC 8446 §5.1).
TLS_RECORD_SIZE = 16 * 1024

#: Initial congestion window: 10 segments of ~1460B payload (RFC 6928).
INITIAL_CWND_BYTES = 10 * 1460

#: Fixed handshake overhead besides certificates: hellos, key shares,
#: finished messages -- roughly 1.5KB on the wire.
HANDSHAKE_OVERHEAD_BYTES = 1500

#: CPU cost per signature verification, in ms.  ~0.15ms approximates
#: RSA-2048 verify on commodity hardware; scaled by chain length it is
#: the "cryptographic computation overhead" of paper §4.2.
VERIFY_CPU_MS = 0.15


class TlsVersion(enum.Enum):
    """Supported versions with their full-handshake RTT counts."""

    TLS12 = "TLS 1.2"
    TLS13 = "TLS 1.3"

    @property
    def handshake_rtts(self) -> int:
        return 2 if self is TlsVersion.TLS12 else 1


@dataclass(frozen=True)
class HandshakeConfig:
    """Connection-level inputs to the handshake simulation."""

    version: TlsVersion = TlsVersion.TLS13
    rtt_ms: float = 30.0
    bandwidth_bpms: float = 2500.0
    resumed: bool = False
    sni_hostname: str = ""
    ech_enabled: bool = False

    def __post_init__(self) -> None:
        if self.rtt_ms < 0:
            raise ValueError(f"negative RTT: {self.rtt_ms}")
        if self.bandwidth_bpms <= 0:
            raise ValueError(f"bad bandwidth: {self.bandwidth_bpms}")


@dataclass(frozen=True)
class HandshakeResult:
    """Outcome of one simulated handshake."""

    duration_ms: float
    rtts_used: float
    chain_bytes: int
    records_needed: int
    extra_flights: int
    signature_checks: int
    cpu_ms: float
    sni_plaintext: str

    @property
    def sni_leaked(self) -> bool:
        """True when the SNI crossed the network unencrypted."""
        return bool(self.sni_plaintext)


def chain_bytes(chain: Sequence[Certificate]) -> int:
    """Wire size of the presented certificate chain."""
    return sum(certificate.size_bytes for certificate in chain)


def simulate_handshake(
    chain: Sequence[Certificate], config: HandshakeConfig
) -> HandshakeResult:
    """Simulate the TLS handshake for ``chain`` under ``config``.

    Resumed TLS 1.3 handshakes skip certificate transmission entirely
    (PSK resumption).  Otherwise the handshake costs its version's RTTs
    plus serialization of the chain, plus one extra RTT per additional
    initial-congestion-window the server's first flight spills into.
    """
    if config.resumed and config.version is TlsVersion.TLS13:
        return HandshakeResult(
            duration_ms=0.0,
            rtts_used=0.0,
            chain_bytes=0,
            records_needed=0,
            extra_flights=0,
            signature_checks=0,
            cpu_ms=0.0,
            sni_plaintext="" if config.ech_enabled else config.sni_hostname,
        )

    total_bytes = chain_bytes(chain) + HANDSHAKE_OVERHEAD_BYTES
    records = max(1, math.ceil(chain_bytes(chain) / TLS_RECORD_SIZE))
    flights = max(1, math.ceil(total_bytes / INITIAL_CWND_BYTES))
    extra_flights = flights - 1

    rtts = config.version.handshake_rtts + extra_flights
    serialization = total_bytes / config.bandwidth_bpms
    signature_checks = len(chain)
    cpu = signature_checks * VERIFY_CPU_MS

    return HandshakeResult(
        duration_ms=rtts * config.rtt_ms + serialization + cpu,
        rtts_used=float(rtts),
        chain_bytes=chain_bytes(chain),
        records_needed=records,
        extra_flights=extra_flights,
        signature_checks=signature_checks,
        cpu_ms=cpu,
        sni_plaintext="" if config.ech_enabled else config.sni_hostname,
    )
