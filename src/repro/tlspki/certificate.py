"""Certificate model with SAN extension.

A :class:`Certificate` is a simplified X.509 leaf/intermediate/root: it
carries a subject, an ordered tuple of DNS SAN entries, validity
window, issuer linkage, and a signature computed over its to-be-signed
(TBS) serialization.  Sizes are estimated from realistic DER overheads
so that handshake-cost modelling (paper §6.5) behaves like production.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.dnssim.records import normalize_name

#: DER overhead of a typical RSA-2048 leaf certificate with no SANs:
#: key (~294B), signature (~256B), names/validity/extensions (~650B).
BASE_CERTIFICATE_BYTES = 1200

#: Per-SAN overhead: the encoded GeneralName adds a 2-byte header.
SAN_ENTRY_OVERHEAD_BYTES = 2


class CertificateError(Exception):
    """Malformed certificate content or invalid operation."""


def hostname_matches(pattern: str, hostname: str) -> bool:
    """RFC 6125 presented-identifier matching.

    A wildcard must be the entire left-most label (``*.example.com``)
    and matches exactly one label: ``foo.example.com`` yes,
    ``a.b.example.com`` no, ``example.com`` no.
    """
    pattern = normalize_name(pattern)
    hostname = normalize_name(hostname)
    if not pattern or not hostname:
        return False
    if "*" not in pattern:
        return pattern == hostname
    labels = pattern.split(".")
    if labels[0] != "*" or "*" in ".".join(labels[1:]):
        return False  # wildcard only allowed as the whole first label
    host_labels = hostname.split(".")
    if len(host_labels) != len(labels):
        return False
    return host_labels[1:] == labels[1:]


def estimate_certificate_size(san_names: Tuple[str, ...]) -> int:
    """Estimated DER size in bytes for a cert with the given SAN list."""
    return BASE_CERTIFICATE_BYTES + sum(
        len(name) + SAN_ENTRY_OVERHEAD_BYTES for name in san_names
    )


@dataclass(frozen=True)
class Certificate:
    """An issued certificate.

    ``signature`` is empty until a :class:`~repro.tlspki.ca.CertificateAuthority`
    signs the TBS bytes; an unsigned certificate never validates.
    """

    subject: str
    san: Tuple[str, ...]
    issuer: str
    serial: int
    not_before: float
    not_after: float
    is_ca: bool = False
    public_key: bytes = b""
    signature: bytes = b""
    issuer_key_id: bytes = b""

    def __post_init__(self) -> None:
        if not self.subject:
            raise CertificateError("certificate must have a subject")
        if self.not_after <= self.not_before:
            raise CertificateError(
                f"validity window is empty: "
                f"[{self.not_before}, {self.not_after}]"
            )
        normalized = tuple(normalize_name(n) for n in self.san)
        for name in normalized:
            if not name:
                raise CertificateError("empty SAN entry")
            if "*" in name and not name.startswith("*."):
                raise CertificateError(f"malformed wildcard SAN {name!r}")
        object.__setattr__(self, "san", normalized)
        # Subject and issuer are compared case-insensitively everywhere
        # (hostnames for leaves, CA display names for issuers).
        object.__setattr__(self, "subject", normalize_name(self.subject))
        object.__setattr__(self, "issuer", normalize_name(self.issuer))

    # -- identity -----------------------------------------------------------

    @property
    def san_count(self) -> int:
        return len(self.san)

    @property
    def size_bytes(self) -> int:
        return estimate_certificate_size(self.san)

    def covers(self, hostname: str) -> bool:
        """True when ``hostname`` matches a SAN entry.

        A certificate with an *empty* SAN falls back to legacy subject
        CN matching -- the paper found 11,131 sites still serving
        no-SAN certificates (§4.3); such certificates identify exactly
        one name and can never coalesce additional hostnames.
        """
        if not self.san:
            return hostname_matches(self.subject, hostname)
        return any(hostname_matches(entry, hostname) for entry in self.san)

    def with_added_san(self, *names: str) -> "Certificate":
        """A re-issued copy with extra SAN entries (deduplicated, order
        preserved).  The copy is unsigned; the CA must sign it again."""
        merged = list(self.san)
        for name in names:
            name = normalize_name(name)
            if name not in merged:
                merged.append(name)
        return replace(
            self, san=tuple(merged), signature=b"", serial=self.serial
        )

    # -- signing ---------------------------------------------------------------

    def tbs_bytes(self) -> bytes:
        """Deterministic serialization of the to-be-signed fields."""
        parts = [
            self.subject,
            "|".join(self.san),
            self.issuer,
            str(self.serial),
            f"{self.not_before:.3f}",
            f"{self.not_after:.3f}",
            "CA" if self.is_ca else "EE",
            self.public_key.hex(),
        ]
        return "\n".join(parts).encode("utf-8")

    def fingerprint(self) -> str:
        """SHA-256 over TBS bytes plus signature, hex-encoded."""
        return hashlib.sha256(self.tbs_bytes() + self.signature).hexdigest()

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def __repr__(self) -> str:
        return (
            f"Certificate(subject={self.subject!r}, sans={self.san_count}, "
            f"issuer={self.issuer!r}, serial={self.serial})"
        )
