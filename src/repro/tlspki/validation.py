"""Chain validation.

Validates a presented chain the way a browser would: hostname against
the leaf SAN, validity windows, issuer linkage, signatures back to a
trusted root.  The result carries a count of signature verifications so
that the analysis can price the "cryptographic computation overhead"
the paper's Figure 3 discussion attributes to excess validations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dnssim.records import normalize_name
from repro.tlspki.ca import CertificateAuthority
from repro.tlspki.certificate import Certificate


class TrustStore:
    """The set of root CAs a client trusts."""

    def __init__(self, roots: Sequence[CertificateAuthority] = ()) -> None:
        self._roots: Dict[str, CertificateAuthority] = {}
        for root in roots:
            self.add_root(root)

    def add_root(self, root: CertificateAuthority) -> None:
        if root.parent is not None:
            raise ValueError(
                f"{root.name} is an intermediate, not a trust anchor"
            )
        self._roots[normalize_name(root.name)] = root

    def root(self, name: str) -> Optional[CertificateAuthority]:
        return self._roots.get(normalize_name(name))

    def __contains__(self, name: str) -> bool:
        return normalize_name(name) in self._roots

    def __len__(self) -> int:
        return len(self._roots)


@dataclass
class ValidationResult:
    """Outcome of one chain validation."""

    ok: bool
    hostname: str
    errors: List[str] = field(default_factory=list)
    signature_checks: int = 0
    chain_length: int = 0

    def __bool__(self) -> bool:
        return self.ok


def validate_chain(
    chain: Sequence[Certificate],
    hostname: str,
    now: float,
    trust_store: TrustStore,
    authorities: Sequence[CertificateAuthority],
) -> ValidationResult:
    """Validate ``chain`` for ``hostname`` at simulated time ``now``.

    ``authorities`` is the universe of CAs whose signatures can be
    recomputed (the simulation's stand-in for public-key operations).
    All problems found are reported, not just the first.
    """
    result = ValidationResult(ok=True, hostname=hostname,
                              chain_length=len(chain))
    if not chain:
        result.ok = False
        result.errors.append("empty chain")
        return result

    by_name: Dict[str, CertificateAuthority] = {
        normalize_name(authority.name): authority
        for authority in authorities
    }
    leaf = chain[0]

    if not leaf.covers(hostname):
        result.ok = False
        result.errors.append(
            f"hostname {hostname!r} not covered by leaf SAN {list(leaf.san)}"
        )
    if leaf.is_ca:
        result.ok = False
        result.errors.append("leaf has the CA flag set")

    for depth, certificate in enumerate(chain):
        if not certificate.valid_at(now):
            result.ok = False
            result.errors.append(
                f"certificate {certificate.subject!r} at depth {depth} "
                f"expired or not yet valid at t={now}"
            )
        if depth > 0 and not certificate.is_ca:
            result.ok = False
            result.errors.append(
                f"non-CA certificate {certificate.subject!r} at depth {depth}"
            )
        issuer = by_name.get(certificate.issuer)
        if issuer is None:
            result.ok = False
            result.errors.append(
                f"unknown issuer {certificate.issuer!r} at depth {depth}"
            )
            continue
        result.signature_checks += 1
        if not issuer.verify(certificate):
            result.ok = False
            result.errors.append(
                f"bad signature on {certificate.subject!r} at depth {depth}"
            )
        # Issuer linkage between consecutive chain elements.
        if depth + 1 < len(chain):
            if certificate.issuer != chain[depth + 1].subject:
                result.ok = False
                result.errors.append(
                    f"chain break: {certificate.subject!r} issued by "
                    f"{certificate.issuer!r}, next element is "
                    f"{chain[depth + 1].subject!r}"
                )

    root = chain[-1]
    if root.issuer != root.subject:
        result.ok = False
        result.errors.append(
            f"chain does not end in a self-signed root "
            f"(got {root.subject!r} issued by {root.issuer!r})"
        )
    if root.subject not in trust_store:
        result.ok = False
        result.errors.append(f"root {root.subject!r} not in trust store")

    return result
