"""Online Certificate Status Protocol (OCSP) responder model.

Paper §6.2 notes that OCSP gives clients confidence in a certificate's
continued validity without DNS.  The model supports revocation,
status queries, and stapled responses with a freshness window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.tlspki.certificate import Certificate

#: Default staple validity: 7 days in ms, a common production maximum.
DEFAULT_STAPLE_LIFETIME_MS = 7.0 * 24 * 3600 * 1000


class OcspStatus(enum.Enum):
    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class StapledResponse:
    """A signed status a server can staple into its handshake."""

    fingerprint: str
    status: OcspStatus
    produced_at: float
    expires_at: float

    def fresh_at(self, now: float) -> bool:
        return self.produced_at <= now <= self.expires_at


class OcspResponder:
    """Tracks revocations for the certificates of one or more CAs."""

    def __init__(
        self, staple_lifetime_ms: float = DEFAULT_STAPLE_LIFETIME_MS
    ) -> None:
        self._staple_lifetime = staple_lifetime_ms
        self._known: Dict[str, OcspStatus] = {}
        self._revoked_at: Dict[str, float] = {}
        self.queries = 0

    def register(self, certificate: Certificate) -> None:
        """Start answering for a certificate (status GOOD)."""
        self._known[certificate.fingerprint()] = OcspStatus.GOOD

    def revoke(self, certificate: Certificate, now: float = 0.0) -> None:
        fingerprint = certificate.fingerprint()
        if fingerprint not in self._known:
            raise KeyError(
                f"cannot revoke unregistered certificate "
                f"{certificate.subject!r}"
            )
        self._known[fingerprint] = OcspStatus.REVOKED
        self._revoked_at[fingerprint] = now

    def status(self, certificate: Certificate) -> OcspStatus:
        """Live status query (counts toward responder load)."""
        self.queries += 1
        return self._known.get(certificate.fingerprint(), OcspStatus.UNKNOWN)

    def revocation_time(self, certificate: Certificate) -> Optional[float]:
        return self._revoked_at.get(certificate.fingerprint())

    def staple(
        self, certificate: Certificate, now: float = 0.0
    ) -> StapledResponse:
        """Produce a stapled response a server can serve in-handshake."""
        status = self._known.get(
            certificate.fingerprint(), OcspStatus.UNKNOWN
        )
        return StapledResponse(
            fingerprint=certificate.fingerprint(),
            status=status,
            produced_at=now,
            expires_at=now + self._staple_lifetime,
        )

    def verify_staple(
        self, certificate: Certificate, staple: StapledResponse, now: float
    ) -> bool:
        """A staple is acceptable when it names this certificate, is
        fresh, and reports GOOD."""
        return (
            staple.fingerprint == certificate.fingerprint()
            and staple.fresh_at(now)
            and staple.status is OcspStatus.GOOD
        )
