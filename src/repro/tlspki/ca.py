"""Certificate authority: keys, issuance, re-issuance, chains.

Signing is modelled with HMAC-style keyed hashing: a CA's "private key"
is a random byte string; a signature over TBS bytes is
``sha256(key || tbs)``.  Verification recomputes the hash with the
issuer's key, so chains validate exactly when the real issuer signed
them -- the same trust topology as real PKI without real crypto.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dnssim.records import normalize_name
from repro.tlspki.certificate import Certificate, CertificateError

#: Default leaf validity: 90 days in ms, the Let's Encrypt convention.
DEFAULT_LEAF_LIFETIME_MS = 90.0 * 24 * 3600 * 1000

#: Default CA validity: 10 years in ms.
DEFAULT_CA_LIFETIME_MS = 10.0 * 365 * 24 * 3600 * 1000


@dataclass(frozen=True)
class IssuancePolicy:
    """Limits a CA imposes on what it will issue.

    ``max_san_names`` models the per-CA limits the paper catalogues in
    §6.5: Let's Encrypt/DigiCert/GoDaddy cap at 100 names, Comodo at
    2000.
    """

    max_san_names: int = 100
    leaf_lifetime_ms: float = DEFAULT_LEAF_LIFETIME_MS


class CertificateAuthority:
    """Issues and signs certificates; may be a root or an intermediate."""

    def __init__(
        self,
        name: str,
        rng: Optional[np.random.Generator] = None,
        policy: Optional[IssuancePolicy] = None,
        parent: Optional["CertificateAuthority"] = None,
        now: float = 0.0,
    ) -> None:
        if not name:
            raise CertificateError("CA needs a name")
        self.name = name
        self.policy = policy or IssuancePolicy()
        self.parent = parent
        rng = rng or np.random.default_rng(abs(hash(name)) % (2**32))
        self._key = rng.bytes(32)
        self._serial = 1
        self.issued: List[Certificate] = []
        self.issuance_count = 0
        # Self-signed root or parent-signed intermediate certificate.
        lifetime = DEFAULT_CA_LIFETIME_MS
        ca_cert = Certificate(
            subject=name,
            san=(),
            issuer=parent.name if parent else name,
            serial=0,
            not_before=now,
            not_after=now + lifetime,
            is_ca=True,
            public_key=hashlib.sha256(self._key).digest(),
        )
        signer = parent if parent is not None else self
        self.certificate = signer._sign(ca_cert)

    # -- signing ----------------------------------------------------------

    def _sign(self, certificate: Certificate) -> Certificate:
        signature = hashlib.sha256(
            self._key + certificate.tbs_bytes()
        ).digest()
        return Certificate(
            subject=certificate.subject,
            san=certificate.san,
            issuer=self.name,
            serial=certificate.serial,
            not_before=certificate.not_before,
            not_after=certificate.not_after,
            is_ca=certificate.is_ca,
            public_key=certificate.public_key,
            signature=signature,
            issuer_key_id=hashlib.sha256(self._key).digest()[:8],
        )

    def verify(self, certificate: Certificate) -> bool:
        """True when this CA's key produced the certificate's signature."""
        expected = hashlib.sha256(
            self._key + certificate.tbs_bytes()
        ).digest()
        return certificate.signature == expected

    # -- issuance ------------------------------------------------------------

    def issue(
        self,
        subject: str,
        san: Tuple[str, ...],
        now: float = 0.0,
        lifetime_ms: Optional[float] = None,
        include_subject_in_san: bool = True,
    ) -> Certificate:
        """Issue and sign a leaf certificate.

        The subject is automatically included in the SAN if missing, as
        CAs do in practice (browsers only check SAN).  Pass
        ``include_subject_in_san=False`` to mint a legacy no-SAN
        certificate (paper §4.3 found 11,131 sites serving them).
        """
        subject = normalize_name(subject)
        san_list = [normalize_name(s) for s in san]
        if include_subject_in_san and subject not in san_list:
            san_list.insert(0, subject)
        if len(san_list) > self.policy.max_san_names:
            raise CertificateError(
                f"{self.name} refuses {len(san_list)} SAN names "
                f"(limit {self.policy.max_san_names})"
            )
        lifetime = lifetime_ms or self.policy.leaf_lifetime_ms
        unsigned = Certificate(
            subject=subject,
            san=tuple(san_list),
            issuer=self.name,
            serial=self._serial,
            not_before=now,
            not_after=now + lifetime,
            public_key=hashlib.sha256(
                self._key + str(self._serial).encode()
            ).digest(),
        )
        self._serial += 1
        signed = self._sign(unsigned)
        self.issued.append(signed)
        self.issuance_count += 1
        return signed

    def reissue(
        self,
        certificate: Certificate,
        added_san: Tuple[str, ...] = (),
        now: Optional[float] = None,
    ) -> Certificate:
        """Re-issue an existing certificate with extra SAN entries.

        This is the deployment operation from paper §5.1/Figure 6: the
        renewed certificate keeps the subject and existing SAN set, adds
        the new names, gets a fresh serial and validity window, and is
        signed again.
        """
        if certificate.issuer != normalize_name(self.name):
            raise CertificateError(
                f"{self.name} cannot reissue a certificate from "
                f"{certificate.issuer}"
            )
        start = certificate.not_before if now is None else now
        merged = certificate.with_added_san(*added_san)
        return self.issue(
            certificate.subject,
            merged.san,
            now=start,
            lifetime_ms=certificate.not_after - certificate.not_before,
        )

    def chain(self) -> List[Certificate]:
        """This CA's certificate followed by its ancestors up to the root."""
        chain: List[Certificate] = []
        authority: Optional[CertificateAuthority] = self
        while authority is not None:
            chain.append(authority.certificate)
            authority = authority.parent
        return chain

    def chain_for(self, leaf: Certificate) -> List[Certificate]:
        """Full presentation chain: leaf, then issuing CAs to the root."""
        return [leaf] + self.chain()

    def __repr__(self) -> str:
        kind = "intermediate" if self.parent else "root"
        return f"CertificateAuthority({self.name!r}, {kind})"
