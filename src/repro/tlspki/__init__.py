"""TLS and PKI substrate.

Models the certificate machinery the paper's coalescing analysis rests
on: certificates with Subject Alternative Name (SAN) extensions,
certificate-authority issuance and chains, chain validation, handshake
cost (including the 16KB-record spill for oversized certificates,
paper §6.5), Certificate Transparency logs (paper §6.4), and OCSP
status (paper §6.2).
"""

from repro.tlspki.certificate import (
    Certificate,
    CertificateError,
    hostname_matches,
    estimate_certificate_size,
)
from repro.tlspki.ca import CertificateAuthority, IssuancePolicy
from repro.tlspki.validation import (
    TrustStore,
    ValidationResult,
    validate_chain,
)
from repro.tlspki.ctlog import CtLog, InclusionProof, ConsistencyProof
from repro.tlspki.handshake import (
    TlsVersion,
    HandshakeConfig,
    HandshakeResult,
    simulate_handshake,
    TLS_RECORD_SIZE,
)
from repro.tlspki.ocsp import OcspResponder, OcspStatus

__all__ = [
    "Certificate",
    "CertificateError",
    "hostname_matches",
    "estimate_certificate_size",
    "CertificateAuthority",
    "IssuancePolicy",
    "TrustStore",
    "ValidationResult",
    "validate_chain",
    "CtLog",
    "InclusionProof",
    "ConsistencyProof",
    "TlsVersion",
    "HandshakeConfig",
    "HandshakeResult",
    "simulate_handshake",
    "TLS_RECORD_SIZE",
    "OcspResponder",
    "OcspStatus",
]
