"""Certificate Transparency log (RFC 6962 Merkle tree).

An append-only Merkle tree over certificate fingerprints with inclusion
and consistency proofs.  Paper §6.4 argues that the bursty one-time
certificate re-issuance the coalescing plan requires would not stress
CT infrastructure; the benches use this module to quantify the load
(appends per hour vs the paper's 257,034 global hourly issuance rate).

Hashing follows RFC 6962 §2.1: leaf hash is ``SHA256(0x00 || entry)``,
interior node hash is ``SHA256(0x01 || left || right)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.tlspki.certificate import Certificate

LEAF_PREFIX = b"\x00"
NODE_PREFIX = b"\x01"


def _leaf_hash(entry: bytes) -> bytes:
    return hashlib.sha256(LEAF_PREFIX + entry).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(NODE_PREFIX + left + right).digest()


def _merkle_root(hashes: List[bytes]) -> bytes:
    """Root of the (possibly unbalanced) RFC 6962 tree over leaf hashes."""
    if not hashes:
        return hashlib.sha256(b"").digest()
    if len(hashes) == 1:
        return hashes[0]
    split = _largest_power_of_two_below(len(hashes))
    return _node_hash(
        _merkle_root(hashes[:split]), _merkle_root(hashes[split:])
    )


def _largest_power_of_two_below(n: int) -> int:
    """The largest power of two strictly less than ``n`` (n >= 2)."""
    split = 1
    while split * 2 < n:
        split *= 2
    return split


@dataclass(frozen=True)
class InclusionProof:
    """Audit path proving a leaf is in a tree of a given size."""

    leaf_index: int
    tree_size: int
    path: Tuple[bytes, ...]


@dataclass(frozen=True)
class ConsistencyProof:
    """Proof that the tree at ``new_size`` extends the tree at ``old_size``."""

    old_size: int
    new_size: int
    path: Tuple[bytes, ...]


def _inclusion_path(hashes: List[bytes], index: int) -> List[bytes]:
    if len(hashes) == 1:
        return []
    split = _largest_power_of_two_below(len(hashes))
    if index < split:
        path = _inclusion_path(hashes[:split], index)
        path.append(_merkle_root(hashes[split:]))
    else:
        path = _inclusion_path(hashes[split:], index - split)
        path.append(_merkle_root(hashes[:split]))
    return path


def verify_inclusion(
    entry: bytes, proof: InclusionProof, root: bytes
) -> bool:
    """Recompute the root from the leaf and audit path (RFC 6962 §2.1.1)."""
    if not 0 <= proof.leaf_index < proof.tree_size:
        return False
    return _replay_inclusion(entry, proof) == root


def _replay_inclusion(entry: bytes, proof: InclusionProof) -> bytes:
    """Top-down recomputation mirroring :func:`_inclusion_path`."""

    def recompute(index: int, size: int, path: List[bytes]) -> bytes:
        if size == 1:
            if path:
                raise ValueError("path too long")
            return _leaf_hash(entry)
        split = _largest_power_of_two_below(size)
        sibling = path[-1]
        rest = path[:-1]
        if index < split:
            return _node_hash(recompute(index, split, rest), sibling)
        return _node_hash(sibling, recompute(index - split, size - split, rest))

    try:
        return recompute(proof.leaf_index, proof.tree_size, list(proof.path))
    except (ValueError, IndexError):
        return b""


class CtLog:
    """An append-only certificate transparency log."""

    def __init__(self, operator: str) -> None:
        self.operator = operator
        self._entries: List[bytes] = []
        self._leaf_hashes: List[bytes] = []
        self.append_times: List[float] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tree_size(self) -> int:
        return len(self._entries)

    def append(self, certificate: Certificate, now: float = 0.0) -> int:
        """Log a certificate; returns its leaf index (its SCT)."""
        entry = certificate.fingerprint().encode("ascii")
        self._entries.append(entry)
        self._leaf_hashes.append(_leaf_hash(entry))
        self.append_times.append(now)
        return len(self._entries) - 1

    def root_hash(self, tree_size: int = -1) -> bytes:
        """Root at a historical size (default: current)."""
        if tree_size < 0:
            tree_size = len(self._entries)
        if tree_size > len(self._entries):
            raise ValueError(
                f"tree has {len(self._entries)} entries, not {tree_size}"
            )
        return _merkle_root(self._leaf_hashes[:tree_size])

    def entry(self, index: int) -> bytes:
        return self._entries[index]

    def inclusion_proof(
        self, leaf_index: int, tree_size: int = -1
    ) -> InclusionProof:
        if tree_size < 0:
            tree_size = len(self._entries)
        if not 0 <= leaf_index < tree_size <= len(self._entries):
            raise ValueError(
                f"invalid proof request: leaf {leaf_index}, size {tree_size}"
            )
        path = _inclusion_path(self._leaf_hashes[:tree_size], leaf_index)
        return InclusionProof(
            leaf_index=leaf_index, tree_size=tree_size, path=tuple(path)
        )

    def verify_inclusion(
        self, certificate: Certificate, proof: InclusionProof
    ) -> bool:
        entry = certificate.fingerprint().encode("ascii")
        root = self.root_hash(proof.tree_size)
        return _replay_inclusion(entry, proof) == root

    def consistency_proof(
        self, old_size: int, new_size: int = -1
    ) -> ConsistencyProof:
        """Subtree roots sufficient to check append-only growth.

        This implementation returns the old root and the roots of the
        appended ranges; verification recomputes both roots.  (A compact
        RFC 6962 §2.1.2 path would be smaller; equivalence of guarantees
        is what the tests check.)
        """
        if new_size < 0:
            new_size = len(self._entries)
        if not 0 < old_size <= new_size <= len(self._entries):
            raise ValueError(
                f"invalid consistency request: {old_size} -> {new_size}"
            )
        path = [
            _merkle_root(self._leaf_hashes[:old_size]),
            _merkle_root(self._leaf_hashes[old_size:new_size]),
        ]
        return ConsistencyProof(
            old_size=old_size, new_size=new_size, path=tuple(path)
        )

    def verify_consistency(self, proof: ConsistencyProof) -> bool:
        """True when the recorded roots match both claimed tree states."""
        old_root = self.root_hash(proof.old_size)
        new_root = self.root_hash(proof.new_size)
        if proof.path[0] != old_root:
            return False
        if proof.old_size == proof.new_size:
            return True
        recombined = _merkle_root(
            self._leaf_hashes[: proof.new_size]
        )
        return recombined == new_root

    def appends_in_window(self, start: float, end: float) -> int:
        """How many certificates were logged in [start, end) -- used by
        the §6.4 CT-load bench."""
        return sum(1 for t in self.append_times if start <= t < end)
