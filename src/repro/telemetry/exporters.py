"""Trace and metrics exporters.

Three formats:

* **JSONL** -- one span object per line, the archival/diff format the
  determinism tests compare byte-for-byte;
* **Chrome trace_event** -- a JSON document loadable in Perfetto or
  ``about:tracing``, so each simulated page's waterfall can be *seen*
  (one process per crawl shard, one thread per layer);
* **ASCII summary** -- the metrics registry rendered with the same
  table helpers as the paper's tables
  (:mod:`repro.analysis.render`).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.tracer import Span

#: Stable thread ids per instrumented layer, so Perfetto rows line up
#: the same way in every trace.
CATEGORY_TIDS = {
    "crawler": 0,
    "browser": 1,
    "pool": 2,
    "dns": 3,
    "tls": 4,
    "h2": 5,
}
_OTHER_TID = 9


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One canonical JSON object per line (sorted keys, stable order)."""
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")

def spans_from_jsonl(text: str) -> List[Span]:
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def _tid(span: Span) -> int:
    return CATEGORY_TIDS.get(span.category, _OTHER_TID)


def chrome_trace_events(spans: Sequence[Span]) -> List[dict]:
    """Spans as Chrome ``trace_event`` dicts (``ts``/``dur`` in µs)."""
    events: List[dict] = []
    shards = sorted({span.shard for span in spans})
    for shard in shards:
        events.append({
            "ph": "M", "name": "process_name", "pid": shard, "tid": 0,
            "args": {"name": f"crawl shard {shard}"},
        })
        for category, tid in sorted(CATEGORY_TIDS.items(),
                                    key=lambda kv: kv[1]):
            events.append({
                "ph": "M", "name": "thread_name", "pid": shard,
                "tid": tid, "args": {"name": category},
            })
    for span in spans:
        base = {
            "name": span.name,
            "cat": span.category or "misc",
            "pid": span.shard,
            "tid": _tid(span),
            "ts": round(span.start_ms * 1000.0, 3),
            "args": dict(span.attrs),
        }
        if span.finished and span.end_ms > span.start_ms:
            base["ph"] = "X"
            base["dur"] = round((span.end_ms - span.start_ms) * 1000.0, 3)
        else:
            base["ph"] = "i"
            base["s"] = "t"
            if not span.finished:
                base["args"]["unfinished"] = True
        events.append(base)
    return events


def chrome_trace_document(spans: Sequence[Span]) -> dict:
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path, spans: Sequence[Span]) -> int:
    """Write the trace_event JSON; returns the span count."""
    document = chrome_trace_document(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    return len(spans)


def render_metrics_summary(registry: MetricsRegistry) -> str:
    """The registry as ASCII tables (counters/gauges, then
    histograms)."""
    from repro.analysis.render import render_table

    def labels_of(metric) -> str:
        return ",".join(f"{k}={v}" for k, v in metric.labels) or "-"

    scalar_rows = []
    histogram_rows = []
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            histogram_rows.append((
                metric.name, labels_of(metric), metric.count,
                f"{metric.mean:.1f}",
                f"{metric.percentile(0.5):.1f}",
                f"{metric.percentile(0.9):.1f}",
                f"{metric.max:.1f}" if metric.count else "-",
            ))
        else:
            value = metric.value
            scalar_rows.append((
                metric.name, labels_of(metric),
                f"{value:.2f}" if isinstance(value, float)
                and not float(value).is_integer() else f"{int(value)}",
            ))
    blocks = []
    if scalar_rows:
        blocks.append(render_table(
            "metrics -- counters and gauges",
            ["Metric", "Labels", "Value"], scalar_rows,
        ))
    if histogram_rows:
        blocks.append(render_table(
            "metrics -- histograms (ms)",
            ["Metric", "Labels", "Count", "Mean", "p50", "p90", "Max"],
            histogram_rows,
        ))
    if not blocks:
        return "(no metrics recorded)"
    return "\n\n".join(blocks)
