"""Trace-validated waterfalls: the Figure 2 correctness oracle.

The §4.1 reconstruction model (:mod:`repro.core.timeline`) rebuilds a
page's waterfall from HAR-level observations -- exactly what the paper
did with WebPageTest output.  Our simulator, however, knows the ground
truth: every DNS lookup, TCP connect, and TLS handshake is a traced
span on the simulated clock.  This module checks one against the
other, turning "the reconstruction looks right" into "the
reconstruction is consistent with the simulator":

* every successful HAR entry must correspond to a traced ``fetch``
  span with the **same interval** (``started_at + sum(phases) ==
  traced end``, the invariant the engine's blocked-time accounting
  promises);
* every entry that reports DNS time must match a traced wire
  ``dns.query`` span of that duration, started at the fetch start;
* every entry that reports a TLS handshake must match a traced
  ``h2.connection`` span whose measured TCP and TLS phases equal the
  entry's ``connect``/``ssl`` timings;
* the Figure 2 reconstruction must only remove costs that the
  simulator actually paid: each model-coalesced entry's dropped
  ``connect + ssl`` equals its traced handshake, each dropped DNS
  saving is bounded by the traced lookup, and non-coalesced entries
  keep their traced durations unchanged.

:func:`validate_crawl_trace` returns a list of discrepancy strings
(empty == consistent); :func:`assert_trace_valid` raises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.grouping import ServiceGrouper, by_asn
from repro.core.timeline import ReconstructionOptions, reconstruct
from repro.dataset.crawler import CrawlResult
from repro.telemetry.tracer import Span
from repro.web.har import HarArchive, HarEntry

#: Matching tolerance in simulated ms; the simulation is float-exact,
#: so this only absorbs summation-order noise.
TOLERANCE_MS = 1e-6


def _close(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol


class _Claimable:
    """A span pool supporting claim-once matching."""

    def __init__(self, spans: Sequence[Span]) -> None:
        self.spans = list(spans)
        self.claimed = [False] * len(self.spans)

    def claim(self, predicate) -> Optional[Span]:
        for index, span in enumerate(self.spans):
            if not self.claimed[index] and predicate(span):
                self.claimed[index] = True
                return span
        return None


def _validate_entry_phases(
    entry: HarEntry,
    fetch: Span,
    dns_pool: _Claimable,
    conn_pool: _Claimable,
    tol: float,
    problems: List[str],
) -> Dict[str, Optional[Span]]:
    """Match one entry's phases against ground-truth spans."""
    claimed: Dict[str, Optional[Span]] = {"dns": None, "conn": None}
    where = f"{entry.hostname}{entry.path}"

    if not _close(fetch.end_ms, entry.finished_at, tol):
        problems.append(
            f"{where}: HAR interval ends at {entry.finished_at:.6f} but "
            f"traced fetch ended at {fetch.end_ms:.6f}"
        )

    if entry.timings.dns >= 0:
        span = dns_pool.claim(
            lambda s: s.attrs.get("qname") == entry.hostname
            and s.attrs.get("wire")
            and _close(s.start_ms, entry.started_at, tol)
            and _close(s.duration_ms, entry.timings.dns, tol)
        )
        if span is None:
            problems.append(
                f"{where}: HAR reports {entry.timings.dns:.3f}ms DNS but "
                "no traced wire dns.query span matches"
            )
        claimed["dns"] = span

    if entry.timings.ssl >= 0:
        span = conn_pool.claim(
            lambda s: s.attrs.get("sni") == entry.hostname
            and _close(s.attrs.get("tcp_ms", -1.0),
                       max(entry.timings.connect, 0.0), tol)
            and _close(s.attrs.get("tls_ms", -1.0), entry.timings.ssl,
                       tol)
        )
        if span is None:
            problems.append(
                f"{where}: HAR reports connect={entry.timings.connect:.3f}"
                f" ssl={entry.timings.ssl:.3f} but no traced "
                "h2.connection span matches"
            )
        claimed["conn"] = span
    return claimed


def _validate_reconstruction(
    archive: HarArchive,
    claims: Dict[int, Dict[str, Optional[Span]]],
    grouper: ServiceGrouper,
    options: Optional[ReconstructionOptions],
    tol: float,
    problems: List[str],
) -> None:
    """The Figure 2 check: the model only removes traced costs.

    The reconstruction may, for an entry it coalesces, (a) drop the
    TCP+TLS handshake, (b) drop DNS time up to the traced lookup, and
    (c) shed speculative blocked time.  It must never touch
    send/wait/receive, never *add* time to any phase, and must leave
    untouched entries' durations exactly as traced.
    """
    result = reconstruct(archive, grouper, options)
    originals = archive.entries_by_start()
    for original, rebuilt in zip(originals, result.reconstructed.entries):
        where = f"{original.hostname}{original.path}"
        if original.status != 200:
            continue
        before, after = original.timings, rebuilt.timings

        for phase in ("send", "wait", "receive"):
            if not _close(getattr(before, phase), getattr(after, phase),
                          tol):
                problems.append(
                    f"{where}: reconstruction changed the {phase} phase "
                    f"({getattr(before, phase):.3f} -> "
                    f"{getattr(after, phase):.3f})"
                )

        handshake_removed = before.connect >= 0 and after.connect < 0
        if handshake_removed:
            removed = before.connect + max(before.ssl, 0.0)
            conn = claims.get(id(original), {}).get("conn")
            if before.ssl >= 0 and conn is not None:
                traced = conn.attrs["tcp_ms"] + conn.attrs["tls_ms"]
                if not _close(removed, traced, tol):
                    problems.append(
                        f"{where}: model removed {removed:.3f}ms of "
                        f"handshake but the simulator paid {traced:.3f}ms"
                    )
        else:
            kept_before = max(before.connect, 0.0) + max(before.ssl, 0.0)
            kept_after = max(after.connect, 0.0) + max(after.ssl, 0.0)
            if not _close(kept_before, kept_after, tol):
                problems.append(
                    f"{where}: reconstruction altered a kept handshake "
                    f"({kept_before:.3f} -> {kept_after:.3f})"
                )

        dns_removed = max(before.dns, 0.0) - max(after.dns, 0.0)
        if dns_removed < -tol:
            problems.append(
                f"{where}: reconstruction added {-dns_removed:.3f}ms "
                "of DNS time"
            )
        elif dns_removed > tol:
            dns = claims.get(id(original), {}).get("dns")
            if dns is not None and dns_removed > dns.duration_ms + tol:
                problems.append(
                    f"{where}: model removed {dns_removed:.3f}ms of DNS "
                    f"but the traced lookup only took "
                    f"{dns.duration_ms:.3f}ms"
                )

        blocked_shed = before.blocked - after.blocked
        if blocked_shed < -tol:
            problems.append(
                f"{where}: reconstruction added {-blocked_shed:.3f}ms "
                "of blocked time"
            )
        touched = (handshake_removed or dns_removed > tol
                   or blocked_shed > tol)
        if touched and not rebuilt.coalesced:
            problems.append(
                f"{where}: reconstruction changed timings of an entry "
                "it did not mark coalesced"
            )
        if not touched and not _close(before.total(), after.total(), tol):
            problems.append(
                f"{where}: reconstruction changed an untouched entry's "
                f"duration ({before.total():.3f} -> {after.total():.3f})"
            )


def validate_archive_trace(
    archive: HarArchive,
    fetch_spans: Sequence[Span],
    dns_pool: _Claimable,
    conn_pool: _Claimable,
    grouper: ServiceGrouper = by_asn,
    options: Optional[ReconstructionOptions] = None,
    tol: float = TOLERANCE_MS,
) -> List[str]:
    """Validate one page's waterfall (and its reconstruction) against
    traced ground truth.  Returns discrepancy strings."""
    problems: List[str] = []
    fetch_pool = _Claimable(fetch_spans)
    claims: Dict[int, Dict[str, Optional[Span]]] = {}
    for entry in archive.entries:
        if entry.status != 200:
            continue
        fetch = fetch_pool.claim(
            lambda s: s.attrs.get("hostname") == entry.hostname
            and s.attrs.get("path") == entry.path
            and _close(s.start_ms, entry.started_at, tol)
        )
        if fetch is None:
            problems.append(
                f"{entry.hostname}{entry.path}: no traced fetch span "
                f"starting at {entry.started_at:.6f}"
            )
            continue
        claims[id(entry)] = _validate_entry_phases(
            entry, fetch, dns_pool, conn_pool, tol, problems
        )
    _validate_reconstruction(archive, claims, grouper, options, tol,
                             problems)
    return problems


def validate_crawl_trace(
    result: CrawlResult,
    spans: Sequence[Span],
    grouper: ServiceGrouper = by_asn,
    options: Optional[ReconstructionOptions] = None,
    tol: float = TOLERANCE_MS,
) -> List[str]:
    """Validate every page of a traced crawl against its spans.

    Spans are grouped by shard (each shard's clock starts at zero, so
    cross-shard times must not be compared), pages are located through
    their ``fetch`` spans' ``page`` attribute, and every successful
    HAR entry plus its Figure 2 reconstruction is checked.
    """
    problems: List[str] = []
    archives = {archive.page.url: archive for archive in result.archives}
    shards = sorted({span.shard for span in spans})
    validated = set()
    for shard in shards:
        shard_spans = [s for s in spans if s.shard == shard]
        fetch_by_page: Dict[str, List[Span]] = {}
        for span in shard_spans:
            if span.name == "fetch":
                page = span.attrs.get("page", "")
                fetch_by_page.setdefault(page, []).append(span)
        dns_pool = _Claimable(
            [s for s in shard_spans if s.name == "dns.query"]
        )
        conn_pool = _Claimable(
            [s for s in shard_spans if s.name == "h2.connection"]
        )
        for page_url, fetch_spans in fetch_by_page.items():
            archive = archives.get(page_url)
            if archive is None:
                problems.append(
                    f"trace has fetch spans for {page_url} but the crawl "
                    "result has no such page"
                )
                continue
            validated.add(page_url)
            problems.extend(validate_archive_trace(
                archive, fetch_spans, dns_pool, conn_pool,
                grouper=grouper, options=options, tol=tol,
            ))
    for archive in result.archives:
        if archive.page.success and archive.page.url not in validated:
            problems.append(
                f"page {archive.page.url} succeeded but has no fetch "
                "spans in the trace"
            )
    return problems


def assert_trace_valid(
    result: CrawlResult,
    spans: Sequence[Span],
    grouper: ServiceGrouper = by_asn,
    options: Optional[ReconstructionOptions] = None,
) -> None:
    """Raise ``AssertionError`` listing every discrepancy (if any)."""
    problems = validate_crawl_trace(result, spans, grouper=grouper,
                                    options=options)
    if problems:
        summary = "\n  ".join(problems[:25])
        more = len(problems) - 25
        if more > 0:
            summary += f"\n  ... and {more} more"
        raise AssertionError(
            f"trace/waterfall mismatch ({len(problems)} problems):\n"
            f"  {summary}"
        )
