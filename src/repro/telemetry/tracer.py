"""Simulated-clock span tracing.

A :class:`Span` is a named interval on the **simulated** clock
(:mod:`repro.netsim.clock` is the only time source), so traces of a
seeded run are bit-for-bit deterministic: same seed, same spans, same
ids, same timestamps -- regardless of wall-clock, host, or how many
worker processes crawled the shards.

The callback-driven simulator cannot use context managers for most
spans (a fetch begins in one event and ends many events later), so the
core API is explicit: :meth:`Tracer.begin` returns the span,
:meth:`Tracer.end` closes it.  ``with tracer.span(...)`` exists for
the synchronous cases.  When tracing is disabled the
:data:`NULL_TRACER` singleton answers every call with a shared no-op
span, keeping the hot paths at one attribute load + one call.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Span:
    """One traced interval (or instant) in simulated milliseconds."""

    span_id: int
    name: str
    category: str
    start_ms: float
    end_ms: float = -1.0
    parent_id: Optional[int] = None
    #: Which crawl shard produced the span; merged traces keep spans
    #: from different shards on separate (pid) tracks because each
    #: shard's simulated clock starts at zero.
    shard: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_ms >= 0.0

    @property
    def duration_ms(self) -> float:
        if not self.finished:
            return 0.0
        return max(0.0, self.end_ms - self.start_ms)

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "name": self.name,
            "cat": self.category,
            "start": self.start_ms,
            "end": self.end_ms,
            "parent": self.parent_id,
            "shard": self.shard,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        return cls(
            span_id=doc["id"],
            name=doc["name"],
            category=doc["cat"],
            start_ms=doc["start"],
            end_ms=doc["end"],
            parent_id=doc["parent"],
            shard=doc.get("shard", 0),
            attrs=dict(doc.get("attrs", {})),
        )


class Tracer:
    """Collects spans against a simulated clock callable."""

    enabled = True

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.spans: List[Span] = []
        self._next_id = 0

    def begin(self, name: str, category: str = "",
              parent: Optional[Span] = None, **attrs) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_ms=self._clock(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        if span.attrs is not attrs:
            span.attrs.update(attrs)
        if not span.finished:
            span.end_ms = self._clock()
        return span

    def instant(self, name: str, category: str = "",
                parent: Optional[Span] = None, **attrs) -> Span:
        span = self.begin(name, category, parent=parent, **attrs)
        span.end_ms = span.start_ms
        return span

    @contextmanager
    def span(self, name: str, category: str = "",
             parent: Optional[Span] = None, **attrs):
        span = self.begin(name, category, parent=parent, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.finished]


#: Shared inert span handed out by :class:`NullTracer`; never stored.
_NULL_SPAN = Span(span_id=-1, name="", category="", start_ms=0.0,
                  end_ms=0.0)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is False so instrumented hot loops can skip even the
    attribute packing for spans when they want literal zero overhead.
    """

    enabled = False
    spans: List[Span] = []

    def begin(self, name: str, category: str = "",
              parent: Optional[Span] = None, **attrs) -> Span:
        return _NULL_SPAN

    def end(self, span: Span, **attrs) -> Span:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "",
                parent: Optional[Span] = None, **attrs) -> Span:
        return _NULL_SPAN

    @contextmanager
    def span(self, name: str, category: str = "",
             parent: Optional[Span] = None, **attrs):
        yield _NULL_SPAN

    def finished_spans(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
