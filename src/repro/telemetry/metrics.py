"""The unified metrics registry.

One :class:`MetricsRegistry` holds every counter, gauge, and histogram
a simulated component emits, keyed by ``(name, labels)``.  The ad-hoc
``*Stats`` dataclasses that used to live in each layer (pool, server,
resolver, middlebox) are rebuilt on top of it via
:class:`RegistryStats`, which preserves their plain-attribute API
(``stats.queries += 1`` still works and still reads back as a number)
while making every counter visible to one exporter.

Registries are cheap, picklable-through-snapshots, and mergeable:
per-shard crawl workers snapshot their registry and the parent absorbs
the snapshots in shard order, so ``--jobs N`` produces the same merged
metrics as ``--jobs 1``.
"""

from __future__ import annotations

import bisect
import math
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Union

LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]

#: Default histogram bucket upper bounds, in the unit of the observed
#: value (ms for durations).  ``inf`` catches the tail.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, math.inf,
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically *used* numeric series (``set`` exists so the
    attribute API of :class:`RegistryStats` can write back ``+=``
    results)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels) or ''}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels) or ''}={self.value})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are cumulative-style upper bounds; percentile estimates
    return the upper bound of the bucket containing the requested
    quantile (conservative, deterministic).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(buckets)
        if not self.bounds or self.bounds[-1] != math.inf:
            self.bounds = self.bounds + (math.inf,)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        # First bound >= value; the trailing inf bound guarantees a hit.
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding quantile ``q`` (0..1).

        No interpolation: mid quantiles return the containing bucket's
        upper bound (conservative, deterministic).  The extremes are
        exact -- ``q <= 0`` returns the observed ``min`` and ``q >= 1``
        the observed ``max`` (likewise when the quantile lands in the
        ``inf`` tail bucket).  An empty histogram reads 0.0.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= target:
                bound = self.bounds[index]
                # Clamp to the observed max: still an upper bound on
                # the true quantile, never past the data.
                return self.max if math.isinf(bound) \
                    else min(bound, self.max)
        return self.max

    def __repr__(self) -> str:
        return (f"Histogram({self.name}{dict(self.labels) or ''} "
                f"count={self.count} mean={self.mean:.2f})")


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All metrics of one component (or one merged crawl).

    Metric identity is ``(name, sorted labels)``; asking for the same
    identity twice returns the same object, asking with a different
    kind raises.  Iteration order is registration order, which is
    deterministic for a deterministic simulation.
    """

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}

    # -- creation / lookup -------------------------------------------------

    def _get_or_create(self, factory, name: str,
                       labels: Mapping[str, object], **kwargs) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1], **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        metric = self._get_or_create(Counter, name, labels)
        if metric.kind != "counter":
            raise TypeError(f"{name} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        metric = self._get_or_create(Gauge, name, labels)
        if metric.kind != "gauge":
            raise TypeError(f"{name} is a {metric.kind}, not a gauge")
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        metric = self._get_or_create(Histogram, name, labels,
                                     buckets=buckets)
        if metric.kind != "histogram":
            raise TypeError(f"{name} is a {metric.kind}, not a histogram")
        return metric

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def value(self, name: str, **labels) -> Union[int, float]:
        """Convenience read of a counter/gauge (0 when absent)."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0
        return metric.value  # type: ignore[union-attr]

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> List[dict]:
        """A JSON-serializable copy (for worker processes and export)."""
        out: List[dict] = []
        for metric in self._metrics.values():
            doc = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": list(metric.labels),
            }
            if isinstance(metric, Histogram):
                doc.update(
                    bounds=[b if not math.isinf(b) else None
                            for b in metric.bounds],
                    bucket_counts=list(metric.bucket_counts),
                    count=metric.count,
                    sum=metric.sum,
                    min=None if math.isinf(metric.min) else metric.min,
                    max=None if math.isinf(metric.max) else metric.max,
                )
            else:
                doc["value"] = metric.value
            out.append(doc)
        return out

    def absorb(self, source: Union["MetricsRegistry", List[dict]],
               prefix: str = "") -> None:
        """Merge ``source`` (a registry or a :meth:`snapshot`) into
        this registry: counters add, gauges take the source value,
        histograms merge bucket-by-bucket."""
        docs = source.snapshot() if isinstance(source, MetricsRegistry) \
            else source
        for doc in docs:
            labels = {key: value for key, value in doc["labels"]}
            name = prefix + doc["name"]
            if doc["kind"] == "counter":
                self.counter(name, **labels).inc(doc["value"])
            elif doc["kind"] == "gauge":
                self.gauge(name, **labels).set(doc["value"])
            else:
                bounds = tuple(
                    math.inf if b is None else b for b in doc["bounds"]
                )
                histogram = self.histogram(name, buckets=bounds, **labels)
                if histogram.bounds != bounds:
                    raise ValueError(
                        f"histogram {name} bucket mismatch on merge"
                    )
                for index, count in enumerate(doc["bucket_counts"]):
                    histogram.bucket_counts[index] += count
                histogram.count += doc["count"]
                histogram.sum += doc["sum"]
                if doc["min"] is not None:
                    histogram.min = min(histogram.min, doc["min"])
                if doc["max"] is not None:
                    histogram.max = max(histogram.max, doc["max"])


class RegistryStats:
    """Base for the per-layer ``*Stats`` objects.

    Subclasses declare ``_prefix`` and ``_counters``; instances expose
    each counter as a plain read/write attribute backed by a registry
    series, so existing call sites (``stats.queries += 1``) and tests
    keep working unchanged.  By default every instance gets a private
    registry; pass ``registry=`` to bind the counters into a shared
    one (labels distinguish instances there).
    """

    _prefix: ClassVar[str] = ""
    _counters: ClassVar[Tuple[str, ...]] = ()
    _counter_set: ClassVar[frozenset] = frozenset()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls._counter_set = frozenset(cls._counters)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 **labels) -> None:
        object.__setattr__(self, "registry",
                           registry if registry is not None
                           else MetricsRegistry())
        object.__setattr__(self, "_labels", dict(labels))
        # Resolve each counter once; attribute access must not pay the
        # registry's label-key construction on every bump.
        object.__setattr__(self, "_cache", {
            name: self.registry.counter(type(self)._prefix + name,
                                        **labels)
            for name in type(self)._counters
        })

    def _series(self, name: str) -> Counter:
        series = self._cache.get(name)
        if series is None:
            series = self.registry.counter(type(self)._prefix + name,
                                           **self._labels)
            self._cache[name] = series
        return series

    def __getattr__(self, name: str):
        if name in type(self)._counter_set:
            return self._series(name).value
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        if name in type(self)._counter_set:
            self._series(name).set(value)
        else:
            object.__setattr__(self, name, value)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={self._series(name).value}"
            for name in type(self)._counters
        )
        return f"{type(self).__name__}({fields})"
