"""``repro.telemetry`` -- simulated-clock tracing and unified metrics.

The simulator knows the ground truth of every DNS lookup, TLS
handshake, and HTTP/2 stream; this package makes that truth visible:

* :class:`~repro.telemetry.tracer.Tracer` records spans against the
  simulated clock (deterministic: same seed, byte-identical trace);
* :class:`~repro.telemetry.metrics.MetricsRegistry` unifies the
  per-layer counters the old ``*Stats`` dataclasses kept ad-hoc;
* :mod:`~repro.telemetry.exporters` writes JSONL, Chrome
  ``trace_event`` (Perfetto-loadable waterfalls), and ASCII summaries;
* :mod:`~repro.telemetry.validation` checks the §4.1 timeline
  reconstruction against traced ground truth (the Figure 2 oracle).

A :class:`Telemetry` bundles one tracer + one registry for one
simulated world (one clock); :data:`NULL_TELEMETRY` is the disabled
instance every layer defaults to, with no-op tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.telemetry.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryStats,
)
from repro.telemetry.tracer import (  # noqa: F401
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


class Telemetry:
    """Tracer + metrics + decision audit for one simulated world.

    ``trace`` and ``audit`` default to ``enabled`` but can be toggled
    independently, so an audited crawl does not have to pay for span
    collection (and vice versa).
    """

    def __init__(self, clock: Callable[[], float],
                 enabled: bool = True,
                 trace: Optional[bool] = None,
                 audit: Optional[bool] = None) -> None:
        from repro.audit.log import NULL_AUDIT, AuditLog

        trace_on = enabled if trace is None else trace
        audit_on = enabled if audit is None else audit
        self.enabled = trace_on or audit_on
        self.tracer = Tracer(clock) if trace_on else NULL_TRACER
        self.audit = AuditLog(clock) if audit_on else NULL_AUDIT
        self.metrics = MetricsRegistry()


#: The shared disabled instance; its registry is never exported.
NULL_TELEMETRY = Telemetry(clock=lambda: 0.0, enabled=False)


@dataclass
class CrawlTrace:
    """Merged telemetry of a (possibly sharded, parallel) crawl.

    Spans and audit events are merged in shard order with globally
    renumbered ids, so the trace is identical whatever ``jobs`` count
    produced it.
    """

    spans: List[Span] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    audit: list = field(default_factory=list)

    def extend(self, spans: List[Span], shard: int) -> None:
        """Adopt one shard's spans: tag the shard, renumber ids after
        the ones already merged."""
        offset = len(self.spans)
        remap = {}
        for span in spans:
            remap[span.span_id] = span.span_id + offset
        for span in spans:
            span.span_id = remap[span.span_id]
            if span.parent_id is not None:
                span.parent_id = remap.get(span.parent_id,
                                           span.parent_id)
            span.shard = shard
            self.spans.append(span)

    def extend_audit(self, events, shard: int) -> None:
        """Adopt one shard's audit events: tag the shard, renumber the
        sequence after the ones already merged."""
        offset = len(self.audit)
        for event in events:
            event.seq += offset
            event.shard = shard
            self.audit.append(event)

    # -- export -----------------------------------------------------------

    def to_jsonl(self) -> str:
        from repro.telemetry.exporters import spans_to_jsonl

        return spans_to_jsonl(self.spans)

    def audit_jsonl(self) -> str:
        from repro.audit.log import events_to_jsonl

        return events_to_jsonl(self.audit)

    def write_chrome_trace(self, path) -> int:
        from repro.telemetry.exporters import write_chrome_trace

        return write_chrome_trace(path, self.spans)

    def metrics_summary(self) -> str:
        from repro.telemetry.exporters import render_metrics_summary

        return render_metrics_summary(self.metrics)


__all__ = [
    "Counter",
    "CrawlTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullTracer",
    "RegistryStats",
    "Span",
    "Telemetry",
    "Tracer",
]
