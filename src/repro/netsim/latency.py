"""Latency and bandwidth model.

Propagation delay is defined between *regions* (e.g. ``"us-east"``,
``"eu-west"``, ``"client-isp"``).  A :class:`LinkSpec` gives the
round-trip time and optional jitter for a region pair; one-way delay is
half the RTT.  Serialization delay for a payload is ``bytes /
bandwidth``; it models the tail of large responses such as oversized
certificates (paper §6.5).

The model is symmetric: the (a, b) spec also covers (b, a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Default RTT used when a region pair has no explicit spec, in ms.
#: 30ms approximates a same-continent client-to-CDN-edge path.
DEFAULT_RTT_MS = 30.0

#: Default bandwidth in bytes per millisecond (== kB/s * 1e-3).
#: 2500 bytes/ms == 20 Mbit/s, a typical broadband profile.
DEFAULT_BANDWIDTH_BPMS = 2500.0


@dataclass(frozen=True)
class LinkSpec:
    """Propagation characteristics for a region pair."""

    rtt_ms: float
    jitter_ms: float = 0.0
    bandwidth_bpms: float = DEFAULT_BANDWIDTH_BPMS

    def __post_init__(self) -> None:
        if self.rtt_ms < 0:
            raise ValueError(f"negative RTT: {self.rtt_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"negative jitter: {self.jitter_ms}")
        if self.bandwidth_bpms <= 0:
            raise ValueError(f"non-positive bandwidth: {self.bandwidth_bpms}")


class LatencyModel:
    """RTT and serialization delay lookups between named regions."""

    def __init__(
        self,
        default: Optional[LinkSpec] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._default = default or LinkSpec(rtt_ms=DEFAULT_RTT_MS)
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._rng = rng
        #: region -> [busy_until_ms, bandwidth_bpms] for regions whose
        #: inbound bandwidth is shared across all of their connections
        #: (e.g. a client's access link).
        self._shared_ingress: Dict[str, list] = {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def set_link(self, region_a: str, region_b: str, spec: LinkSpec) -> None:
        """Register the spec for a region pair (order-insensitive)."""
        self._links[self._key(region_a, region_b)] = spec

    def link(self, region_a: str, region_b: str) -> LinkSpec:
        """Return the spec for a pair, falling back to the default."""
        return self._links.get(self._key(region_a, region_b), self._default)

    def rtt(self, region_a: str, region_b: str) -> float:
        """Round-trip time in ms, with jitter applied if an RNG was given.

        Jitter is drawn uniformly from ``[-jitter, +jitter]`` and clamped
        so the RTT never goes below a quarter of its base value.
        """
        spec = self.link(region_a, region_b)
        rtt = spec.rtt_ms
        if self._rng is not None and spec.jitter_ms > 0:
            rtt += float(self._rng.uniform(-spec.jitter_ms, spec.jitter_ms))
            rtt = max(rtt, spec.rtt_ms / 4.0)
        return rtt

    def one_way(self, region_a: str, region_b: str) -> float:
        """One-way propagation delay in ms (half the RTT)."""
        return self.rtt(region_a, region_b) / 2.0

    def serialization_delay(
        self, region_a: str, region_b: str, nbytes: int
    ) -> float:
        """Time in ms for ``nbytes`` to drain at the link bandwidth."""
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        spec = self.link(region_a, region_b)
        return nbytes / spec.bandwidth_bpms

    def transfer_delay(
        self, region_a: str, region_b: str, nbytes: int
    ) -> float:
        """One-way delay plus serialization for a payload of ``nbytes``."""
        return self.one_way(region_a, region_b) + self.serialization_delay(
            region_a, region_b, nbytes
        )

    # -- shared ingress bottleneck -------------------------------------------

    def enable_shared_ingress(
        self, region: str, bandwidth_bpms: float
    ) -> None:
        """Make ``region``'s inbound bandwidth a single shared queue.

        Without this, every connection gets the link bandwidth to
        itself; with it, parallel downloads into the region contend --
        which is what makes sharding's extra connections fail to buy
        extra throughput on a real access link.
        """
        if bandwidth_bpms <= 0:
            raise ValueError(f"bad bandwidth {bandwidth_bpms}")
        self._shared_ingress[region] = [0.0, bandwidth_bpms]

    def ingress_completion(
        self, region: str, now: float, nbytes: int
    ) -> Optional[float]:
        """Time the last byte clears ``region``'s shared ingress queue,
        or ``None`` when the region has a dedicated (unshared) link."""
        state = self._shared_ingress.get(region)
        if state is None:
            return None
        start = max(now, state[0])
        done = start + nbytes / state[1]
        state[0] = done
        return done

    def reset_shared_ingress(self) -> None:
        """Drain all shared queues (e.g. between crawled pages)."""
        for state in self._shared_ingress.values():
            state[0] = 0.0
