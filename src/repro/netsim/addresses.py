"""IPv4 address helpers and deterministic allocation.

The dataset generator assigns address blocks to providers/ASes; this
module provides the allocator and simple validation, without depending
on :mod:`ipaddress` semantics we don't need (we never route for real).
"""

from __future__ import annotations

from typing import Iterator


def is_valid_ipv4(address: str) -> bool:
    """Return ``True`` for a dotted-quad IPv4 string."""
    parts = address.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit():
            return False
        if len(part) > 1 and part[0] == "0":
            return False
        if int(part) > 255:
            return False
    return True


def int_to_ipv4(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def ipv4_to_int(address: str) -> int:
    """Convert dotted-quad notation to a 32-bit integer."""
    if not is_valid_ipv4(address):
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in address.split("."):
        value = (value << 8) | int(part)
    return value


class AddressAllocator:
    """Hands out IPv4 addresses from sequential /24-aligned blocks.

    Each call to :meth:`allocate_block` reserves a fresh /24 and returns
    a generator of its host addresses (``.1`` .. ``.254``); callers that
    need more than 254 addresses allocate more blocks.  Allocation order
    is deterministic, so a fixed seed upstream yields a fixed topology.
    """

    #: First /24 handed out; 10.0.0.0/8 keeps everything in private space.
    BASE = ipv4_to_int("10.0.0.0")
    #: One past the last allowed block start (10.255.255.0).
    LIMIT = ipv4_to_int("10.255.255.0")

    def __init__(self) -> None:
        self._next_block = self.BASE

    def allocate_block(self) -> Iterator[str]:
        """Reserve the next /24 and yield its usable host addresses."""
        block = self._next_block
        if block >= self.LIMIT:
            raise RuntimeError("address space exhausted (10.0.0.0/8)")
        self._next_block += 256
        return (int_to_ipv4(block + host) for host in range(1, 255))

    def allocate(self, count: int) -> list:
        """Allocate ``count`` individual addresses across as many blocks
        as needed, returned as a list of dotted-quad strings."""
        if count < 0:
            raise ValueError(f"negative count: {count}")
        out: list = []
        while len(out) < count:
            for address in self.allocate_block():
                out.append(address)
                if len(out) == count:
                    break
        return out
