"""In-memory duplex transports (simulated TCP connections).

A :class:`Transport` is one endpoint of an established connection.  Data
sent on one endpoint is delivered to the peer's ``on_data`` callback
after the link's one-way propagation delay plus serialization delay.
Delivery is strictly in-order per direction: a small message sent after
a large one cannot overtake it, which mirrors TCP byte-stream semantics
and matters for HTTP/2 frame ordering.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.events import EventLoop
from repro.netsim.latency import LatencyModel


class TransportClosed(Exception):
    """Raised when sending on a closed transport."""


class Transport:
    """One endpoint of a simulated, connected byte stream."""

    def __init__(
        self,
        loop: EventLoop,
        latency: LatencyModel,
        local_region: str,
        remote_region: str,
        local_address: str,
        remote_address: str,
    ) -> None:
        self._loop = loop
        self._latency = latency
        self.local_region = local_region
        self.remote_region = remote_region
        self.local_address = local_address
        self.remote_address = remote_address
        self.peer: Optional["Transport"] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.closed = False
        #: Set when the connection died to a mid-path RST (:meth:`abort`)
        #: rather than an orderly close.  Writes racing an RST vanish on
        #: the wire instead of raising -- endpoints that have not yet
        #: observed the teardown may still be mid-callback.
        self.aborted = False
        self.bytes_sent = 0
        self.bytes_received = 0
        #: On-path interposer (middlebox model): called with each chunk
        #: this endpoint sends; returning False aborts the connection
        #: instead of delivering -- a mid-path RST.
        self.outbound_inspector: Optional[Callable[[bytes], bool]] = None
        # Earliest time the next in-flight chunk may arrive at the peer,
        # enforcing in-order delivery under serialization delay.
        self._next_arrival = 0.0

    @staticmethod
    def pair(
        loop: EventLoop,
        latency: LatencyModel,
        client_region: str,
        server_region: str,
        client_address: str,
        server_address: str,
    ) -> tuple:
        """Create a connected (client_endpoint, server_endpoint) pair."""
        client = Transport(
            loop, latency, client_region, server_region,
            client_address, server_address,
        )
        server = Transport(
            loop, latency, server_region, client_region,
            server_address, client_address,
        )
        client.peer = server
        server.peer = client
        return client, server

    def send(self, data: bytes) -> None:
        """Queue ``data`` for in-order delivery to the peer."""
        if self.closed:
            if self.aborted:
                return  # write racing a mid-path RST: dropped, not an error
            raise TransportClosed(
                f"send on closed transport to {self.remote_address}"
            )
        if not data:
            return
        peer = self.peer
        if peer is None:
            raise TransportClosed("transport has no peer")
        self.bytes_sent += len(data)
        if self.outbound_inspector is not None:
            if not self.outbound_inspector(data):
                self.abort()
                return
        now = self._loop.now()
        shared_done = self._latency.ingress_completion(
            self.remote_region, now, len(data)
        )
        if shared_done is not None:
            # Receiver's inbound link is a shared queue: the payload
            # clears the queue, then propagates.
            arrival = shared_done + self._latency.one_way(
                self.local_region, self.remote_region
            )
        else:
            arrival = now + self._latency.transfer_delay(
                self.local_region, self.remote_region, len(data)
            )
        # In-order delivery: never arrive before a previously sent chunk.
        arrival = max(arrival, self._next_arrival)
        self._next_arrival = arrival

        def deliver() -> None:
            if peer.closed:
                return
            peer.bytes_received += len(data)
            if peer.on_data is not None:
                peer.on_data(data)

        self._loop.schedule_at(arrival, deliver)

    def close(self, notify_peer: bool = True) -> None:
        """Close this endpoint; optionally deliver a FIN to the peer.

        The peer's ``on_close`` fires after one propagation delay, like a
        FIN/RST arriving over the wire.  Closing an already-closed
        transport is a no-op.
        """
        if self.closed:
            return
        self.closed = True
        if self.on_close is not None:
            self.on_close()
        peer = self.peer
        if notify_peer and peer is not None and not peer.closed:
            # The FIN travels in sequence order: it must not overtake
            # data already in flight (e.g. a TLS alert sent just before
            # closing).
            arrival = max(
                self._loop.now()
                + self._latency.one_way(self.local_region,
                                        self.remote_region),
                self._next_arrival,
            )

            def deliver_fin() -> None:
                if not peer.closed:
                    peer.closed = True
                    if peer.on_close is not None:
                        peer.on_close()

            self._loop.schedule_at(arrival, deliver_fin)

    def abort(self) -> None:
        """Close both endpoints immediately (RST without propagation).

        Used by the non-compliant middlebox model, which tears down the
        connection from the middle of the path.
        """
        for endpoint in (self, self.peer):
            if endpoint is not None and not endpoint.closed:
                endpoint.aborted = True
                endpoint.closed = True
                if endpoint.on_close is not None:
                    endpoint.on_close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"Transport({self.local_address}->{self.remote_address}, {state})"
        )
