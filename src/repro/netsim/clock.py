"""Simulated time.

All times in the simulation are floating-point **milliseconds** from the
start of the run.  Milliseconds are the natural unit for web-performance
work: HAR timings, RTTs and page-load times are all conventionally
reported in ms.
"""

from __future__ import annotations


class SimClock:
    """A monotonic simulated clock.

    The clock can only move forward.  It is advanced exclusively by the
    :class:`~repro.netsim.events.EventLoop` as it executes events; user
    code reads it through :meth:`now`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in milliseconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ValueError` if ``when`` is in the past; simulated
        time is monotonic by construction.
        """
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = float(when)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f}ms)"
