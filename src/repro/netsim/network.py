"""Host registry, listening services, and connection establishment.

A :class:`Network` owns the event loop and latency model, registers
:class:`Host` objects with IPv4 addresses and regions, and lets services
listen on ``(ip, port)``.  :meth:`Network.connect` models the TCP
three-way handshake: the caller's ``on_connect`` callback fires one full
RTT after the SYN, matching the 1-RTT connect cost browsers observe.

An optional *tap* can be installed on the network; the middlebox model
(paper §6.7) uses it to interpose on new connections for selected
clients.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.events import EventLoop
from repro.netsim.latency import LatencyModel
from repro.netsim.transport import Transport


class ConnectionRefused(Exception):
    """No service is listening at the requested (ip, port)."""


class Host:
    """A machine on the simulated network."""

    def __init__(self, name: str, region: str, addresses: List[str]) -> None:
        if not addresses:
            raise ValueError(f"host {name!r} needs at least one address")
        self.name = name
        self.region = region
        self.addresses = list(addresses)

    @property
    def primary_address(self) -> str:
        return self.addresses[0]

    def __repr__(self) -> str:
        return f"Host({self.name!r}, {self.region!r}, {self.addresses})"


class Service:
    """A listener bound to (ip, port) on some host.

    ``acceptor`` is called with the server-side :class:`Transport` for
    each new connection.
    """

    def __init__(
        self,
        host: Host,
        ip: str,
        port: int,
        acceptor: Callable[[Transport], None],
    ) -> None:
        self.host = host
        self.ip = ip
        self.port = port
        self.acceptor = acceptor
        self.connections_accepted = 0


#: A tap receives (client_host, server_ip, port, client_transport,
#: server_transport) and may wrap or replace either endpoint's callbacks.
NetworkTap = Callable[[Host, str, int, Transport, Transport], None]


class Network:
    """The simulated internet: hosts, listeners, and connections."""

    def __init__(
        self,
        loop: Optional[EventLoop] = None,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.latency = latency if latency is not None else LatencyModel()
        self._hosts: Dict[str, Host] = {}
        self._by_address: Dict[str, Host] = {}
        self._services: Dict[Tuple[str, int], Service] = {}
        self._datagram_services: Dict[Tuple[str, int], Service] = {}
        self._taps: List[NetworkTap] = []
        self.connections_opened = 0

    # -- host management --------------------------------------------------

    def add_host(self, host: Host) -> Host:
        """Register a host; all its addresses must be unused."""
        if host.name in self._hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        for address in host.addresses:
            if address in self._by_address:
                raise ValueError(f"address {address} already in use")
        self._hosts[host.name] = host
        for address in host.addresses:
            self._by_address[address] = host
        return host

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def host_for_address(self, address: str) -> Optional[Host]:
        return self._by_address.get(address)

    def add_address(self, host: Host, address: str) -> None:
        """Attach an extra address to an existing host (addressing agility,
        as used by the IP-coalescing deployment in paper §5.2)."""
        if address in self._by_address:
            raise ValueError(f"address {address} already in use")
        host.addresses.append(address)
        self._by_address[address] = host

    def remove_address(self, host: Host, address: str) -> None:
        """Detach an address (used to undo deployment DNS/IP changes)."""
        if self._by_address.get(address) is not host:
            raise ValueError(f"{address} is not bound to {host.name}")
        host.addresses.remove(address)
        del self._by_address[address]

    # -- services ----------------------------------------------------------

    def listen(
        self,
        host: Host,
        ip: str,
        port: int,
        acceptor: Callable[[Transport], None],
    ) -> Service:
        """Bind ``acceptor`` to (ip, port); the ip must belong to ``host``."""
        if ip not in host.addresses:
            raise ValueError(f"{ip} is not an address of {host.name}")
        key = (ip, port)
        if key in self._services:
            raise ValueError(f"{ip}:{port} already has a listener")
        service = Service(host, ip, port, acceptor)
        self._services[key] = service
        return service

    def unlisten(self, ip: str, port: int) -> None:
        self._services.pop((ip, port), None)

    def service_at(self, ip: str, port: int) -> Optional[Service]:
        return self._services.get((ip, port))

    def listen_datagram(
        self,
        host: Host,
        ip: str,
        port: int,
        acceptor: Callable[[Transport], None],
    ) -> Service:
        """Bind a datagram (UDP-style) listener to (ip, port).

        Datagram listeners live in a separate namespace from stream
        listeners, so a QUIC endpoint can share 443 with a TCP one.
        """
        if ip not in host.addresses:
            raise ValueError(f"{ip} is not an address of {host.name}")
        key = (ip, port)
        if key in self._datagram_services:
            raise ValueError(f"{ip}:{port} already has a datagram listener")
        service = Service(host, ip, port, acceptor)
        self._datagram_services[key] = service
        return service

    def unlisten_datagram(self, ip: str, port: int) -> None:
        self._datagram_services.pop((ip, port), None)

    def datagram_service_at(self, ip: str, port: int) -> Optional[Service]:
        return self._datagram_services.get((ip, port))

    def services_owned_by(self, owner: object) -> List[Tuple[Service, bool]]:
        """All ``(service, is_datagram)`` listeners whose acceptor is a
        bound method of ``owner`` (e.g. an H2Server), in registration
        order.  Used by fault injection to find every port an edge
        answers on."""
        found: List[Tuple[Service, bool]] = []
        for service in self._services.values():
            if getattr(service.acceptor, "__self__", None) is owner:
                found.append((service, False))
        for service in self._datagram_services.values():
            if getattr(service.acceptor, "__self__", None) is owner:
                found.append((service, True))
        return found

    def suspend_service(self, service: Service, datagram: bool = False) -> None:
        """Remove a listener while keeping the :class:`Service` object
        (and its counters) alive so :meth:`resume_service` can restore
        it.  New connection attempts are refused while suspended."""
        table = self._datagram_services if datagram else self._services
        key = (service.ip, service.port)
        if table.get(key) is not service:
            raise ValueError(
                f"{service.ip}:{service.port} is not bound to this service"
            )
        del table[key]

    def resume_service(self, service: Service, datagram: bool = False) -> None:
        """Re-register a previously suspended listener."""
        table = self._datagram_services if datagram else self._services
        key = (service.ip, service.port)
        if key in table:
            raise ValueError(f"{service.ip}:{service.port} already has a listener")
        table[key] = service

    # -- taps ---------------------------------------------------------------

    def add_tap(self, tap: NetworkTap) -> None:
        """Install an on-path interposer applied to every new connection."""
        self._taps.append(tap)

    def remove_tap(self, tap: NetworkTap) -> None:
        self._taps.remove(tap)

    # -- connections ---------------------------------------------------------

    def connect(
        self,
        client: Host,
        server_ip: str,
        port: int,
        on_connect: Callable[[Transport], None],
        on_refused: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Open a TCP connection from ``client`` to ``server_ip:port``.

        ``on_connect`` receives the client-side transport one RTT after
        now (SYN, SYN-ACK).  If nothing is listening, ``on_refused`` is
        called after one RTT instead (RST comes back); without an
        ``on_refused`` handler the error propagates when the event runs.
        """
        service = self._services.get((server_ip, port))
        if service is None:
            rtt = self.latency.rtt(client.region, "unknown-region")
            error = ConnectionRefused(f"nothing listening at {server_ip}:{port}")

            def refuse() -> None:
                if on_refused is not None:
                    on_refused(error)
                else:
                    raise error

            self.loop.schedule(rtt, refuse)
            return

        rtt = self.latency.rtt(client.region, service.host.region)
        client_end, server_end = Transport.pair(
            self.loop,
            self.latency,
            client.region,
            service.host.region,
            client.primary_address,
            server_ip,
        )
        self.connections_opened += 1
        service.connections_accepted += 1
        for tap in self._taps:
            tap(client, server_ip, port, client_end, server_end)

        def establish() -> None:
            # The server learns of the connection half an RTT after the
            # SYN; the client's connect completes a full RTT after it.
            service.acceptor(server_end)

        def complete() -> None:
            if client_end.closed:
                # The connection was torn down (server crash, on-path
                # RST) between the server's accept and the client's
                # connect completing: the client sees a refusal, not a
                # transport it could never use.
                error = ConnectionRefused(
                    f"connection reset by {server_ip}:{port}"
                )
                if on_refused is not None:
                    on_refused(error)
                else:
                    raise error
                return
            on_connect(client_end)

        self.loop.schedule(rtt / 2.0, establish)
        self.loop.schedule(rtt, complete)

    def connect_datagram(
        self,
        client: Host,
        server_ip: str,
        port: int,
        on_refused: Optional[Callable[[Exception], None]] = None,
    ) -> Optional[Transport]:
        """Open a datagram flow from ``client`` to ``server_ip:port``.

        Unlike :meth:`connect` there is no handshake: the client-side
        transport is returned synchronously and the first datagram can
        go out immediately (QUIC folds transport setup into its
        cryptographic handshake).  Data still pays the one-way path
        latency per flight.  Network taps do not apply: a QUIC flow is
        encrypted end-to-end from the first packet, so the on-path
        middlebox model has nothing it can parse.

        Returns ``None`` when nothing is listening; ``on_refused`` (if
        given) fires one RTT later, when the ICMP unreachable would
        arrive.
        """
        service = self._datagram_services.get((server_ip, port))
        if service is None:
            rtt = self.latency.rtt(client.region, "unknown-region")
            error = ConnectionRefused(
                f"no datagram listener at {server_ip}:{port}"
            )

            def refuse() -> None:
                if on_refused is not None:
                    on_refused(error)
                else:
                    raise error

            self.loop.schedule(rtt, refuse)
            return None

        client_end, server_end = Transport.pair(
            self.loop,
            self.latency,
            client.region,
            service.host.region,
            client.primary_address,
            server_ip,
        )
        self.connections_opened += 1
        service.connections_accepted += 1
        # The server side exists as soon as the flow does; its channel
        # only learns anything when the client's first flight lands.
        service.acceptor(server_end)
        return client_end
