"""Discrete-event network simulation substrate.

Every higher layer in :mod:`repro` (DNS, TLS, HTTP/2, browsers, the CDN
deployment) runs over this package.  The simulation is fully
deterministic: the only time source is :class:`SimClock`, all randomness
comes from explicit ``numpy.random.Generator`` instances, and events are
executed in (time, insertion-order) order.

The key abstractions are:

* :class:`SimClock` / :class:`EventLoop` -- simulated time and the event
  queue that advances it.
* :class:`LatencyModel` -- round-trip times between regions, plus
  bandwidth-based serialization delay for large payloads.
* :class:`Network` -- the registry of hosts and listening services, and
  the factory for :class:`Transport` pairs (simulated TCP connections).
* :class:`Host` / :class:`Transport` -- endpoints and in-memory duplex
  byte pipes with simulated propagation delay.
"""

from repro.netsim.clock import SimClock
from repro.netsim.events import EventLoop, Event
from repro.netsim.latency import LatencyModel, LinkSpec
from repro.netsim.addresses import AddressAllocator, is_valid_ipv4
from repro.netsim.transport import Transport, TransportClosed
from repro.netsim.network import Network, Host, Service, ConnectionRefused

__all__ = [
    "SimClock",
    "EventLoop",
    "Event",
    "LatencyModel",
    "LinkSpec",
    "AddressAllocator",
    "is_valid_ipv4",
    "Transport",
    "TransportClosed",
    "Network",
    "Host",
    "Service",
    "ConnectionRefused",
]
