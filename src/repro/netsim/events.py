"""The discrete-event loop.

Events are ``(time, sequence, callback)`` triples kept in a heap.  The
sequence number breaks ties so that two events scheduled for the same
instant run in the order they were scheduled, which keeps the whole
simulation deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.netsim.clock import SimClock


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Instances sort by ``(when, seq)``, which is what the heap relies on.
    """

    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """A deterministic discrete-event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Event] = []
        self._seq = 0
        self._executed = 0

    @property
    def events_executed(self) -> int:
        """Number of events run so far (useful for loop-progress tests)."""
        return self._executed

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now()

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` ms from now.

        A zero delay is allowed and runs after already-queued events for
        the current instant.  Negative delays are rejected.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.clock.now() + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule at {when}, clock is already at {self.clock.now()}"
            )
        event = Event(when=when, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event, if any.  Returns ``False`` when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.callback()
            self._executed += 1
            return True
        return False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains.  Returns events executed.

        ``max_events`` guards against accidental infinite self-scheduling
        loops; hitting it raises :class:`RuntimeError` rather than
        silently hanging the test suite.
        """
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    "likely a self-scheduling loop"
                )
        return count

    def run_until(self, when: float, max_events: int = 10_000_000) -> int:
        """Run all events scheduled strictly before or at time ``when``.

        The clock finishes at exactly ``when`` even if the last event was
        earlier, so callers can reason about elapsed wall-clock windows.
        """
        count = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.when > when:
                break
            self.step()
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events before {when}"
                )
        if when > self.clock.now():
            self.clock.advance_to(when)
        return count
