"""The discrete-event loop.

Events are ``(time, sequence, event)`` triples kept in a heap.  The
sequence number breaks ties so that two events scheduled for the same
instant run in the order they were scheduled, which keeps the whole
simulation deterministic.

Heap entries are plain tuples, so ordering resolves entirely inside
the C tuple comparison -- the :class:`Event` handle itself is never
compared (sequence numbers are unique) and exists only to carry the
callback and the ``cancel`` flag.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.netsim.clock import SimClock


class Event:
    """A single scheduled callback.

    Instances sort by ``(when, seq)``, which is what the heap relies on.
    """

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.when, self.seq) == (other.when, other.seq)

    def __repr__(self) -> str:
        return (
            f"Event(when={self.when!r}, seq={self.seq!r}, "
            f"callback={self.callback!r}, cancelled={self.cancelled!r})"
        )


class EventLoop:
    """A deterministic discrete-event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._executed = 0

    @property
    def events_executed(self) -> int:
        """Number of events run so far (useful for loop-progress tests)."""
        return self._executed

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now()

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` ms from now.

        A zero delay is allowed and runs after already-queued events for
        the current instant.  Negative delays are rejected.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.clock.now() + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule at {when}, clock is already at {self.clock.now()}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event, if any.  Returns ``False`` when idle."""
        heap = self._heap
        while heap:
            when, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.clock.advance_to(when)
            event.callback()
            self._executed += 1
            return True
        return False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains.  Returns events executed.

        ``max_events`` guards against accidental infinite self-scheduling
        loops; hitting it raises :class:`RuntimeError` rather than
        silently hanging the test suite.
        """
        heap = self._heap
        heappop = heapq.heappop
        advance_to = self.clock.advance_to
        count = 0
        while heap:
            when, _seq, event = heappop(heap)
            if event.cancelled:
                continue
            advance_to(when)
            event.callback()
            self._executed += 1
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; "
                    "likely a self-scheduling loop"
                )
        return count

    def run_until(self, when: float, max_events: int = 10_000_000) -> int:
        """Run all events scheduled strictly before or at time ``when``.

        The clock finishes at exactly ``when`` even if the last event was
        earlier, so callers can reason about elapsed wall-clock windows.
        """
        heap = self._heap
        heappop = heapq.heappop
        advance_to = self.clock.advance_to
        count = 0
        while heap:
            head_when, _head_seq, head_event = heap[0]
            if head_event.cancelled:
                heappop(heap)
                continue
            if head_when > when:
                break
            heappop(heap)
            advance_to(head_when)
            head_event.callback()
            self._executed += 1
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events before {when}"
                )
        if when > self.clock.now():
            self.clock.advance_to(when)
        return count
