"""The fault injector: arms a FaultSchedule against one world.

One :class:`FaultInjector` serves one shard.  It is armed after the
world (and the crawler's resolver) exist but before the crawl starts,
and does three things:

* schedules an **activation** callback per fault at ``fault.at`` on
  the world's event loop -- the same simulated clock every other
  event uses, so fault timing is byte-identical across ``--jobs``;
* installs the **passive machinery** each fault kind needs (network
  taps, transport inspectors, a latency-model wrapper, a resolver
  wrapper, server connection observers) -- all window-gated, so a
  fault only acts between ``at`` and ``at + duration``;
* attributes every connection it tears down to the fault that killed
  it, recording the **blast radius**: distinct hostnames, served
  requests, and client endpoints that were riding the connection.

The empty schedule arms nothing at all: no taps, no wrappers, no
observers, and no RNG construction.  That is the non-perturbation
invariant the CI gate enforces -- a chaos run with no faults must be
byte-identical to a plain crawl.

Randomized faults (``rate < 1``) draw from per-fault generators
derived from ``(run seed, chaos domain, shard, fault index, fault
seed)``, so adding a fault to a schedule never shifts the draws of an
existing one, and the crawler's own decision RNG is never touched.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.chaos.report import FaultTally
from repro.chaos.schedule import ChaosError, FaultSchedule, FaultSpec
from repro.deployment.middlebox import BuggyMiddlebox, _ConnectionInspector
from repro.dnssim.records import DnsAnswer, normalize_name
from repro.h2.errors import ErrorCode
from repro.h2.server import H2Server, ServerConnection
from repro.netsim.latency import LinkSpec
from repro.netsim.network import Host, Service
from repro.netsim.transport import Transport

#: Seed-derivation domains (see repro.dataset.shard.derive_seed):
#: 0/1 belong to the world/crawler, 2/3 to traffic.  Chaos claims 4
#: for the injector and 5 for retry jitter.
CHAOS_SEED_DOMAIN = 4
RETRY_SEED_DOMAIN = 5

_TAP_KINDS = {"packet_loss", "packet_corrupt", "tls_fail",
              "middlebox_teardown"}
_REGISTRY_KINDS = _TAP_KINDS | {"edge_crash", "goaway_storm"}


class FaultInjector:
    """Arms one schedule against one world (one shard)."""

    def __init__(
        self,
        world,
        schedule: FaultSchedule,
        seed: int,
        resolver=None,
        audit=NULL_AUDIT,
    ) -> None:
        self.world = world
        self.schedule = schedule
        self.network = world.network
        self.loop = world.network.loop
        self.resolver = resolver
        self.audit = audit
        self._seed = int(seed)
        self.tallies: List[FaultTally] = [
            FaultTally(name=fault.name, kind=fault.kind)
            for fault in schedule.faults
        ]
        self._rngs: List[Optional[np.random.Generator]] = [None] * len(
            schedule.faults
        )
        #: Live server-side connections, for blast attribution and for
        #: crash/storm kills: transport -> (server, connection), plus
        #: an acceptance-ordered set per server.
        self._conn_by_transport: Dict[
            Transport, Tuple[H2Server, ServerConnection]
        ] = {}
        self._live_by_server: Dict[int, Dict[ServerConnection, None]] = {}
        #: Listeners pulled by edge_crash / quic_blackhole, per fault
        #: index, awaiting restoration.
        self._suspended: Dict[int, List[Tuple[Service, bool]]] = {}
        self._middlebox: Optional[BuggyMiddlebox] = None
        self._armed = False

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Install everything the schedule needs.  Idempotent is not
        required; arming twice is a bug."""
        if self._armed:
            raise ChaosError("injector already armed")
        self._armed = True
        if self.schedule.empty:
            return
        faults = self.schedule.faults
        kinds = {fault.kind for fault in faults}
        for index, fault in enumerate(faults):
            self._rngs[index] = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self._seed,
                    spawn_key=(int(index), int(fault.seed)),
                )
            )
        if kinds & {"dns_servfail", "dns_timeout", "dns_stale"}:
            if self.resolver is None:
                raise ChaosError(
                    "schedule contains DNS faults but the injector has "
                    "no resolver to wrap"
                )
            self._wrap_resolver()
        if "latency_spike" in kinds:
            self._wrap_latency()
        if kinds & _REGISTRY_KINDS:
            self._watch_servers()
        if kinds & _TAP_KINDS:
            if kinds & {"middlebox_teardown"}:
                self._middlebox = BuggyMiddlebox(
                    self.network, protected_clients=set()
                )
                self._middlebox.audit = self.audit
            self.network.add_tap(self._tap)
        for index, fault in enumerate(faults):
            self.loop.schedule_at(
                fault.at,
                lambda index=index, fault=fault: self._activate(index, fault),
            )
            until = fault.until
            if fault.kind in ("edge_crash", "quic_blackhole") \
                    and until != float("inf"):
                self.loop.schedule_at(
                    until,
                    lambda index=index, fault=fault:
                        self._restore(index, fault),
                )

    # -- fault bookkeeping -------------------------------------------------

    def _matches(self, pattern: str, name: str) -> bool:
        return not pattern or fnmatchcase(name, pattern)

    def _budget_ok(self, index: int) -> bool:
        fault = self.schedule.faults[index]
        return fault.count == 0 or self.tallies[index].events < fault.count

    def _note_event(self, index: int) -> None:
        self.tallies[index].events += 1

    def _record(self, reason: ReasonCode, decision: str, index: int,
                **attrs) -> None:
        if self.audit.enabled:
            self.audit.record(
                "fault", reason, decision=decision,
                fault=self.tallies[index].name,
                fault_kind=self.tallies[index].kind, **attrs,
            )

    def _all_servers(self) -> List[H2Server]:
        """Every H2Server in the world, deduplicated, in construction
        order (providers, tail CDNs, per-site origins)."""
        servers: List[H2Server] = []
        seen: set = set()
        candidates = (
            list(self.world.provider_servers.values())
            + list(self.world.tail_cdn_servers.values())
            + [site.server for site in self.world.sites]
        )
        for server in candidates:
            if id(server) not in seen:
                seen.add(id(server))
                servers.append(server)
        return servers

    def _matching_servers(self, pattern: str) -> List[H2Server]:
        return [
            server for server in self._all_servers()
            if self._matches(pattern, server.host.name)
        ]

    # -- live-connection registry -----------------------------------------

    def _watch_servers(self) -> None:
        for server in self._all_servers():
            self._live_by_server[id(server)] = {}
            previous = server.connection_observer

            def observer(event: str, connection: ServerConnection,
                         server=server, previous=previous) -> None:
                if previous is not None:
                    previous(event, connection)
                transport = connection.channel.transport
                if event == "accepted":
                    self._conn_by_transport[transport] = (server, connection)
                    self._live_by_server[id(server)][connection] = None
                elif event == "closed":
                    self._conn_by_transport.pop(transport, None)
                    self._live_by_server[id(server)].pop(connection, None)

            server.connection_observer = observer

    def _live(self, server: H2Server) -> List[ServerConnection]:
        return list(self._live_by_server.get(id(server), ()))

    def _account_loss(self, index: int, transport: Transport) -> None:
        """Attribute one torn-down connection to fault ``index``.

        Connections that never finished their TLS handshake carried
        nothing, so they count toward ``immature_lost`` (and the
        fault's event count) but stay out of the blast-radius
        denominator -- the radius measures what was *riding* lost
        connections, per the paper's coalescing concern."""
        tally = self.tallies[index]
        entry = self._conn_by_transport.get(transport)
        hostnames: set = set()
        requests = 0
        sni = ""
        if entry is not None:
            _, connection = entry
            sni = connection.sni
            hostnames = {
                authority for _, authority, _ in connection.request_log
            }
            if not hostnames and sni:
                hostnames = {sni}
            requests = len(connection.request_log)
        if not hostnames:
            tally.immature_lost += 1
            return
        tally.connections_lost += 1
        client = transport.remote_address
        if client:
            tally.clients.add(str(client))
        coalesced = len(hostnames) > 1
        if coalesced:
            tally.coalesced_lost += 1
        tally.hostnames_affected += len(hostnames)
        tally.requests_affected += requests
        self._record(
            ReasonCode.CONN_LOST_COALESCED if coalesced
            else ReasonCode.FAULT_INJECTED,
            "conn-lost", index, hostname=sni,
            hostnames=len(hostnames), requests=requests,
        )

    # -- activation / restoration -----------------------------------------

    def _activate(self, index: int, fault: FaultSpec) -> None:
        self.tallies[index].fired += 1
        self._record(ReasonCode.FAULT_INJECTED, "activate", index)
        if fault.kind == "edge_crash":
            self._crash_edges(index, fault)
        elif fault.kind == "goaway_storm":
            self._goaway_storm(index, fault)
        elif fault.kind == "quic_blackhole":
            self._blackhole_quic(index, fault)
        elif fault.kind in ("cert_rotation", "cert_expiry"):
            self._swap_certificates(index, fault)

    def _restore(self, index: int, fault: FaultSpec) -> None:
        for service, datagram in self._suspended.pop(index, ()):  # noqa: B020
            self.network.resume_service(service, datagram=datagram)
        self._record(ReasonCode.FAULT_INJECTED, "restore", index)

    def _crash_edges(self, index: int, fault: FaultSpec) -> None:
        suspended = self._suspended.setdefault(index, [])
        for server in self._matching_servers(fault.target):
            services = self.network.services_owned_by(server)
            for service, datagram in services:
                self.network.suspend_service(service, datagram=datagram)
                suspended.append((service, datagram))
            if services:
                self._note_event(index)
            for connection in self._live(server):
                transport = connection.channel.transport
                if transport.closed:
                    continue
                self._note_event(index)
                self._account_loss(index, transport)
                transport.abort()

    def _goaway_storm(self, index: int, fault: FaultSpec) -> None:
        """Every matching edge sends GOAWAY ENHANCE_YOUR_CALM on all
        its live h2 connections -- the overload refusal, but applied
        to established traffic (a rolling restart in the wild)."""
        for server in self._matching_servers(fault.target):
            for connection in self._live(server):
                transport = connection.channel.transport
                if transport.closed or connection.conn is None:
                    continue
                self._note_event(index)
                self._account_loss(index, transport)
                server.stats.overload_goaways += 1
                connection.conn.send_goaway(ErrorCode.ENHANCE_YOUR_CALM)
                connection._flush()
                server.notify_connection_event("overload_goaway", connection)
                connection.channel.close()

    def _blackhole_quic(self, index: int, fault: FaultSpec) -> None:
        suspended = self._suspended.setdefault(index, [])
        for server in self._matching_servers(fault.target):
            for service, datagram in self.network.services_owned_by(server):
                if not datagram:
                    continue
                self.network.suspend_service(service, datagram=True)
                suspended.append((service, True))
                self._note_event(index)

    def _swap_certificates(self, index: int, fault: FaultSpec) -> None:
        """Re-issue the leaf of every chain a matching server presents.

        ``cert_rotation`` issues a fresh, valid leaf (new serial) --
        benign for full handshakes, and a probe that resumption paths
        survive a rotation.  ``cert_expiry`` issues a leaf that is
        *already expired* (valid signature, ``not_after`` in the
        past), so every subsequent full handshake fails validation.
        """
        now = self.loop.now()
        # Leaf issuer names are normalized to lowercase by the PKI;
        # the world's issuer directory keeps display case.
        issuers = {
            name.lower(): ca for name, ca in self.world.issuers.items()
        }
        for server in self._matching_servers(fault.target):
            config = server.config
            chains = []
            changed = False
            for chain in config.chains:
                leaf = chain[0] if chain else None
                authority = (
                    issuers.get(leaf.issuer.lower())
                    if leaf is not None else None
                )
                if authority is None:
                    chains.append(chain)
                    continue
                if fault.kind == "cert_expiry":
                    fresh = authority.issue(
                        leaf.subject, tuple(leaf.san),
                        now=max(0.0, now - 2.0), lifetime_ms=1.0,
                    )
                else:
                    fresh = authority.issue(
                        leaf.subject, tuple(leaf.san), now=now,
                    )
                chains.append([fresh] + list(chain[1:]))
                changed = True
                self._note_event(index)
            if changed:
                config.replace_chains(chains)
                self._record(
                    ReasonCode.FAULT_INJECTED,
                    "cert-expiry" if fault.kind == "cert_expiry"
                    else "cert-rotation",
                    index, hostname=server.host.name,
                )

    # -- passive machinery -------------------------------------------------

    def _wrap_latency(self) -> None:
        model = self.network.latency
        original_link = model.link
        spikes = [
            (index, fault)
            for index, fault in enumerate(self.schedule.faults)
            if fault.kind == "latency_spike"
        ]

        def chaos_link(region_a: str, region_b: str) -> LinkSpec:
            spec = original_link(region_a, region_b)
            now = self.loop.now()
            extra = 0.0
            for _, fault in spikes:
                if fault.active_at(now) and (
                    not fault.target
                    or fault.target in (region_a, region_b)
                ):
                    extra += fault.magnitude_ms
            if not extra:
                return spec
            return LinkSpec(
                rtt_ms=spec.rtt_ms + extra,
                jitter_ms=spec.jitter_ms,
                bandwidth_bpms=spec.bandwidth_bpms,
            )

        model.link = chaos_link

    def _wrap_resolver(self) -> None:
        resolver = self.resolver
        original = resolver.resolve
        dns_faults = [
            (index, fault)
            for index, fault in enumerate(self.schedule.faults)
            if fault.kind in ("dns_servfail", "dns_timeout", "dns_stale")
        ]

        def resolve(name, callback, on_error=None):
            now = self.loop.now()
            lookup = normalize_name(name)
            for index, fault in dns_faults:
                if not fault.active_at(now):
                    continue
                if not self._matches(fault.target, lookup):
                    continue
                if not self._budget_ok(index):
                    continue
                if fault.rate < 1.0 \
                        and not self._rngs[index].random() < fault.rate:
                    continue
                if fault.kind == "dns_stale":
                    stale = resolver.stale_answer(lookup)
                    if stale is None:
                        continue  # nothing expired to serve
                    self._note_event(index)
                    self._record(ReasonCode.STALE_DNS_SERVED, "dns-stale",
                                 index, hostname=lookup)
                    self.loop.schedule(0.0, lambda: callback(stale))
                    return
                if fault.kind == "dns_servfail":
                    self._note_event(index)
                    self._record(ReasonCode.FAULT_INJECTED, "dns-servfail",
                                 index, hostname=lookup)
                    answer = DnsAnswer(
                        name=lookup, addresses=[], ttl=0.0,
                        query_time_ms=fault.magnitude_ms,
                    )
                    self.loop.schedule(
                        fault.magnitude_ms, lambda: callback(answer)
                    )
                    return
                # dns_timeout: the query disappears for magnitude_ms,
                # then proceeds normally (retransmission recovery).
                self._note_event(index)
                self._record(ReasonCode.FAULT_INJECTED, "dns-timeout",
                             index, hostname=lookup)
                self.loop.schedule(
                    fault.magnitude_ms,
                    lambda: original(name, callback, on_error),
                )
                return
            original(name, callback, on_error)

        resolver.resolve = resolve

    # -- the network tap ----------------------------------------------------

    def _tap(
        self,
        client: Host,
        server_ip: str,
        port: int,
        client_end: Transport,
        server_end: Transport,
    ) -> None:
        now = self.loop.now()
        server_host = self.network.host_for_address(server_ip)
        server_name = server_host.name if server_host else server_ip
        for index, fault in enumerate(self.schedule.faults):
            kind = fault.kind
            if kind == "tls_fail":
                if (fault.active_at(now)
                        and self._matches(fault.target, server_name)
                        and self._budget_ok(index)
                        and self._rngs[index].random() < fault.rate):
                    self._install_handshake_killer(index, client_end)
            elif kind == "middlebox_teardown":
                if (fault.active_at(now)
                        and self._matches(fault.target, client.name)
                        and self._budget_ok(index)
                        and (fault.rate >= 1.0
                             or self._rngs[index].random() < fault.rate)):
                    self._install_middlebox(index, fault, server_end)
            elif kind in ("packet_loss", "packet_corrupt"):
                self._install_packet_sampler(index, fault, server_end,
                                             server_name)

    def _install_handshake_killer(self, index: int,
                                  client_end: Transport) -> None:
        """Abort the connection on the client's first flight (the
        ClientHello): a mid-path TLS interference fault."""
        prior = client_end.outbound_inspector
        state = {"killed": False}

        def inspect(data: bytes) -> bool:
            if prior is not None and not prior(data):
                return False
            if not state["killed"]:
                state["killed"] = True
                self._note_event(index)
                self._record(ReasonCode.FAULT_INJECTED, "tls-fail", index)
                return False
            return True

        client_end.outbound_inspector = inspect

    def _install_middlebox(self, index: int, fault: FaultSpec,
                           server_end: Transport) -> None:
        """Put the §6.7 buggy middlebox on this flow for the fault's
        window: reassembles TLS records, scans h2 frames, and tears
        the connection down on any unknown frame type (ORIGIN)."""
        middlebox = self._middlebox
        middlebox.stats.connections_inspected += 1
        inspector = _ConnectionInspector(middlebox, server_end)
        prior = server_end.outbound_inspector

        def inspect(data: bytes) -> bool:
            if prior is not None and not prior(data):
                return False
            if not fault.active_at(self.loop.now()):
                return True
            ok = inspector.inspect(data)
            if not ok:
                self._note_event(index)
                self._account_loss(index, server_end)
            return ok

        server_end.outbound_inspector = inspect

    def _install_packet_sampler(self, index: int, fault: FaultSpec,
                                server_end: Transport,
                                server_name: str) -> None:
        """Window-gated per-chunk loss/corruption on the server's
        outbound direction (where the response bytes are); either one
        is unrecoverable at this layer, so the transport aborts."""
        if not self._matches(fault.target, server_name):
            return
        prior = server_end.outbound_inspector

        def inspect(data: bytes) -> bool:
            if prior is not None and not prior(data):
                return False
            if not fault.active_at(self.loop.now()):
                return True
            if not self._budget_ok(index):
                return True
            if self._rngs[index].random() < fault.rate:
                self._note_event(index)
                self._account_loss(index, server_end)
                return False
            return True

        server_end.outbound_inspector = inspect

    # -- results -----------------------------------------------------------

    def fault_docs(self) -> List[dict]:
        """Per-fault tally docs in schedule order (the shard-merge
        wire format)."""
        return [tally.to_doc() for tally in self.tallies]

    @property
    def middlebox_stats(self):
        return self._middlebox.stats if self._middlebox else None
