"""Declarative fault schedules (``faults.toml``).

A fault schedule is a list of ``[[fault]]`` tables in the repo-wide
TOML subset (:mod:`repro.obs.tomlsubset` -- the same parser the SLO
and scenario files use), each describing one seeded fault::

    [[fault]]
    name = "edge-outage"          # optional, default "<kind>-<index>"
    kind = "edge_crash"           # required, see KINDS
    at = 4000.0                   # required: fire time, simulated ms
    duration = 1500.0             # window length; 0 = rest of the run
    target = "edge-*"             # fnmatch glob; "" matches everything
    rate = 1.0                    # per-event probability for sampled
                                  # kinds (packet loss, tls_fail, ...)
    magnitude_ms = 0.0            # kind-specific size (latency spike
                                  # height, DNS delay, ...)
    count = 0                     # cap on effect applications; 0 = off
    seed = 0                      # decorrelates this fault's RNG

Every fault fires on the simulated clock from a generator derived
from (run seed, chaos domain, shard, fault index), so a schedule is
byte-identical across ``--jobs`` and stable when unrelated faults are
added or removed.

``target`` semantics per kind:

========================  ============================================
kind                      target matches
========================  ============================================
``latency_spike``         a region name (``cdn-edge``, ``tail-hosting``)
``packet_loss``           server host name of the connection
``packet_corrupt``        server host name of the connection
``middlebox_teardown``    client host name (mirrors §6.7 protected set)
``dns_servfail``          queried hostname
``dns_timeout``           queried hostname
``dns_stale``             queried hostname
``tls_fail``              server host name of the connection
``cert_rotation``         server host name
``cert_expiry``           server host name
``edge_crash``            server host name
``goaway_storm``          server host name
``quic_blackhole``        server host name
========================  ============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.obs.tomlsubset import parse_toml_subset


class ChaosError(ValueError):
    """The fault schedule could not be parsed or validated."""


#: Every fault kind the injector knows how to arm.
KINDS = (
    "latency_spike",
    "packet_loss",
    "packet_corrupt",
    "middlebox_teardown",
    "dns_servfail",
    "dns_timeout",
    "dns_stale",
    "tls_fail",
    "cert_rotation",
    "cert_expiry",
    "edge_crash",
    "goaway_storm",
    "quic_blackhole",
)

#: Kinds whose whole effect happens once at ``at`` (no window).
ONE_SHOT_KINDS = {"cert_rotation", "cert_expiry", "goaway_storm"}


@dataclass(frozen=True)
class FaultSpec:
    """One validated fault from a schedule."""

    name: str
    kind: str
    at: float
    duration: float = 0.0
    target: str = ""
    rate: float = 1.0
    magnitude_ms: float = 0.0
    count: int = 0
    seed: int = 0

    @property
    def until(self) -> float:
        """End of the active window; ``inf`` for open-ended faults."""
        if self.kind in ONE_SHOT_KINDS:
            return self.at
        if self.duration <= 0:
            return float("inf")
        return self.at + self.duration

    def active_at(self, now: float) -> bool:
        return self.at <= now < self.until

    def to_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "target": self.target,
            "rate": self.rate,
            "magnitude_ms": self.magnitude_ms,
            "count": self.count,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated set of faults plus where it came from."""

    faults: Tuple[FaultSpec, ...] = ()
    source: str = "<none>"

    @property
    def empty(self) -> bool:
        return not self.faults

    def to_doc(self) -> Dict[str, object]:
        return {"faults": [fault.to_doc() for fault in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), sort_keys=True,
                          separators=(",", ":"))


#: The empty schedule: arming it must install nothing (the
#: non-perturbation invariant the CI gate enforces).
EMPTY_SCHEDULE = FaultSchedule()

_FAULT_KEYS = {
    "name", "kind", "at", "duration", "target", "rate",
    "magnitude_ms", "count", "seed",
}
_STRING_KEYS = {"name", "kind", "target"}


def _finish_fault(table: Dict[str, object], where: str,
                  index: int) -> FaultSpec:
    unknown = set(table) - _FAULT_KEYS
    if unknown:
        raise ChaosError(
            f"{where}: unknown key(s) {sorted(unknown)}; "
            f"expected {sorted(_FAULT_KEYS)}"
        )
    for key in _STRING_KEYS & set(table):
        if not isinstance(table[key], str):
            raise ChaosError(f"{where}: {key!r} must be a string")
    kind = table.get("kind")
    if kind is None:
        raise ChaosError(f"{where}: 'kind' is required")
    if kind not in KINDS:
        raise ChaosError(
            f"{where}: unknown fault kind {kind!r}; "
            f"expected one of {list(KINDS)}"
        )
    at = table.get("at")
    if at is None:
        raise ChaosError(f"{where}: 'at' (simulated ms) is required")
    if isinstance(at, bool) or not isinstance(at, (int, float)):
        raise ChaosError(f"{where}: 'at' must be a number")
    at = float(at)
    if at < 0:
        raise ChaosError(f"{where}: 'at' must be >= 0, got {at:g}")
    duration = float(table.get("duration", 0.0))
    if duration < 0:
        raise ChaosError(
            f"{where}: 'duration' must be >= 0, got {duration:g}"
        )
    rate = float(table.get("rate", 1.0))
    if not 0.0 < rate <= 1.0:
        raise ChaosError(
            f"{where}: 'rate' must be in (0, 1], got {rate:g}"
        )
    magnitude = float(table.get("magnitude_ms", 0.0))
    if magnitude < 0:
        raise ChaosError(
            f"{where}: 'magnitude_ms' must be >= 0, got {magnitude:g}"
        )
    count = table.get("count", 0)
    if isinstance(count, bool) or not isinstance(count, int) or count < 0:
        raise ChaosError(
            f"{where}: 'count' must be a non-negative integer"
        )
    seed = table.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise ChaosError(f"{where}: 'seed' must be a non-negative integer")
    name = str(table.get("name") or f"{kind}-{index}")
    return FaultSpec(
        name=name,
        kind=str(kind),
        at=at,
        duration=duration,
        target=str(table.get("target", "")),
        rate=rate,
        magnitude_ms=magnitude,
        count=count,
        seed=seed,
    )


def parse_fault_schedule(text: str,
                         source: str = "<faults>") -> FaultSchedule:
    """Parse a fault schedule (see the module docstring for the
    accepted subset)."""
    tables = parse_toml_subset(text, source=source, error=ChaosError)
    for table in tables:
        if table.name != "fault" or not table.array:
            head = f"[[{table.name}]]" if table.array \
                else f"[{table.name}]"
            raise ChaosError(
                f"{table.where}: only [[fault]] tables are supported, "
                f"got {head!r}"
            )
    faults = [
        _finish_fault(table.items, table.where, index)
        for index, table in enumerate(tables)
    ]
    names = [fault.name for fault in faults]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ChaosError(
            f"{source}: duplicate fault name(s) {sorted(duplicates)}"
        )
    return FaultSchedule(faults=tuple(faults), source=source)


def load_fault_schedule(path) -> FaultSchedule:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ChaosError(f"cannot read {path}: {error}") from error
    return parse_fault_schedule(text, source=str(path))
