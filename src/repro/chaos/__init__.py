"""repro.chaos -- deterministic fault injection and blast-radius
analysis.

The paper evaluates connection coalescing's best case; this package
probes its worst: when a connection carrying many coalesced hostnames
dies (§6.7 saw a middlebox do exactly that in the wild), how much
goes down with it, per coalescing policy?

Layers:

* :mod:`repro.chaos.schedule` -- the declarative ``[[fault]]`` TOML
  schedule and its validation;
* :mod:`repro.chaos.inject` -- arms a schedule against one world on
  the simulated clock (taps, wrappers, observers), with per-fault
  seeded RNGs and blast attribution;
* :mod:`repro.chaos.report` -- per-fault tallies and the
  shard-mergeable :class:`ChaosReport`;
* :mod:`repro.chaos.run` -- the sharded runner (mirrors the traced
  crawl pipeline) and the ``--compare-policies`` sweep.
"""

from repro.chaos.inject import (
    CHAOS_SEED_DOMAIN,
    RETRY_SEED_DOMAIN,
    FaultInjector,
)
from repro.chaos.report import ChaosReport, FaultTally
from repro.chaos.run import (
    COMPARE_POLICIES,
    DEFAULT_RETRY_POLICY,
    ChaosRunner,
    chaos_shard_traced,
    compare_policies,
)
from repro.chaos.schedule import (
    EMPTY_SCHEDULE,
    KINDS,
    ChaosError,
    FaultSchedule,
    FaultSpec,
    load_fault_schedule,
    parse_fault_schedule,
)

__all__ = [
    "CHAOS_SEED_DOMAIN",
    "RETRY_SEED_DOMAIN",
    "COMPARE_POLICIES",
    "DEFAULT_RETRY_POLICY",
    "EMPTY_SCHEDULE",
    "KINDS",
    "ChaosError",
    "ChaosReport",
    "ChaosRunner",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultTally",
    "chaos_shard_traced",
    "compare_policies",
    "load_fault_schedule",
    "parse_fault_schedule",
]
