"""The sharded chaos runner: a traced crawl with faults armed.

Mirrors :class:`~repro.dataset.shard.ParallelCrawler.crawl_traced`
exactly -- same shard plan, same world/crawler seeds, same shard-order
merge of archives/spans/metrics/audit -- and adds, per shard, a
:class:`~repro.chaos.inject.FaultInjector` armed before the crawl and
an explicit :class:`~repro.browser.retry.RetryPolicy` on the browser
context.  Shards additionally return their fault tallies (plain JSON
docs) which merge into a :class:`~repro.chaos.report.ChaosReport` by
counter addition, so the report is byte-identical at any ``--jobs``.

With an empty schedule the injector installs nothing, the retry
policy is never consulted (nothing fails in an unfaulted crawl
world), and the retry RNG is never drawn from -- so the archives and
audit stream come out byte-identical to a plain ``repro crawl`` of
the same parameters.  The CI non-perturbation gate holds this
invariant down to ``cmp``.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Tuple

from repro.audit.log import AuditEvent
from repro.audit.reasons import ReasonCode
from repro.browser.policy import policy_by_name
from repro.browser.retry import RetryPolicy
from repro.chaos.inject import (
    CHAOS_SEED_DOMAIN,
    RETRY_SEED_DOMAIN,
    FaultInjector,
)
from repro.chaos.report import ChaosReport
from repro.chaos.schedule import FaultSchedule
from repro.dataset.crawler import Crawler, CrawlResult
from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import (
    CrawlParams,
    ShardResult,
    ShardSpec,
    derive_seed,
    plan_shards,
)
from repro.telemetry import CrawlTrace, Span, Telemetry
from repro.web.har import HarArchive

#: The default chaos retry policy: two deterministic exponential
#: retries with a little seeded jitter, loss retries on.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_retries=2,
    backoff_base_ms=120.0,
    backoff_multiplier=2.0,
    jitter_ms=40.0,
    retry_connection_loss=True,
    budget_ms=0.0,
)


def chaos_shard_traced(
    spec: ShardSpec,
    params: CrawlParams,
    schedule: FaultSchedule,
    retry_policy: RetryPolicy,
    trace: bool = True,
    audit: bool = True,
) -> Tuple[ShardResult, List[dict]]:
    """Crawl one shard with faults armed; returns the telemetry
    bundle plus the shard's fault tallies (in schedule order)."""
    world = spec.build_world()
    telemetry = Telemetry(
        clock=world.network.loop.now, trace=trace, audit=audit
    )
    crawler = Crawler(
        world,
        policy=policy_by_name(params.policy),
        speculative_rate=params.speculative_rate,
        dns_latency_ms=params.dns_latency_ms,
        seed=spec.crawler_seed(params.seed),
        telemetry=telemetry,
        alpn=params.alpn,
        retry_policy=retry_policy,
        retry_seed=derive_seed(
            params.seed, RETRY_SEED_DOMAIN, spec.index, spec.shard_count
        ),
    )
    injector = FaultInjector(
        world,
        schedule,
        seed=derive_seed(
            params.seed, CHAOS_SEED_DOMAIN, spec.index, spec.shard_count
        ),
        resolver=crawler.resolver,
        audit=telemetry.audit,
    )
    injector.arm()
    shard_span = None
    if telemetry.tracer.enabled:
        shard_span = telemetry.tracer.begin(
            "shard", category="crawler", index=spec.index,
            sites=spec.site_count,
        )
    result = crawler.crawl()
    if shard_span is not None:
        telemetry.tracer.end(
            shard_span, attempted=result.attempted,
            succeeded=result.success_count,
        )
    return ShardResult(
        payload=result,
        spans=telemetry.tracer.spans,
        metrics=telemetry.metrics.snapshot(),
        events=telemetry.audit.events,
    ), injector.fault_docs()


def _chaos_shard_json(
    payload: Tuple[ShardSpec, CrawlParams, FaultSchedule, RetryPolicy,
                   bool, bool]
) -> Tuple[List[str], List[dict], List[dict], List[dict], List[dict]]:
    """Picklable worker entry point: everything as JSON-able docs."""
    spec, params, schedule, retry_policy, trace, audit = payload
    shard_result, fault_docs = chaos_shard_traced(
        spec, params, schedule, retry_policy, trace=trace, audit=audit
    )
    return (
        [archive.to_json()
         for archive in shard_result.payload.archives],
        [span.to_dict() for span in shard_result.spans],
        shard_result.metrics,
        [event.to_dict() for event in shard_result.events],
        fault_docs,
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


#: Reasons counted as "a request went through a retry".
_RETRIED_REASONS = (
    ReasonCode.RETRY_BACKOFF.value,
    ReasonCode.MISS_RETRY_AFTER_GOAWAY.value,
)


class ChaosRunner:
    """Runs one fault schedule over a sharded crawl."""

    def __init__(
        self,
        config: DatasetConfig,
        params: Optional[CrawlParams] = None,
        schedule: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        shard_count: Optional[int] = None,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.config = config
        self.params = params or CrawlParams()
        self.schedule = schedule or FaultSchedule()
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.shards = plan_shards(config, shard_count)
        self.jobs = jobs

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def run(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        trace: bool = True,
        watch: Optional[Callable[[int, int, CrawlTrace], None]] = None,
    ) -> Tuple[CrawlResult, CrawlTrace, ChaosReport]:
        """Crawl all shards under the schedule; merge telemetry and
        tallies in shard order.  The audit collector is always on --
        the blast attribution and the jobs-determinism gate live
        there."""
        total = len(self.shards)
        merged = CrawlResult()
        crawl_trace = CrawlTrace()
        report = ChaosReport(
            policy=self.params.policy,
            schedule_source=self.schedule.source,
            sites=self.config.site_count,
            seed=self.config.seed,
            shards=total,
        )
        if self.jobs == 1 or total == 1:
            for done, spec in enumerate(self.shards, start=1):
                shard_result, fault_docs = chaos_shard_traced(
                    spec, self.params, self.schedule, self.retry_policy,
                    trace=trace, audit=True,
                )
                merged.archives.extend(shard_result.payload.archives)
                crawl_trace.extend(
                    list(shard_result.spans), shard=spec.index
                )
                crawl_trace.metrics.absorb(shard_result.metrics)
                crawl_trace.extend_audit(
                    list(shard_result.events), shard=spec.index
                )
                report.absorb_tallies(fault_docs)
                if progress is not None:
                    progress(done, total)
                if watch is not None:
                    watch(done, total, crawl_trace)
        else:
            payloads = [
                (spec, self.params, self.schedule, self.retry_policy,
                 trace, True)
                for spec in self.shards
            ]
            workers = min(self.jobs, total)
            with _mp_context().Pool(processes=workers) as pool:
                for done, (lines, span_docs, metrics, event_docs,
                           fault_docs) in enumerate(
                        pool.imap(_chaos_shard_json, payloads), start=1):
                    merged.archives.extend(
                        HarArchive.from_json(line) for line in lines
                    )
                    crawl_trace.extend(
                        [Span.from_dict(doc) for doc in span_docs],
                        shard=self.shards[done - 1].index,
                    )
                    crawl_trace.metrics.absorb(metrics)
                    crawl_trace.extend_audit(
                        [AuditEvent.from_dict(doc) for doc in event_docs],
                        shard=self.shards[done - 1].index,
                    )
                    report.absorb_tallies(fault_docs)
                    if progress is not None:
                        progress(done, total)
                    if watch is not None:
                        watch(done, total, crawl_trace)
        self._finish_report(report, merged, crawl_trace)
        return merged, crawl_trace, report

    @staticmethod
    def _finish_report(report: ChaosReport, result: CrawlResult,
                       trace: CrawlTrace) -> None:
        retried = 0
        exhausted = 0
        for event in trace.audit:
            if event.reason in _RETRIED_REASONS:
                retried += 1
            elif event.reason == ReasonCode.RETRY_EXHAUSTED.value:
                exhausted += 1
        report.requests_retried = retried
        report.requests_exhausted = exhausted
        report.pages_attempted = result.attempted
        report.pages_failed = result.attempted - result.success_count
        report.connections_opened = sum(
            archive.new_connection_count() for archive in result.successes
        )


#: The policy sweep ``--compare-policies`` runs, unshared baseline
#: first.
COMPARE_POLICIES = ("none", "chromium", "firefox+origin", "ideal-origin")


def compare_policies(
    config: DatasetConfig,
    params: CrawlParams,
    schedule: FaultSchedule,
    retry_policy: RetryPolicy,
    policies=COMPARE_POLICIES,
    shard_count: Optional[int] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> List[Tuple[str, CrawlResult, ChaosReport]]:
    """Run the same schedule under each coalescing policy.

    This is the robustness-vs-savings tradeoff table: coalescing
    policies open fewer connections, but each lost connection takes
    more hostnames down with it (larger mean blast radius)."""
    rows: List[Tuple[str, CrawlResult, ChaosReport]] = []
    from dataclasses import replace

    for policy in policies:
        runner = ChaosRunner(
            config,
            params=replace(params, policy=policy),
            schedule=schedule,
            retry_policy=retry_policy,
            shard_count=shard_count,
            jobs=jobs,
        )
        shard_progress = None
        if progress is not None:
            shard_progress = (
                lambda done, total, policy=policy:
                    progress(policy, done, total)
            )
        result, _, report = runner.run(progress=shard_progress,
                                       trace=False)
        rows.append((policy, result, report))
    return rows
