"""Blast-radius accounting: per-fault tallies and the ChaosReport.

The paper's motivation for this subsystem is the asymmetry coalescing
creates: one connection carries many hostnames, so one fault hits all
of them at once (§6.7 saw exactly this in the wild).  The injector
attributes every connection it kills to the fault that killed it and
records how much was riding it; a :class:`ChaosReport` aggregates the
tallies shard-by-shard so the numbers stay ``--jobs``-deterministic.

Tallies are plain summable counters plus a distinct-user set that is
carried as a sorted tuple in the wire doc, so shard merge is just
counter addition + set union in shard order -- the same merge shape
as metrics and audit streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple


@dataclass
class FaultTally:
    """What one fault did across a run (or one shard of it)."""

    name: str
    kind: str
    #: Window activations (at most once per shard).
    fired: int = 0
    #: Individual effect applications (connections killed, DNS answers
    #: faulted, handshakes failed, listeners pulled, ...).
    events: int = 0
    #: Established connections this fault tore down.
    connections_lost: int = 0
    #: Lost connections that were carrying more than one hostname --
    #: the coalescing blast the paper worries about.
    coalesced_lost: int = 0
    #: Sum over lost connections of distinct hostnames riding them.
    hostnames_affected: int = 0
    #: Sum over lost connections of requests already served on them.
    requests_affected: int = 0
    #: Torn-down connections that never completed their handshake
    #: (nothing was riding them; excluded from the blast radius).
    immature_lost: int = 0
    #: Distinct client endpoints that lost a connection.
    clients: Set[str] = field(default_factory=set)

    @property
    def users_affected(self) -> int:
        return len(self.clients)

    @property
    def mean_blast_radius(self) -> float:
        """Mean hostnames per lost connection; 0.0 if nothing was lost."""
        if not self.connections_lost:
            return 0.0
        return self.hostnames_affected / self.connections_lost

    def to_doc(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "fired": self.fired,
            "events": self.events,
            "connections_lost": self.connections_lost,
            "coalesced_lost": self.coalesced_lost,
            "hostnames_affected": self.hostnames_affected,
            "requests_affected": self.requests_affected,
            "immature_lost": self.immature_lost,
            "clients": sorted(self.clients),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "FaultTally":
        return cls(
            name=str(doc["name"]),
            kind=str(doc["kind"]),
            fired=int(doc.get("fired", 0)),
            events=int(doc.get("events", 0)),
            connections_lost=int(doc.get("connections_lost", 0)),
            coalesced_lost=int(doc.get("coalesced_lost", 0)),
            hostnames_affected=int(doc.get("hostnames_affected", 0)),
            requests_affected=int(doc.get("requests_affected", 0)),
            immature_lost=int(doc.get("immature_lost", 0)),
            clients=set(map(str, doc.get("clients", ()))),
        )

    def absorb(self, other: "FaultTally") -> None:
        if (other.name, other.kind) != (self.name, self.kind):
            raise ValueError(
                f"cannot merge tally {other.name!r}/{other.kind!r} "
                f"into {self.name!r}/{self.kind!r}"
            )
        self.fired += other.fired
        self.events += other.events
        self.connections_lost += other.connections_lost
        self.coalesced_lost += other.coalesced_lost
        self.hostnames_affected += other.hostnames_affected
        self.requests_affected += other.requests_affected
        self.immature_lost += other.immature_lost
        self.clients |= other.clients


@dataclass
class ChaosReport:
    """Shard-merged outcome of one chaos run."""

    policy: str = "chromium"
    schedule_source: str = "<none>"
    sites: int = 0
    seed: int = 0
    shards: int = 1
    #: Tallies in schedule order (the order is part of the canonical
    #: serialization, so it must not depend on dict iteration of
    #: anything non-deterministic).
    tallies: List[FaultTally] = field(default_factory=list)
    #: Requests that went through a backoff retry / ran out of
    #: retries (counted from the merged audit stream).
    requests_retried: int = 0
    requests_exhausted: int = 0
    #: Crawl-level context for the robustness-vs-savings tradeoff.
    pages_attempted: int = 0
    pages_failed: int = 0
    connections_opened: int = 0

    @property
    def connections_lost(self) -> int:
        return sum(t.connections_lost for t in self.tallies)

    @property
    def coalesced_lost(self) -> int:
        return sum(t.coalesced_lost for t in self.tallies)

    @property
    def hostnames_affected(self) -> int:
        return sum(t.hostnames_affected for t in self.tallies)

    @property
    def requests_affected(self) -> int:
        return sum(t.requests_affected for t in self.tallies)

    @property
    def immature_lost(self) -> int:
        return sum(t.immature_lost for t in self.tallies)

    @property
    def mean_blast_radius(self) -> float:
        lost = self.connections_lost
        if not lost:
            return 0.0
        return self.hostnames_affected / lost

    def absorb_tallies(self, docs: Iterable[Dict[str, object]]) -> None:
        """Merge one shard's tally docs (in schedule order)."""
        incoming = [FaultTally.from_doc(doc) for doc in docs]
        if not self.tallies:
            self.tallies = incoming
            return
        if len(incoming) != len(self.tallies):
            raise ValueError(
                f"shard produced {len(incoming)} tallies, "
                f"expected {len(self.tallies)}"
            )
        for mine, theirs in zip(self.tallies, incoming):
            mine.absorb(theirs)

    # -- canonical serialization ------------------------------------------

    def to_jsonl(self) -> str:
        """Canonical JSON-lines form: one meta line, one line per
        fault in schedule order, one totals line.  Byte-identical for
        identical runs regardless of ``--jobs``."""
        lines = [self._tagged("meta", {
            "policy": self.policy,
            "schedule": self.schedule_source,
            "sites": self.sites,
            "seed": self.seed,
            "shards": self.shards,
        })]
        for tally in self.tallies:
            doc = tally.to_doc()
            doc["users_affected"] = tally.users_affected
            doc["mean_blast_radius"] = round(tally.mean_blast_radius, 6)
            doc.pop("clients")
            lines.append(self._tagged("fault", doc))
        lines.append(self._tagged("totals", {
            "connections_lost": self.connections_lost,
            "coalesced_lost": self.coalesced_lost,
            "hostnames_affected": self.hostnames_affected,
            "requests_affected": self.requests_affected,
            "immature_lost": self.immature_lost,
            "mean_blast_radius": round(self.mean_blast_radius, 6),
            "requests_retried": self.requests_retried,
            "requests_exhausted": self.requests_exhausted,
            "pages_attempted": self.pages_attempted,
            "pages_failed": self.pages_failed,
            "connections_opened": self.connections_opened,
        }))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _tagged(tag: str, doc: Dict[str, object]) -> str:
        doc = dict(doc)
        doc["t"] = tag
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))
