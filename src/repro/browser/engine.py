"""The page-load engine.

Loads a :class:`~repro.web.page.WebPage` over the simulated network the
way a browser would: resolve, connect (or reuse per the active
coalescing policy), request, parse, discover children, repeat -- and
records everything as a HAR archive.  This plays the role WebPageTest +
Chrome played in the paper's data collection (§3.1), with the browser
policy swappable so Chromium, Firefox, Firefox+ORIGIN, and the ideal
client can all be compared on identical pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.obs.phases import NULL_PHASES
from repro.browser.cache import BrowserCache
from repro.browser.policy import CoalescingPolicy, ConnectionFacts
from repro.browser.pool import ConnectionPool
from repro.browser.retry import RetryPolicy
from repro.dnssim.resolver import CachingResolver
from repro.netsim.network import Host, Network
from repro.telemetry import NULL_TRACER, Telemetry
from repro.tlspki.ca import CertificateAuthority
from repro.tlspki.validation import TrustStore
from repro.transport.tcp import DEFAULT_ALPN_OFFER, TcpTlsDialer
from repro.web.asdb import AsDatabase
from repro.web.har import (
    HarArchive,
    HarEntry,
    HarPage,
    HarTimings,
    NOT_APPLICABLE,
)
from repro.web.page import FetchMode, Subresource, WebPage


@dataclass
class BrowserContext:
    """Everything a browser needs to load pages in one simulated world."""

    network: Network
    client_host: Host
    resolver: CachingResolver
    trust_store: TrustStore
    authorities: Sequence[CertificateAuthority]
    policy: CoalescingPolicy
    rng: Optional[np.random.Generator] = None
    #: Probability that opening a new connection races a duplicate
    #: (speculative/happy-eyeballs effects; §4.2).
    speculative_rate: float = 0.0
    tls13: bool = True
    #: Share of servers still negotiating TLS 1.2 (2 handshake RTTs);
    #: drawn per new connection when an RNG is available.
    tls12_rate: float = 0.0
    asdb: Optional[AsDatabase] = None
    cache_enabled: bool = False
    port: int = 443
    #: Sent on every request; the passive pipeline filters on it.
    user_agent: str = ""
    #: TLS session-ticket cache shared across this profile's
    #: connections; ``None`` disables resumption attempts.
    tls_session_cache: Optional[Dict] = None
    #: Crawl-level telemetry (tracer + metrics); ``None`` disables
    #: tracing with literal zero overhead on the fetch paths.
    telemetry: Optional[Telemetry] = None
    #: Phase-latency recorder for the run ledger (DNS/connect/TLS/
    #: TTFB/page histograms); the no-op default keeps un-ledgered
    #: loads at a single attribute read per request.
    phases: object = NULL_PHASES
    #: Protocols this browser is willing to speak.  ``("h2",)`` is the
    #: pre-h3 browser; ``("h2", "h3")`` adds the QUIC dialer, HTTPS
    #: DNS-record awareness, and Alt-Svc upgrades.
    alpn: Sequence[str] = ("h2",)
    #: How many times a request may be re-dialed after an edge refused
    #: the connection with an overload GOAWAY (ENHANCE_YOUR_CALM).  0
    #: (the default) keeps the pre-capacity-model behaviour: the
    #: refusal surfaces as a failed request.
    goaway_retry_limit: int = 0
    #: Base backoff before an overload retry; attempt ``n`` waits
    #: ``n * backoff`` so repeated refusals spread out.
    goaway_retry_backoff_ms: float = 120.0
    #: The unified retry policy.  ``None`` derives one from the two
    #: legacy GOAWAY fields above (linear backoff, no jitter, no
    #: connection-loss retries), so existing configurations keep
    #: their exact behaviour through the single retry code path.
    retry_policy: Optional[RetryPolicy] = None
    #: Dedicated generator for retry jitter draws.  Kept separate
    #: from :attr:`rng` so enabling jittered retries never perturbs
    #: the TLS-version / speculative-connection decision stream.
    retry_rng: Optional[np.random.Generator] = None

    @property
    def effective_retry_policy(self) -> RetryPolicy:
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy.legacy_goaway(
            self.goaway_retry_limit, self.goaway_retry_backoff_ms
        )

    @property
    def tracer(self):
        if self.telemetry is not None:
            return self.telemetry.tracer
        return NULL_TRACER

    @property
    def audit(self):
        if self.telemetry is not None:
            return self.telemetry.audit
        return NULL_AUDIT

    @property
    def h3_enabled(self) -> bool:
        return "h3" in tuple(self.alpn)


class _FetchState:
    """Bookkeeping for one in-flight resource fetch."""

    def __init__(
        self,
        resource: Optional[Subresource],
        hostname: str,
        path: str,
        started_at: float,
    ) -> None:
        self.resource = resource
        self.hostname = hostname
        self.path = path
        self.started_at = started_at
        self.timings = HarTimings(
            dns=NOT_APPLICABLE, connect=NOT_APPLICABLE, ssl=NOT_APPLICABLE
        )
        self.dns_addresses: List[str] = []
        #: ALPN protocols advertised by the hostname's HTTPS DNS
        #: record, when the resolver queried for one.
        self.https_alpn: tuple = ()
        #: Set when an Alt-Svc advertisement made this fetch skip
        #: same-host h2 reuse in favour of a new h3 connection.
        self.h3_upgrade = False
        self.coalesced = False
        self.retried_after_421 = False
        #: Whether this fetch runs in the anonymous connection
        #: partition; an overload retry must stay in its partition.
        self.anonymous = False
        #: Connection-attempt epoch: bumped by every
        #: ``_open_and_request`` and overload retry, so callbacks from
        #: a superseded attempt (its GOAWAY failure *and* the status-0
        #: responses from the dying transport) are recognized as stale
        #: and cannot double-record this fetch.
        self.attempt = 0
        #: True once a final HAR entry was recorded for this fetch.
        self.settled = False
        self.goaway_retries = 0
        #: Connection-loss retries (chaos class); counted separately
        #: from overload retries, as the legacy GOAWAY path did.
        self.loss_retries = 0
        #: When this fetch first lost a connection; the recovery
        #: histogram measures success time from here.
        self.first_loss_at: Optional[float] = None
        self.facts: Optional[ConnectionFacts] = None
        self.span = None
        #: Why the request was served the way it was; set at each
        #: decision point and stamped on the final audit event.
        self.reason: Optional[ReasonCode] = None

    def adopt_reason(self, reason: ReasonCode) -> None:
        """Adopt a (refined) miss reason, keeping an earlier, more
        specific same-host cause when one was recorded."""
        if self.reason in (ReasonCode.MISS_CANNOT_MULTIPLEX,
                           ReasonCode.MISS_CLOSED_STALE):
            return
        self.reason = reason


class PageLoad:
    """State for one page load; produced by :meth:`BrowserEngine.load`."""

    def __init__(
        self,
        engine: "BrowserEngine",
        page: WebPage,
        on_complete: Callable[[HarArchive], None],
    ) -> None:
        self.engine = engine
        self.context = engine.context
        self.page = page
        self.on_complete = on_complete
        context = self.context
        origin_aware = getattr(
            context.policy, "origin_frames", True
        ) or not context.policy.requires_dns_before_reuse
        offer = DEFAULT_ALPN_OFFER
        if context.h3_enabled:
            # Signals upgrade interest: h3-capable servers answer TCP
            # requests from this offer with an Alt-Svc header.
            offer = DEFAULT_ALPN_OFFER + ("h3",)
        self.tcp_dialer = TcpTlsDialer(
            context.network,
            context.client_host,
            context.trust_store,
            context.authorities,
            tls13=context.tls13,
            session_cache=context.tls_session_cache,
            alpn_offer=offer,
            origin_aware=origin_aware,
            port=context.port,
            tracer=context.tracer,
            audit=context.audit,
            page=self.page.url,
            phases=context.phases,
        )
        self.quic_dialer = None
        if context.h3_enabled:
            from repro.transport.quicsim import QuicDialer

            self.quic_dialer = QuicDialer(
                context.network,
                context.client_host,
                context.trust_store,
                context.authorities,
                ticket_cache=engine.quic_tickets,
                origin_aware=origin_aware,
                port=context.port,
                tracer=context.tracer,
                audit=context.audit,
                page=self.page.url,
                phases=context.phases,
            )
        self.pool = ConnectionPool(
            policy=context.policy,
            dialer=self.tcp_dialer,
            prefer_h3=self.quic_dialer is not None,
            tracer=context.tracer,
            audit=context.audit,
            page=self.page.url,
        )
        if self.quic_dialer is not None:
            # quic.* counters land in the pool's registry (absorbed
            # into the crawl metrics), created lazily on first use.
            self.quic_dialer.metrics = self.pool.stats.registry
        self.entries: List[HarEntry] = []
        self.outstanding = 0
        self.extra_tls = 0
        self.start_time = self.context.network.loop.now()
        self.root_status = 0
        self.finished = False

    @property
    def loop(self):
        return self.context.network.loop

    # -- entry points -----------------------------------------------------

    def start(self) -> None:
        self.outstanding += 1
        state = _FetchState(
            resource=None,
            hostname=self.page.hostname,
            path=self.page.root_path,
            started_at=self.loop.now(),
        )
        state.reason = ReasonCode.MISS_FIRST_CONTACT
        self._begin_fetch_span(state, root=True)
        self._resolve_then_connect(state, anonymous=False)

    # -- fetch pipeline ------------------------------------------------------

    def _fetch_resource(self, resource: Subresource) -> None:
        self.outstanding += 1
        state = _FetchState(
            resource=resource,
            hostname=resource.hostname,
            path=resource.path,
            started_at=self.loop.now(),
        )
        self._begin_fetch_span(state, root=False)
        anonymous = resource.fetch_mode is not FetchMode.NORMAL
        state.anonymous = anonymous

        if not resource.secure:
            state.reason = ReasonCode.MISS_CLEARTEXT_HTTP
            self._fetch_plain(state)
            return

        url = f"https://{resource.hostname}{resource.path}"
        if self.context.cache_enabled:
            cached = self.engine.cache.get(url, self.loop.now())
            if cached is not None:
                state.reason = ReasonCode.HIT_BROWSER_CACHE
                self._record_cached(state)
                return

        # Same-host reuse first: no DNS, no new connection.
        same_host = self.pool.find_same_host(
            resource.hostname, anonymous=anonymous
        )
        state.reason = same_host.reason
        if same_host:
            facts = same_host.facts
            if (
                self.quic_dialer is not None
                and not anonymous
                and facts.transport_name != "quic"
                and resource.hostname in self.engine.alt_svc_h3
            ):
                # The server advertised Alt-Svc h3: deliberately skip
                # the h2 connection and dial QUIC to the same address
                # (no DNS; RFC 7838 reuses the resolved endpoint).
                state.reason = ReasonCode.ALT_SVC_UPGRADE
                state.h3_upgrade = True
                state.dns_addresses = [facts.connected_ip]
                self._open_and_request(state, anonymous)
                return
            self.pool.note_same_host_reuse()
            self._reuse(state, facts, anonymous)
            return
        if anonymous:
            # The partition, not the pool's contents, is what forbids
            # coalescing from here on.
            state.adopt_reason(ReasonCode.MISS_ANONYMOUS_PARTITION)

        # DNS-free ORIGIN coalescing (ideal client, §6.8).
        if not self.context.policy.requires_dns_before_reuse and not anonymous:
            outcome = self.pool.find_coalescable(resource.hostname, ())
            if outcome:
                state.reason = outcome.reason
                state.coalesced = True
                self.pool.note_coalesced_reuse()
                self._reuse(state, outcome.facts, anonymous)
                return

        self._resolve_then_connect(state, anonymous)

    def _fetch_plain(self, state: _FetchState) -> None:
        """Cleartext http:// subresource: DNS, raw TCP, HTTP/1.1."""

        def on_answer(answer) -> None:
            if answer.empty:
                state.reason = ReasonCode.MISS_DNS_NXDOMAIN
                self._record_failure(state, "NXDOMAIN")
                return
            state.timings.dns = (
                NOT_APPLICABLE if answer.from_cache else answer.query_time_ms
            )
            state.dns_addresses = list(answer.addresses)
            connect_started = self.loop.now()

            def on_connect(transport) -> None:
                state.timings.connect = self.loop.now() - connect_started
                protocol = self.tcp_dialer.plain_protocol(transport)

                def on_response(response) -> None:
                    self._record_success(state, response,
                                         plain_http=True)
                    transport.close()

                protocol.request(state.hostname, state.path, on_response)

            self.context.network.connect(
                self.context.client_host,
                state.dns_addresses[0],
                80,
                on_connect,
                on_refused=lambda error: self._record_failure(
                    state, str(error)
                ),
            )

        self.context.resolver.resolve(state.hostname, on_answer)

    def _resolve_then_connect(
        self, state: _FetchState, anonymous: bool
    ) -> None:
        def on_answer(answer) -> None:
            if answer.empty:
                state.reason = ReasonCode.MISS_DNS_NXDOMAIN
                self._record_failure(state, "NXDOMAIN")
                return
            state.timings.dns = (
                NOT_APPLICABLE if answer.from_cache else answer.query_time_ms
            )
            state.dns_addresses = list(answer.addresses)
            state.https_alpn = tuple(getattr(answer, "https_alpn", ()))
            # Cross-host coalescing after the (browser-mandated) query.
            if state.resource is not None and not anonymous:
                outcome = self.pool.find_coalescable(
                    state.hostname, answer.addresses
                )
                if outcome:
                    state.reason = outcome.reason
                    state.coalesced = True
                    self.pool.note_coalesced_reuse()
                    self._reuse(state, outcome.facts, anonymous)
                    return
                state.adopt_reason(outcome.reason)
            self._open_and_request(state, anonymous)

        self.context.resolver.resolve(state.hostname, on_answer)

    def _pick_dialer(self, state: _FetchState):
        """The dialer for a new connection; ``None`` means the pool's
        default (tcp-tls).  QUIC is chosen on an Alt-Svc upgrade, an
        HTTPS DNS record advertising h3, or a cached cross-host-valid
        session ticket."""
        quic = self.quic_dialer
        if quic is None:
            return None
        if state.h3_upgrade:
            return quic
        if "h3" in state.https_alpn:
            audit = self.context.audit
            if audit.enabled:
                # Discovery event: first contact went straight to
                # QUIC because DNS said it could.  The decision
                # reason stays whatever the pool lookup produced.
                audit.record(
                    "h3", ReasonCode.HTTPS_RR_H3,
                    page=self.page.url, hostname=state.hostname,
                    path=state.path,
                )
            return quic
        if state.hostname in self.engine.alt_svc_h3:
            return quic
        if quic.has_ticket_for(state.hostname):
            return quic
        return None

    def _open_and_request(self, state: _FetchState, anonymous: bool) -> None:
        connect_started = self.loop.now()
        state.attempt += 1
        attempt = state.attempt
        tls13 = self.context.tls13
        if (
            tls13
            and self.context.rng is not None
            and self.context.tls12_rate > 0
            and self.context.rng.random() < self.context.tls12_rate
        ):
            tls13 = False
        dialer = self._pick_dialer(state)
        facts = self.pool.open_connection(
            hostname=state.hostname,
            ip=state.dns_addresses[0],
            available_set=state.dns_addresses,
            on_ready=lambda f: on_ready(f),
            on_failed=lambda reason: self._connection_failed(
                state, attempt, reason
            ),
            anonymous=anonymous,
            tls13=tls13,
            dialer=dialer,
        )

        def on_ready(facts: ConnectionFacts) -> None:
            if state.settled or state.attempt != attempt:
                return
            session = facts.session
            state.timings.connect = (
                session.tcp_connected_at - connect_started
            )
            state.timings.ssl = (
                session.connected_at - session.tcp_connected_at
            )
            self._issue(state, facts)

        self._maybe_race_duplicate(state, anonymous, dialer)

    def _connection_failed(
        self, state: _FetchState, attempt: int, reason: str
    ) -> None:
        """A connection this fetch was riding failed before its
        response: retry per the unified policy (overload GOAWAYs, and
        connection loss when the policy opts in), record everything
        else as a failed request."""
        if state.settled or state.attempt != attempt:
            return
        overload = reason.startswith("GOAWAY: ENHANCE_YOUR_CALM")
        if self._maybe_retry(state, overload=overload):
            return
        self._record_failure(state, reason)

    def _maybe_retry_dead(self, state: _FetchState) -> bool:
        """Status-0 response path: the transport died under an issued
        request.  An overload refusal closes the transport right after
        its GOAWAY, so the pending request surfaces as a dead response
        before (or instead of) the session-failure callback; a
        mid-flight teardown (injected fault, on-path RST) leaves
        ``failed`` unset but the session closed."""
        session = state.facts.session if state.facts else None
        if session is None:
            return False
        failure = getattr(session, "failed", None) or ""
        if failure.startswith("GOAWAY: ENHANCE_YOUR_CALM"):
            return self._maybe_retry(state, overload=True)
        if failure or session.closed:
            return self._maybe_retry(state, overload=False)
        return False

    def _maybe_retry(self, state: _FetchState, overload: bool) -> bool:
        """The single retry decision point for both failure classes."""
        policy = self.context.effective_retry_policy
        if overload:
            if not policy.allows(state.goaway_retries + 1):
                return False
            state.goaway_retries += 1
            attempt = state.goaway_retries
            reason = ReasonCode.MISS_RETRY_AFTER_GOAWAY
        else:
            if not policy.retry_connection_loss:
                return False
            now = self.loop.now()
            if state.first_loss_at is None:
                state.first_loss_at = now
            if not policy.allows(state.loss_retries + 1) or \
                    not policy.within_budget(now - state.started_at):
                self._note_retry_exhausted(state)
                return False
            state.loss_retries += 1
            attempt = state.loss_retries
            reason = ReasonCode.RETRY_BACKOFF
        state.attempt += 1  # invalidate the dead attempt's callbacks
        state.coalesced = False
        state.reason = reason
        audit = self.context.audit
        if audit.enabled:
            audit.record(
                "retry", reason,
                page=self.page.url, hostname=state.hostname,
                path=state.path, decision="retry",
                attempt=attempt,
            )
        backoff = policy.backoff_ms(attempt,
                                    rng=self.context.retry_rng)
        # Re-dial via DNS (warm cache on a retry): a fetch refused
        # while riding a pooled connection never resolved for itself,
        # and a fresh lookup lets the retry coalesce onto a surviving
        # connection instead of hammering the refusing edge.
        self.loop.schedule(
            backoff,
            lambda: self._resolve_then_connect(
                state, anonymous=state.anonymous
            ),
        )
        return True

    def _note_retry_exhausted(self, state: _FetchState) -> None:
        """Connection-loss retries ran out; the failure stands, with
        the exhaustion (not a generic request failure) as its
        reason."""
        state.reason = ReasonCode.RETRY_EXHAUSTED
        audit = self.context.audit
        if audit.enabled:
            audit.record(
                "retry", ReasonCode.RETRY_EXHAUSTED,
                page=self.page.url, hostname=state.hostname,
                path=state.path, decision="exhausted",
                attempt=state.loss_retries,
            )

    def _maybe_race_duplicate(
        self, state: _FetchState, anonymous: bool, dialer=None
    ) -> None:
        """Speculative duplicate connection (no extra DNS; §4.2)."""
        rng = self.context.rng
        if rng is None or self.context.speculative_rate <= 0:
            return
        if rng.random() >= self.context.speculative_rate:
            return
        self.extra_tls += 1
        audit = self.context.audit
        if audit.enabled:
            audit.record(
                "speculative", ReasonCode.MISS_SPECULATIVE_RACE,
                page=self.page.url, hostname=state.hostname,
                path=state.path, decision="speculative",
            )
        self.pool.open_connection(
            hostname=state.hostname,
            ip=state.dns_addresses[min(1, len(state.dns_addresses) - 1)],
            available_set=state.dns_addresses,
            on_ready=lambda f: None,
            on_failed=lambda reason: None,
            anonymous=anonymous,
            dialer=dialer,
        )

    def _reuse(
        self,
        state: _FetchState,
        facts: ConnectionFacts,
        anonymous: bool,
    ) -> None:
        state.facts = facts
        request_start = self.loop.now()

        def go() -> None:
            # Waiting for a still-connecting (or busy H1) session shows
            # up as HAR "blocked" time.
            state.timings.blocked = self.loop.now() - request_start
            self._issue(state, facts)

        facts.session.when_ready(
            go,
            lambda reason: self._connection_failed(
                state, state.attempt, reason
            ),
        )

    def _issue(self, state: _FetchState, facts: ConnectionFacts) -> None:
        state.facts = facts
        attempt = state.attempt
        referer = []
        if state.resource is not None:
            # Truncated at the page, as the paper's privacy-preserving
            # pipeline required (§5.1).
            referer = [("referer", self.page.url)]
        if self.context.user_agent:
            referer.append(("user-agent", self.context.user_agent))

        def on_response(response) -> None:
            if state.settled or state.attempt != attempt:
                return
            if response.status == 421 and not state.retried_after_421:
                # Misdirected: retry on a dedicated connection, keeping
                # the accumulated penalty in the same HAR entry.
                state.retried_after_421 = True
                state.coalesced = False
                state.reason = ReasonCode.MISS_MISDIRECTED_421
                self._open_and_request(state, anonymous=False)
                return
            if response.status == 0 and self._maybe_retry_dead(state):
                return
            self._record_success(state, response)

        facts.session.request(state.hostname, state.path, on_response,
                              extra_headers=referer)

    # -- tracing ------------------------------------------------------------

    def _begin_fetch_span(self, state: _FetchState, root: bool) -> None:
        tracer = self.context.tracer
        if tracer.enabled:
            state.span = tracer.begin(
                "fetch", category="browser", page=self.page.url,
                hostname=state.hostname, path=state.path, root=root,
            )

    def _end_fetch_span(self, state: _FetchState, status: int,
                        via: str) -> None:
        if state.span is not None:
            self.context.tracer.end(state.span, status=status, via=via)

    @staticmethod
    def _via(state: _FetchState) -> str:
        """How the entry was served, for the fetch span."""
        if state.coalesced:
            return "coalesced"
        if state.timings.ssl >= 0 or state.timings.connect >= 0:
            return "new"
        return "same-host"

    def _record_decision(self, state: _FetchState, status: int,
                         decision: str) -> None:
        """The final per-request audit event: how the request was
        served and why.  Last event wins for a (page, host, path) key,
        so a 421 retry's second verdict supersedes the first."""
        audit = self.context.audit
        if not audit.enabled:
            return
        reason = state.reason or ReasonCode.MISS_UNATTRIBUTED
        audit.record(
            "decision", reason, page=self.page.url,
            hostname=state.hostname, path=state.path,
            decision=decision, status=status,
            coalesced=state.coalesced,
        )

    # -- recording ------------------------------------------------------------

    def _content_type(self, state: _FetchState) -> str:
        if state.resource is not None:
            return state.resource.content_type.value
        return "text/html"

    def _make_entry(self, state: _FetchState, status: int,
                    body_size: int) -> HarEntry:
        session = state.facts.session if state.facts else None
        leaf = session.leaf_certificate if session else None
        new_tls = state.timings.ssl >= 0
        server_ip = state.facts.connected_ip if state.facts else ""
        asn, org = 0, ""
        if self.context.asdb is not None and server_ip:
            info = self.context.asdb.lookup(server_ip)
            if info is not None:
                asn, org = info.asn, info.org
        return HarEntry(
            url=f"https://{state.hostname}{state.path}",
            hostname=state.hostname,
            path=state.path,
            started_at=state.started_at,
            timings=state.timings,
            status=status,
            server_ip=server_ip,
            protocol=(
                getattr(session, "negotiated_protocol", "") or "h2"
                if session else ""
            ),
            content_type=self._content_type(state),
            transfer_size=body_size,
            dns_addresses=state.dns_addresses,
            certificate_san=list(leaf.san) if (leaf and new_tls) else [],
            certificate_issuer=(leaf.issuer if (leaf and new_tls) else ""),
            asn=asn,
            as_org=org,
            fetch_mode=(
                state.resource.fetch_mode.value
                if state.resource else "normal"
            ),
            coalesced=state.coalesced,
            initiator_path=(
                (state.resource.parent or self.page.root_path)
                if state.resource else ""
            ),
        )

    def _record_success(
        self, state: _FetchState, response,
        plain_http: bool = False,
    ) -> None:
        if state.settled:
            return
        state.settled = True
        if self.quic_dialer is not None and not plain_http:
            # Remember Alt-Svc advertisements so the *next* fetch to
            # this hostname upgrades to h3 (RFC 7838 semantics: the
            # current response already arrived over the old protocol).
            for name, value in response.headers:
                if name == "alt-svc" and "h3" in value:
                    self.engine.alt_svc_h3.add(state.hostname)
                    break
        state.timings.wait = max(
            0.0, response.headers_at - response.sent_at
        )
        state.timings.receive = max(
            0.0, response.finished_at - response.headers_at
        )
        # Whatever wall-clock the phases above do not explain (queueing
        # on a busy HTTP/1.1 connection, a 421 retry, waiting on a
        # connecting session) is HAR "blocked" time, so that
        # started_at + total == the observed finish time.
        explained = sum(
            max(value, 0.0)
            for value in (
                state.timings.dns, state.timings.connect,
                state.timings.ssl, state.timings.send,
                state.timings.wait, state.timings.receive,
            )
        )
        state.timings.blocked = max(
            0.0, response.finished_at - state.started_at - explained
        )
        entry = self._make_entry(state, response.status, len(response.body))
        if plain_http:
            entry.secure = False
            entry.protocol = "http/1.1"
            entry.url = f"http://{state.hostname}{state.path}"
            entry.server_ip = state.dns_addresses[0]
            if self.context.asdb is not None:
                info = self.context.asdb.lookup(entry.server_ip)
                if info is not None:
                    entry.asn, entry.as_org = info.asn, info.org
        phases = self.context.phases
        if phases.enabled:
            phases.observe("ttfb", state.timings.wait,
                           protocol=entry.protocol)
            if state.loss_retries and state.first_loss_at is not None:
                # Recovery latency: first connection loss to the
                # response that finally landed (chaos runs only; the
                # histogram does not exist otherwise).
                phases.observe(
                    "recovery",
                    response.finished_at - state.first_loss_at,
                    protocol=entry.protocol,
                )
        self.entries.append(entry)
        if state.resource is None:
            self.root_status = response.status
        if self.context.cache_enabled and response.status == 200:
            self.engine.cache.store(
                entry.url, len(response.body), self.loop.now()
            )
        via = "cleartext" if plain_http else self._via(state)
        self._record_decision(state, response.status, via)
        self._end_fetch_span(state, response.status, self._via(state))
        self._discover_children(state, response.status)
        self._done_one()

    def _record_cached(self, state: _FetchState) -> None:
        if state.settled:
            return
        state.settled = True
        entry = self._make_entry(state, 200, 0)
        entry.protocol = "cache"
        self.entries.append(entry)
        self._record_decision(state, 200, "cache")
        self._end_fetch_span(state, 200, "cache")
        self._discover_children(state, 200)
        self._done_one()

    def _record_failure(self, state: _FetchState, reason: str) -> None:
        if state.settled:
            return
        state.settled = True
        entry = self._make_entry(state, 0, 0)
        self.entries.append(entry)
        if state.resource is None:
            self.root_status = 0
        if state.reason not in (ReasonCode.MISS_DNS_NXDOMAIN,
                                ReasonCode.RETRY_EXHAUSTED):
            state.reason = ReasonCode.MISS_REQUEST_FAILED
        self._record_decision(state, 0, "failed")
        if state.span is not None:
            self.context.tracer.end(state.span, status=0, via="failed",
                                    error=reason)
        self._done_one()

    def _discover_children(self, state: _FetchState, status: int) -> None:
        if status != 200:
            return
        is_root = state.resource is None
        can_discover = is_root or state.resource.content_type.can_discover_children
        if not can_discover:
            return
        for child in self.page.children_of(state.path):
            self.outstanding += 1

            def launch(resource=child) -> None:
                self.outstanding -= 1  # handed over to _fetch_resource
                self._fetch_resource(resource)

            self.loop.schedule(child.discovery_delay_ms, launch)

    def _done_one(self) -> None:
        self.outstanding -= 1
        if self.outstanding == 0 and not self.finished:
            self.finished = True
            self._finish()

    def _finish(self) -> None:
        on_load = max(
            (entry.finished_at for entry in self.entries), default=0.0
        ) - self.start_time
        blocking_paths = {
            resource.path
            for resource in self.page.resources
            if resource.content_type.is_render_blocking
        }
        blocking = [
            entry.finished_at
            for entry in self.entries
            if entry.path == self.page.root_path
            or entry.path in blocking_paths
        ]
        on_content_load = (
            max(blocking) - self.start_time if blocking else on_load
        )
        page = HarPage(
            url=self.page.url,
            hostname=self.page.hostname,
            rank=self.page.rank,
            on_content_load=on_content_load,
            on_load=on_load,
            success=self.root_status == 200,
            failure_reason="" if self.root_status == 200 else
            f"root status {self.root_status}",
            extra_tls_connections=self.extra_tls,
        )
        phases = self.context.phases
        if phases.enabled and page.success:
            phases.observe("page", on_load)
        self.pool.close_all()
        self.on_complete(HarArchive(page=page, entries=self.entries))


class BrowserEngine:
    """Loads pages with a given policy; one engine per browser profile."""

    def __init__(self, context: BrowserContext) -> None:
        self.context = context
        self.cache = BrowserCache(enabled=context.cache_enabled)
        self.loads: List[PageLoad] = []
        #: Hostnames whose responses advertised ``Alt-Svc: h3``;
        #: subsequent fetches to them dial QUIC.
        self.alt_svc_h3: set = set()
        #: QUIC session tickets (cross-hostname validity), shared by
        #: every page load in one browser session.
        self.quic_tickets: List[dict] = []

    def load(
        self, page: WebPage, on_complete: Callable[[HarArchive], None]
    ) -> PageLoad:
        """Begin loading ``page``; ``on_complete`` gets the HAR archive.

        Run the network's event loop to drive the load to completion.
        """
        load = PageLoad(self, page, on_complete)
        self.loads.append(load)
        load.start()
        return load

    def load_blocking(self, page: WebPage) -> HarArchive:
        """Convenience: load and run the loop until the page finishes."""
        result: List[HarArchive] = []
        self.load(page, result.append)
        self.context.network.loop.run_until_idle()
        if not result:
            raise RuntimeError(f"page load for {page.url} never completed")
        return result[0]

    def new_session(self) -> None:
        """Fresh browser session: flush the resource cache, the DNS
        cache, and TLS session tickets, as the paper's active
        measurements did between loads (§3.1)."""
        self.cache.flush()
        self.context.resolver.flush_cache()
        if self.context.tls_session_cache is not None:
            self.context.tls_session_cache.clear()
        self.alt_svc_h3.clear()
        self.quic_tickets.clear()
