"""Browser models.

Reimplements the coalescing behaviours the paper verified by source
inspection and testing (§2.3):

* :class:`ChromiumPolicy` -- IP-based coalescing against the single
  *connected* address only;
* :class:`FirefoxPolicy` -- IP-based coalescing with transitivity over
  the cached *available* address set, plus ORIGIN-frame support (the
  only browser with it);
* :class:`IdealOriginPolicy` -- the §6.8 recommendation: trust
  certificate + ORIGIN without re-querying DNS.

The :class:`BrowserEngine` loads :class:`~repro.web.page.WebPage`
dependency graphs over the simulated network and emits HAR archives,
playing the role WebPageTest + Chrome played in §3.1.
"""

from repro.browser.policy import (
    CoalescingPolicy,
    ConnectionFacts,
    ChromiumPolicy,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
    POLICY_FACTORIES,
    policy_by_name,
)
from repro.browser.pool import (
    ConnectionPool,
    ConnectionRegistry,
    PoolStats,
)
from repro.browser.cache import BrowserCache
from repro.browser.engine import BrowserContext, BrowserEngine

__all__ = [
    "CoalescingPolicy",
    "ConnectionFacts",
    "ChromiumPolicy",
    "FirefoxPolicy",
    "IdealOriginPolicy",
    "NoCoalescingPolicy",
    "POLICY_FACTORIES",
    "policy_by_name",
    "ConnectionPool",
    "ConnectionRegistry",
    "PoolStats",
    "BrowserCache",
    "BrowserContext",
    "BrowserEngine",
]
