"""Browser connection pool.

Owns the open sessions for one page-load context, answers
"can anything serve this hostname?", and opens new connections when
nothing can.  Reuse comes in two flavours the statistics distinguish:

* *same-host reuse* -- another request to a hostname the pool already
  has a connection for (ordinary HTTP/2 behaviour);
* *coalesced reuse* -- a request to a different hostname served over an
  existing connection, authorized by the active
  :class:`~repro.browser.policy.CoalescingPolicy`.

Requests with ``crossorigin=anonymous`` / ``fetch()`` semantics live in
a separate credential-less partition and never reuse (or donate)
connections across the partition boundary, which is the §5.3
observation that capped coalescing in the deployment.

Lookups are indexed: the pool keeps a hostname->connections map (for
same-host reuse) and an IP->connections map (consulted when the active
policy only grants reuse on address overlap), so neither hot path
scans every open connection.  :class:`PoolStats` counts how each
lookup was answered, and dead (closed/failed) sessions are pruned from
the registry and both indexes as soon as a lookup or accounting path
touches them.

Every lookup returns a :class:`LookupOutcome` whose
:class:`~repro.audit.reasons.ReasonCode` says *why* the connection was
(or was not) reused; the same code is stamped on the pool's trace
events and audit-log entries, so the three can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.browser.policy import CoalescingPolicy, ConnectionFacts
from repro.telemetry import NULL_TRACER, RegistryStats
from repro.transport.base import Dialer

#: Browsers cap parallel HTTP/1.1 connections per host; 6 is the
#: long-standing Chromium/Firefox default.
MAX_H1_CONNECTIONS_PER_HOST = 6


@dataclass(frozen=True)
class LookupOutcome:
    """A pool lookup's answer plus the reason code explaining it.

    Truthy exactly when a connection was found, so call sites read
    naturally (``if outcome: reuse(outcome.facts)``).
    """

    facts: Optional[ConnectionFacts]
    reason: ReasonCode

    @property
    def hit(self) -> bool:
        return self.facts is not None

    def __bool__(self) -> bool:
        return self.facts is not None


#: When a coalesce lookup rejects several candidates for different
#: reasons, report the one that came closest to a grant: a pure
#: address-overlap failure (the §2.3 transitivity loss) beats a SAN
#: failure beats a protocol failure.
_COALESCE_MISS_PRIORITY = {
    ReasonCode.MISS_NO_DNS_OVERLAP: 3,
    ReasonCode.MISS_SAN_MISMATCH: 2,
    ReasonCode.MISS_CANNOT_MULTIPLEX: 1,
}


class PoolStats(RegistryStats):
    """Connection-pool counters, backed by the unified metrics
    registry.

    ``same_host_lookups`` .. ``candidates_examined`` are the lookup
    accounting: every find_same_host / find_coalescable call, how it
    was served, and how many candidates the policy actually examined
    -- the evidence that indexing did not change behaviour, only the
    amount of work.  ``pruned_connections`` counts dead
    (closed/failed) entries removed from the registry.
    """

    _prefix = "pool."
    _counters = (
        "connections_opened",
        "tls_handshakes",
        "same_host_reuses",
        "coalesced_reuses",
        "connection_failures",
        "same_host_lookups",
        "coalesce_lookups",
        "indexed_lookups",
        "full_scans",
        "candidates_examined",
        "pruned_connections",
    )


class ConnectionRegistry(List[ConnectionFacts]):
    """The pool's connection list plus its two lookup indexes.

    Behaves as a plain list of :class:`ConnectionFacts` (iteration and
    ``append`` keep working for callers and tests), while maintaining a
    hostname index keyed by SNI and an address index keyed by every IP
    in each connection's connected/available set.
    """

    def __init__(self, items: Iterable[ConnectionFacts] = ()) -> None:
        super().__init__()
        self.by_sni: Dict[str, List[ConnectionFacts]] = {}
        self.by_ip: Dict[str, List[ConnectionFacts]] = {}
        #: (sni, transport-name) -> connections; the endpoint index
        #: that lets callers distinguish an h3 (quic) entry from a
        #: tcp-tls one for the same hostname.
        self.by_endpoint: Dict[Tuple[str, str], List[ConnectionFacts]] = {}
        self._next_seq = 0
        for facts in items:
            self.append(facts)

    # -- mutation (keeps indexes in sync) ---------------------------------

    def append(self, facts: ConnectionFacts) -> None:
        facts.pool_seq = self._next_seq
        self._next_seq += 1
        super().append(facts)
        self.by_sni.setdefault(facts.sni, []).append(facts)
        self.by_endpoint.setdefault(
            (facts.sni, facts.transport_name), []
        ).append(facts)
        for ip in self._addresses_of(facts):
            self.by_ip.setdefault(ip, []).append(facts)

    def discard(self, facts: ConnectionFacts) -> bool:
        """Remove one entry (by identity) from the list and indexes."""
        for index, candidate in enumerate(self):
            if candidate is facts:
                del self[index]
                break
        else:
            return False
        self._unindex(facts)
        return True

    def clear(self) -> None:
        super().clear()
        self.by_sni.clear()
        self.by_ip.clear()
        self.by_endpoint.clear()

    def _unindex(self, facts: ConnectionFacts) -> None:
        bucket = self.by_sni.get(facts.sni, [])
        self._remove_identity(bucket, facts)
        if not bucket:
            self.by_sni.pop(facts.sni, None)
        endpoint_key = (facts.sni, facts.transport_name)
        bucket = self.by_endpoint.get(endpoint_key, [])
        self._remove_identity(bucket, facts)
        if not bucket:
            self.by_endpoint.pop(endpoint_key, None)
        for ip in self._addresses_of(facts):
            bucket = self.by_ip.get(ip, [])
            self._remove_identity(bucket, facts)
            if not bucket:
                self.by_ip.pop(ip, None)

    @staticmethod
    def _remove_identity(bucket: List[ConnectionFacts],
                         facts: ConnectionFacts) -> None:
        for index, candidate in enumerate(bucket):
            if candidate is facts:
                del bucket[index]
                return

    @staticmethod
    def _addresses_of(facts: ConnectionFacts) -> frozenset:
        addresses = set(facts.available_set)
        if facts.connected_ip:
            addresses.add(facts.connected_ip)
        return frozenset(addresses)

    # -- lookup -----------------------------------------------------------

    def for_host(self, hostname: str) -> List[ConnectionFacts]:
        """Connections with this SNI, in pool insertion order."""
        return self.by_sni.get(hostname, [])

    def for_endpoint(
        self, hostname: str, transport: str
    ) -> List[ConnectionFacts]:
        """Connections with this SNI on this transport, in pool
        insertion order."""
        return self.by_endpoint.get((hostname, transport), [])

    def candidates_for_ips(
        self, addresses: Sequence[str]
    ) -> List[ConnectionFacts]:
        """Connections whose address set touches ``addresses``,
        deduplicated and in pool insertion order."""
        seen = set()
        candidates: List[ConnectionFacts] = []
        for address in addresses:
            for facts in self.by_ip.get(address, ()):
                if id(facts) not in seen:
                    seen.add(id(facts))
                    candidates.append(facts)
        candidates.sort(key=lambda facts: facts.pool_seq)
        return candidates


class ConnectionPool:
    """Session registry plus policy-driven reuse decisions.

    The pool is protocol-agnostic: it opens sessions through a
    :class:`~repro.transport.base.Dialer` and keys its decisions on
    each session's :class:`~repro.transport.base.SessionCapabilities`,
    never on concrete session classes.  ``dialer`` is the default used
    by :meth:`open_connection`; callers may pass a different one per
    call (the engine does this to open QUIC connections after an
    Alt-Svc or HTTPS-record discovery).
    """

    def __init__(
        self,
        policy: CoalescingPolicy,
        dialer: Optional[Dialer] = None,
        prefer_h3: bool = False,
        tracer=None,
        audit=None,
        page: str = "",
    ) -> None:
        self.policy = policy
        self.dialer = dialer
        #: When True, same-host lookups keep scanning past a usable
        #: tcp-tls entry in case a quic one exists for the hostname
        #: (a browser that has upgraded a host prefers its h3
        #: connection).  Off by default so h2-only crawls examine
        #: exactly the candidates they did pre-refactor.
        self.prefer_h3 = prefer_h3
        self.connections = ConnectionRegistry()
        self.stats = PoolStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.audit = audit if audit is not None else NULL_AUDIT
        #: Page URL stamped on this pool's audit events (one pool per
        #: page load).
        self.page = page

    # -- lookup -------------------------------------------------------------

    def _usable(self, facts: ConnectionFacts) -> bool:
        session = facts.session
        return not session.closed and session.failed is None

    def _prune(self, dead: Sequence[ConnectionFacts]) -> None:
        for facts in dead:
            if self.connections.discard(facts):
                self.stats.pruned_connections += 1

    def _note_lookup(self, kind: str, hostname: str,
                     outcome: LookupOutcome) -> None:
        """Record one lookup verdict on the trace and the audit log.

        Both carry the same :class:`~repro.audit.reasons.ReasonCode`,
        so the two streams cannot disagree.
        """
        if self.tracer.enabled:
            self.tracer.instant(
                "pool.lookup", category="pool", kind=kind,
                hostname=hostname, hit=outcome.hit,
                reason=outcome.reason.value,
            )
        if self.audit.enabled:
            self.audit.record(
                "lookup", outcome.reason, page=self.page,
                hostname=hostname, lookup=kind, hit=outcome.hit,
                reused_sni=outcome.facts.sni if outcome.facts else "",
            )

    @property
    def observed(self) -> bool:
        """Whether any observer (tracer or audit log) is live; precise
        miss classification is only worth extra work when one is."""
        return self.tracer.enabled or self.audit.enabled

    def find_same_host(
        self, hostname: str, anonymous: bool = False
    ) -> LookupOutcome:
        """An existing connection whose SNI is this hostname.

        HTTP/1.1 sessions are only returned when idle; busy ones force
        the caller to open another connection (browser-style).
        """
        self.stats.same_host_lookups += 1
        self.stats.indexed_lookups += 1
        found: Optional[ConnectionFacts] = None
        idle_h1: Optional[ConnectionFacts] = None
        at_cap: Optional[ConnectionFacts] = None
        h1_count = 0
        partition_skips = 0
        dead: List[ConnectionFacts] = []
        for facts in self.connections.for_host(hostname):
            if not self._usable(facts):
                dead.append(facts)
                continue
            if facts.anonymous_partition != anonymous:
                partition_skips += 1
                continue
            self.stats.candidates_examined += 1
            if facts.can_multiplex:
                if not self.prefer_h3:
                    found = facts
                    break
                if facts.transport_name == "quic":
                    found = facts
                    break
                if found is None:
                    # Usable, but keep scanning in case the host was
                    # upgraded to h3 after this entry was opened.
                    found = facts
                continue
            if at_cap is None:
                at_cap = facts
            h1_count += 1
            if not facts.session.h1_busy and idle_h1 is None:
                idle_h1 = facts
        self._prune(dead)
        if found is not None:
            outcome = LookupOutcome(found, ReasonCode.POOL_HIT_SAME_HOST)
        elif idle_h1 is not None:
            outcome = LookupOutcome(idle_h1, ReasonCode.POOL_HIT_H1_IDLE)
        elif h1_count >= MAX_H1_CONNECTIONS_PER_HOST:
            # At the cap: reuse the first (requests will queue on it).
            outcome = LookupOutcome(at_cap, ReasonCode.POOL_HIT_H1_CAP)
        elif h1_count:
            # Busy HTTP/1.1 connections under the cap: the browser
            # opens another parallel connection.
            outcome = LookupOutcome(
                None, ReasonCode.MISS_CANNOT_MULTIPLEX
            )
        elif dead:
            outcome = LookupOutcome(None, ReasonCode.MISS_CLOSED_STALE)
        elif partition_skips:
            outcome = LookupOutcome(
                None, ReasonCode.MISS_ANONYMOUS_PARTITION
            )
        else:
            outcome = LookupOutcome(None, ReasonCode.MISS_NO_CONNECTION)
        self._note_lookup("same-host", hostname, outcome)
        return outcome

    def find_coalescable(
        self,
        hostname: str,
        dns_addresses: Sequence[str],
        anonymous: bool = False,
    ) -> LookupOutcome:
        """An existing connection the policy lets this hostname reuse."""
        if anonymous:
            # Credential-less fetches do not coalesce (§5.3).
            outcome = LookupOutcome(
                None, ReasonCode.MISS_ANONYMOUS_PARTITION
            )
            self._note_lookup("coalesce", hostname, outcome)
            return outcome
        self.stats.coalesce_lookups += 1
        policy = self.policy
        if not getattr(policy, "coalesces", True):
            outcome = LookupOutcome(None, ReasonCode.MISS_POLICY_FORBIDS)
            self._note_lookup("coalesce", hostname, outcome)
            return outcome
        indexed = getattr(policy, "requires_ip_overlap", False)
        if indexed:
            # Every grant implies an address overlap, so only
            # connections sharing an address with the DNS answer can
            # possibly match.
            if not dns_addresses:
                outcome = LookupOutcome(
                    None, ReasonCode.MISS_NO_DNS_OVERLAP
                )
                self._note_lookup("coalesce", hostname, outcome)
                return outcome
            self.stats.indexed_lookups += 1
            candidates: Iterable[ConnectionFacts] = (
                self.connections.candidates_for_ips(dns_addresses)
            )
        else:
            # ORIGIN-frame policies may reuse without any IP overlap;
            # their authority (the origin set) lives in the session, so
            # the full registry is the candidate set.
            self.stats.full_scans += 1
            candidates = list(self.connections)
        found: Optional[ConnectionFacts] = None
        hit_reason = ReasonCode.POOL_HIT_IP_SAN
        miss_reason: Optional[ReasonCode] = None
        examined = 0
        dead: List[ConnectionFacts] = []
        for facts in candidates:
            if not self._usable(facts):
                dead.append(facts)
                continue
            if facts.anonymous_partition:
                continue
            if facts.sni == hostname:
                continue  # that would be same-host reuse
            self.stats.candidates_examined += 1
            examined += 1
            verdict = policy.explain(facts, hostname, dns_addresses)
            if verdict.is_hit:
                found = facts
                hit_reason = verdict
                break
            if miss_reason is None or (
                _COALESCE_MISS_PRIORITY.get(verdict, 0)
                > _COALESCE_MISS_PRIORITY.get(miss_reason, 0)
            ):
                miss_reason = verdict
        self._prune(dead)
        if found is not None:
            outcome = LookupOutcome(found, hit_reason)
        elif examined:
            outcome = LookupOutcome(
                None, miss_reason or ReasonCode.MISS_NO_CANDIDATE
            )
        elif indexed and self.observed and self._has_other_usable(
            hostname
        ):
            # The IP index returned nothing, but usable connections to
            # other hosts exist -- none shares an address with the DNS
            # answer.  (Classification only; skipped unobserved.)
            outcome = LookupOutcome(None, ReasonCode.MISS_NO_DNS_OVERLAP)
        else:
            outcome = LookupOutcome(None, ReasonCode.MISS_NO_CANDIDATE)
        self._note_lookup("coalesce", hostname, outcome)
        return outcome

    def _has_other_usable(self, hostname: str) -> bool:
        """Any usable, non-anonymous connection with a different SNI."""
        return any(
            self._usable(facts)
            and not facts.anonymous_partition
            and facts.sni != hostname
            for facts in self.connections
        )

    def _scan_coalescable(
        self,
        hostname: str,
        dns_addresses: Sequence[str],
        anonymous: bool = False,
    ) -> Optional[ConnectionFacts]:
        """Reference implementation: the pre-index full scan.

        Kept (and exercised by the tests) as the behavioural oracle for
        :meth:`find_coalescable`; it must pick the same connection.
        """
        if anonymous:
            return None
        for facts in list(self.connections):
            if not self._usable(facts) or facts.anonymous_partition:
                continue
            if facts.sni == hostname:
                continue
            if self.policy.can_reuse(facts, hostname, dns_addresses):
                return facts
        return None

    # -- opening -------------------------------------------------------------

    def open_connection(
        self,
        hostname: str,
        ip: str,
        available_set: Sequence[str],
        on_ready: Callable[[ConnectionFacts], None],
        on_failed: Callable[[str], None],
        anonymous: bool = False,
        tls13: Optional[bool] = None,
        dialer: Optional[Dialer] = None,
    ) -> ConnectionFacts:
        """Open a new connection to ``ip`` with SNI ``hostname``.

        ``dialer`` overrides the pool's default for this one call; the
        session is registered before :meth:`Session.connect` runs, so
        in-flight connections are visible to concurrent lookups exactly
        as before the session layer existed.
        """
        active = dialer if dialer is not None else self.dialer
        session = active.dial(hostname, ip, tls13=tls13)
        facts = ConnectionFacts(
            session=session,
            sni=hostname,
            connected_ip=ip,
            available_set=frozenset(available_set),
            anonymous_partition=anonymous,
            endpoint=active.endpoint(hostname, active.port),
        )
        self.connections.append(facts)
        self.stats.connections_opened += 1

        def ready() -> None:
            self.stats.tls_handshakes += 1
            on_ready(facts)

        def failed(reason: str) -> None:
            self.stats.connection_failures += 1
            # A failed session can never serve a request again; drop it
            # from the registry and indexes immediately.
            self._prune([facts])
            on_failed(reason)

        session.connect(on_ready=ready, on_failed=failed)
        return facts

    def note_same_host_reuse(self) -> None:
        self.stats.same_host_reuses += 1

    def note_coalesced_reuse(self) -> None:
        self.stats.coalesced_reuses += 1

    def close_all(self) -> None:
        closed = len(self.connections)
        for facts in list(self.connections):
            facts.session.close()
        self.connections.clear()
        self.stats.pruned_connections += closed

    @property
    def open_count(self) -> int:
        self._prune([
            facts for facts in self.connections
            if not self._usable(facts)
        ])
        return len(self.connections)
