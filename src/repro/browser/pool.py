"""Browser connection pool.

Owns the open sessions for one page-load context, answers
"can anything serve this hostname?", and opens new connections when
nothing can.  Reuse comes in two flavours the statistics distinguish:

* *same-host reuse* -- another request to a hostname the pool already
  has a connection for (ordinary HTTP/2 behaviour);
* *coalesced reuse* -- a request to a different hostname served over an
  existing connection, authorized by the active
  :class:`~repro.browser.policy.CoalescingPolicy`.

Requests with ``crossorigin=anonymous`` / ``fetch()`` semantics live in
a separate credential-less partition and never reuse (or donate)
connections across the partition boundary, which is the §5.3
observation that capped coalescing in the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.browser.policy import CoalescingPolicy, ConnectionFacts
from repro.h2.client import H2ClientSession
from repro.h2.tls_channel import TlsClientConfig
from repro.netsim.network import Host, Network

#: Browsers cap parallel HTTP/1.1 connections per host; 6 is the
#: long-standing Chromium/Firefox default.
MAX_H1_CONNECTIONS_PER_HOST = 6


@dataclass
class PoolStats:
    connections_opened: int = 0
    tls_handshakes: int = 0
    same_host_reuses: int = 0
    coalesced_reuses: int = 0
    connection_failures: int = 0


class ConnectionPool:
    """Session registry plus policy-driven reuse decisions."""

    def __init__(
        self,
        network: Network,
        client_host: Host,
        policy: CoalescingPolicy,
        tls_config_factory: Callable[[str], TlsClientConfig],
        origin_aware: bool = True,
        port: int = 443,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.policy = policy
        self.tls_config_factory = tls_config_factory
        self.origin_aware = origin_aware
        self.port = port
        self.connections: List[ConnectionFacts] = []
        self.stats = PoolStats()

    # -- lookup -------------------------------------------------------------

    def _usable(self, facts: ConnectionFacts) -> bool:
        session = facts.session
        return not session.closed and session.failed is None

    def find_same_host(
        self, hostname: str, anonymous: bool = False
    ) -> Optional[ConnectionFacts]:
        """An existing connection whose SNI is this hostname.

        HTTP/1.1 sessions are only returned when idle; busy ones force
        the caller to open another connection (browser-style).
        """
        idle_h1: Optional[ConnectionFacts] = None
        h1_count = 0
        for facts in self.connections:
            if facts.sni != hostname or not self._usable(facts):
                continue
            if facts.anonymous_partition != anonymous:
                continue
            if facts.can_multiplex:
                return facts
            h1_count += 1
            if not facts.session.h1_busy and idle_h1 is None:
                idle_h1 = facts
        if idle_h1 is not None:
            return idle_h1
        if h1_count >= MAX_H1_CONNECTIONS_PER_HOST:
            # At the cap: reuse the first (requests will queue on it).
            for facts in self.connections:
                if facts.sni == hostname and self._usable(facts) \
                        and facts.anonymous_partition == anonymous:
                    return facts
        return None

    def find_coalescable(
        self,
        hostname: str,
        dns_addresses: Sequence[str],
        anonymous: bool = False,
    ) -> Optional[ConnectionFacts]:
        """An existing connection the policy lets this hostname reuse."""
        if anonymous:
            return None  # credential-less fetches do not coalesce (§5.3)
        for facts in self.connections:
            if not self._usable(facts) or facts.anonymous_partition:
                continue
            if facts.sni == hostname:
                continue  # that would be same-host reuse
            if self.policy.can_reuse(facts, hostname, dns_addresses):
                return facts
        return None

    # -- opening -------------------------------------------------------------

    def open_connection(
        self,
        hostname: str,
        ip: str,
        available_set: Sequence[str],
        on_ready: Callable[[ConnectionFacts], None],
        on_failed: Callable[[str], None],
        anonymous: bool = False,
        tls13: Optional[bool] = None,
    ) -> ConnectionFacts:
        """Open a new connection to ``ip`` with SNI ``hostname``."""
        tls_config = self.tls_config_factory(hostname)
        if tls13 is not None:
            tls_config.tls13 = tls13
        session = H2ClientSession(
            self.network,
            self.client_host,
            ip,
            tls_config,
            port=self.port,
            origin_aware=self.origin_aware,
        )
        facts = ConnectionFacts(
            session=session,
            sni=hostname,
            connected_ip=ip,
            available_set=frozenset(available_set),
            anonymous_partition=anonymous,
        )
        self.connections.append(facts)
        self.stats.connections_opened += 1

        def ready() -> None:
            self.stats.tls_handshakes += 1
            on_ready(facts)

        def failed(reason: str) -> None:
            self.stats.connection_failures += 1
            on_failed(reason)

        session.connect(on_ready=ready, on_failed=failed)
        return facts

    def note_same_host_reuse(self) -> None:
        self.stats.same_host_reuses += 1

    def note_coalesced_reuse(self) -> None:
        self.stats.coalesced_reuses += 1

    def close_all(self) -> None:
        for facts in self.connections:
            facts.session.close()

    @property
    def open_count(self) -> int:
        return sum(1 for facts in self.connections if self._usable(facts))
