"""Connection-coalescing policies (paper §2.3).

Given an existing connection's facts and a candidate hostname (with its
fresh DNS answer, when the policy wants one), a policy decides whether
the connection may be reused.  Every policy requires the connection's
certificate to cover the hostname -- without that, reuse would draw a
``421 Misdirected Request`` or an outright authentication failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Sequence

from repro.audit.reasons import ReasonCode
from repro.transport.base import Endpoint, SessionCapabilities, capabilities_of


@dataclass
class ConnectionFacts:
    """What a policy may inspect about an open connection.

    Policies reason over the session's *capabilities* -- the
    protocol-agnostic record of what the negotiated session can do --
    never over concrete session classes, so a QUIC session and a
    TLS-over-TCP session with the same capabilities are
    interchangeable to every policy.
    """

    session: object  # repro.transport.base.Session-compatible
    sni: str
    connected_ip: str
    #: All addresses in the DNS answer that produced this connection.
    available_set: FrozenSet[str] = frozenset()
    anonymous_partition: bool = False
    #: Insertion order within the owning pool; assigned by the pool's
    #: registry so indexed lookups preserve first-match semantics.
    pool_seq: int = -1
    #: Where the session was dialed to; ``None`` for bare test doubles.
    endpoint: Optional[Endpoint] = None

    def certificate_covers(self, hostname: str) -> bool:
        return self.session.certificate_covers(hostname)

    def origin_set_covers(self, hostname: str) -> bool:
        return self.session.origin_set_covers(hostname)

    @property
    def capabilities(self) -> SessionCapabilities:
        return capabilities_of(self.session)

    @property
    def transport_name(self) -> str:
        return self.endpoint.transport if self.endpoint else "tcp-tls"

    @property
    def can_multiplex(self) -> bool:
        return self.capabilities.can_multiplex


class CoalescingPolicy:
    """Decides cross-hostname connection reuse.

    :meth:`explain` is the single source of truth: it returns the
    :class:`~repro.audit.reasons.ReasonCode` for one candidate
    connection, and :meth:`can_reuse` is derived from it -- so the
    audit log, the pool's trace events, and the actual reuse decision
    can never disagree.
    """

    name = "base"
    #: Whether a DNS answer must be obtained before attempting reuse.
    #: True for real browsers -- both Chromium and Firefox "begin with a
    #: DNS query for subresources, despite being defined as optional in
    #: the specification" (§2.3).
    requires_dns_before_reuse = True
    #: Whether this policy can ever answer True to :meth:`can_reuse`;
    #: pools skip the coalescing lookup entirely when False.
    coalesces = True
    #: Whether every reuse this policy grants implies an address overlap
    #: between the connection and the candidate's DNS answer.  When True
    #: the pool may restrict the search to its IP index.
    requires_ip_overlap = False

    def explain(
        self,
        facts: ConnectionFacts,
        hostname: str,
        dns_addresses: Sequence[str],
    ) -> ReasonCode:
        """Why this connection may (``is_hit``) or may not serve
        ``hostname``."""
        raise NotImplementedError

    def can_reuse(
        self,
        facts: ConnectionFacts,
        hostname: str,
        dns_addresses: Sequence[str],
    ) -> bool:
        return self.explain(facts, hostname, dns_addresses).is_hit


class NoCoalescingPolicy(CoalescingPolicy):
    """Never coalesce across hostnames (HTTP/1.1-era behaviour)."""

    name = "none"
    coalesces = False

    def explain(self, facts, hostname, dns_addresses):
        return ReasonCode.MISS_POLICY_FORBIDS


class ChromiumPolicy(CoalescingPolicy):
    """Chromium: IP match against the connected address only.

    "Chromium keeps only IP_A in its connected set and discards IP_B,
    causing the transitivity with IPs for the subresource to be lost"
    (§2.3).  Reuse requires the subresource's DNS answer to contain the
    exact address the connection was made to, and SAN coverage.
    """

    name = "chromium"
    requires_ip_overlap = True

    def explain(self, facts, hostname, dns_addresses):
        if not facts.can_multiplex:
            return ReasonCode.MISS_CANNOT_MULTIPLEX
        if not facts.certificate_covers(hostname):
            return ReasonCode.MISS_SAN_MISMATCH
        if facts.connected_ip in dns_addresses:
            return ReasonCode.POOL_HIT_IP_SAN
        return ReasonCode.MISS_NO_DNS_OVERLAP


class FirefoxPolicy(CoalescingPolicy):
    """Firefox: transitive IP matching plus (optionally) ORIGIN frames.

    "Firefox, alongside the connected-set, additionally caches the
    available-set of addresses returned in the DNS response" and reuses
    on any overlap (§2.3).  With ``origin_frames=True`` (Firefox >= 75
    with the pref enabled), a hostname in the server's advertised
    origin set is reusable regardless of IP overlap -- but Firefox
    still performs the blocking DNS query first (§6.8), so
    ``requires_dns_before_reuse`` stays True.
    """

    name = "firefox"

    def __init__(self, origin_frames: bool = True) -> None:
        self.origin_frames = origin_frames
        # Without ORIGIN frames every grant needs an address overlap, so
        # the pool's IP index covers the whole candidate set.
        self.requires_ip_overlap = not origin_frames
        if origin_frames:
            self.name = "firefox+origin"

    def explain(self, facts, hostname, dns_addresses):
        capabilities = facts.capabilities
        if not capabilities.can_multiplex:
            return ReasonCode.MISS_CANNOT_MULTIPLEX
        if not facts.certificate_covers(hostname):
            return ReasonCode.MISS_SAN_MISMATCH
        if (
            self.origin_frames
            and capabilities.supports_origin_frame
            and facts.origin_set_covers(hostname)
        ):
            return ReasonCode.POOL_HIT_ORIGIN_FRAME
        if facts.available_set.intersection(dns_addresses):
            return ReasonCode.POOL_HIT_IP_SAN
        return ReasonCode.MISS_NO_DNS_OVERLAP


class IdealOriginPolicy(CoalescingPolicy):
    """The §6.8 recommendation: respect the ORIGIN, skip the DNS.

    Certificate SAN plus origin-set membership is sufficient authority;
    no DNS query is made for such subresources, eliminating the
    render-blocking queries and their plaintext exposure.  Hostnames
    *not* in any origin set are resolved normally and may still reuse
    connections via Firefox-style available-set transitivity -- the
    ideal client is a strict superset of Firefox, never worse.
    """

    name = "ideal-origin"
    requires_dns_before_reuse = False

    def explain(self, facts, hostname, dns_addresses):
        capabilities = facts.capabilities
        if not capabilities.can_multiplex:
            return ReasonCode.MISS_CANNOT_MULTIPLEX
        if not facts.certificate_covers(hostname):
            return ReasonCode.MISS_SAN_MISMATCH
        if (
            capabilities.supports_origin_frame
            and facts.origin_set_covers(hostname)
        ):
            return ReasonCode.POOL_HIT_ORIGIN_FRAME
        if facts.available_set.intersection(dns_addresses):
            return ReasonCode.POOL_HIT_IP_SAN
        return ReasonCode.MISS_NO_DNS_OVERLAP


#: Canonical name -> factory registry.  The CLI, the parallel crawl
#: workers, and the crawl cache all key on these names, so a policy
#: object never has to cross a process boundary.
POLICY_FACTORIES: Dict[str, Callable[[], CoalescingPolicy]] = {
    "chromium": ChromiumPolicy,
    "firefox": lambda: FirefoxPolicy(origin_frames=False),
    "firefox+origin": lambda: FirefoxPolicy(origin_frames=True),
    "ideal-origin": IdealOriginPolicy,
    "none": NoCoalescingPolicy,
}


def policy_by_name(name: str) -> CoalescingPolicy:
    """Instantiate a registered policy by its canonical name."""
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(POLICY_FACTORIES)}"
        ) from None
    return factory()
