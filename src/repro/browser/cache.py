"""Browser resource cache.

Active measurements in the paper intentionally cleared caches between
loads (§6.1); the cache exists so order-effects and warm-load
behaviour can be studied, and so "new session" semantics (flush
everything) are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CachedResource:
    url: str
    size_bytes: int
    stored_at: float
    max_age_ms: float

    def fresh_at(self, now: float) -> bool:
        return now <= self.stored_at + self.max_age_ms


class BrowserCache:
    """URL-keyed freshness cache."""

    #: Default freshness window: 1 hour in ms.
    DEFAULT_MAX_AGE_MS = 3600.0 * 1000

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: Dict[str, CachedResource] = {}
        self.hits = 0
        self.misses = 0

    def store(
        self,
        url: str,
        size_bytes: int,
        now: float,
        max_age_ms: Optional[float] = None,
    ) -> None:
        if not self.enabled:
            return
        self._entries[url] = CachedResource(
            url=url,
            size_bytes=size_bytes,
            stored_at=now,
            max_age_ms=(
                max_age_ms if max_age_ms is not None
                else self.DEFAULT_MAX_AGE_MS
            ),
        )

    def get(self, url: str, now: float) -> Optional[CachedResource]:
        if not self.enabled:
            return None
        entry = self._entries.get(url)
        if entry is None or not entry.fresh_at(now):
            if entry is not None:
                del self._entries[url]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def flush(self) -> None:
        """Clear everything -- the between-measurements reset of §6.1."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
