"""The unified retry/backoff policy for the browser engine.

One :class:`RetryPolicy` covers every failure class the engine ever
re-dials, so there is exactly one retry code path:

* **overload refusals** -- the edge answered the handshake with
  ``GOAWAY ENHANCE_YOUR_CALM`` (the traffic capacity model).  The
  legacy ``BrowserContext.goaway_retry_limit`` /
  ``goaway_retry_backoff_ms`` pair now derives a policy via
  :meth:`RetryPolicy.legacy_goaway`, preserving the original linear
  backoff and audit sequence byte-for-byte.
* **connection loss** -- a mid-flight teardown killed the transport
  under the request (injected faults, middlebox RSTs).  Off by
  default (``retry_connection_loss=False`` keeps the pre-chaos
  behaviour: the loss surfaces as a failed request); the chaos runner
  turns it on so blast-radius runs measure recovery, not just damage.

Backoff is deterministic: attempt ``n`` waits
``base * multiplier**(n-1)`` (``multiplier=1.0`` degenerates to the
legacy linear ``base * n`` schedule) plus an optional jitter drawn
from a dedicated seeded generator -- never from the context RNG that
drives TLS-version and speculative-connection draws, so enabling
retries cannot perturb an unrelated decision stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) the engine re-dials a failed request."""

    #: Retries allowed per request *per failure class* (overload
    #: GOAWAY and connection loss count separately, as the legacy
    #: GOAWAY path did).  0 disables retries.
    max_retries: int = 0
    #: Base delay before the first retry.
    backoff_base_ms: float = 120.0
    #: Growth factor between attempts.  1.0 reproduces the legacy
    #: linear schedule (``base * attempt``); 2.0 is classic
    #: exponential backoff.
    backoff_multiplier: float = 1.0
    #: Uniform jitter added on top of the deterministic delay, drawn
    #: from the engine's dedicated retry RNG.  0 disables the draw
    #: entirely (no generator state is consumed).
    jitter_ms: float = 0.0
    #: Whether mid-flight connection loss is retried at all.
    retry_connection_loss: bool = False
    #: Wall-clock (simulated) budget per request, measured from the
    #: fetch start; a retry that would begin past the budget is not
    #: attempted.  0 means unlimited.
    budget_ms: float = 0.0

    @classmethod
    def legacy_goaway(cls, limit: int, backoff_ms: float
                      ) -> "RetryPolicy":
        """The policy equivalent of the pre-chaos
        ``goaway_retry_limit`` / ``goaway_retry_backoff_ms`` pair."""
        return cls(max_retries=int(limit),
                   backoff_base_ms=float(backoff_ms))

    def backoff_ms(self, attempt: int,
                   rng: Optional[np.random.Generator] = None) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        if self.backoff_multiplier == 1.0:
            delay = self.backoff_base_ms * attempt
        else:
            delay = (self.backoff_base_ms
                     * self.backoff_multiplier ** (attempt - 1))
        if self.jitter_ms > 0 and rng is not None:
            delay += float(rng.random()) * self.jitter_ms
        return delay

    def allows(self, attempt: int) -> bool:
        """Whether retry ``attempt`` (1-based) is within the limit."""
        return attempt <= self.max_retries

    def within_budget(self, elapsed_ms: float) -> bool:
        return self.budget_ms <= 0 or elapsed_ms < self.budget_ms
