"""HPACK header compression (RFC 7541).

Implements the full static table, a size-bounded dynamic table, prefix
integer coding, and all four literal representations.  String literals
use the plain (non-Huffman) encoding; Huffman is an optional
space/speed trade-off that has no effect on protocol correctness, so
the decoder rejects Huffman-flagged strings explicitly rather than
mis-decoding them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.h2.errors import HpackError

#: RFC 7541 Appendix A, entries 1..61 (name, value).
STATIC_TABLE: Tuple[Tuple[str, str], ...] = (
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
)

_STATIC_FULL: Dict[Tuple[str, str], int] = {
    entry: i + 1 for i, entry in enumerate(STATIC_TABLE)
}
_STATIC_NAME: Dict[str, int] = {}
for _i, (_name, _value) in enumerate(STATIC_TABLE):
    _STATIC_NAME.setdefault(_name, _i + 1)

_STATIC_LEN = len(STATIC_TABLE)

#: Per-entry dynamic table overhead (RFC 7541 §4.1).
ENTRY_OVERHEAD = 32

#: Headers whose values must never enter compression state.
NEVER_INDEX = frozenset({"authorization", "proxy-authorization",
                         "cookie", "set-cookie"})


def encode_integer(value: int, prefix_bits: int, first_byte: int = 0) -> bytes:
    """Encode ``value`` with an N-bit prefix (RFC 7541 §5.1).

    ``first_byte`` carries the representation's pattern bits above the
    prefix (e.g. 0x80 for an indexed field).
    """
    if value < 0:
        raise HpackError(f"cannot encode negative integer {value}")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([first_byte | value])
    out = bytearray([first_byte | limit])
    value -= limit
    while value >= 128:
        out.append((value % 128) + 128)
        value //= 128
    out.append(value)
    return bytes(out)


def decode_integer(data: bytes, offset: int, prefix_bits: int) -> Tuple[int, int]:
    """Decode an N-bit-prefix integer; returns (value, new_offset)."""
    if offset >= len(data):
        raise HpackError("integer truncated at prefix byte")
    limit = (1 << prefix_bits) - 1
    value = data[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(data):
            raise HpackError("integer continuation truncated")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        shift += 7
        if shift > 35:
            raise HpackError("integer overflows the decoder bound")
        if not byte & 0x80:
            return value, offset


def encode_string(text: str) -> bytes:
    """Length-prefixed plain string literal (H bit clear)."""
    raw = text.encode("utf-8")
    return encode_integer(len(raw), 7, 0x00) + raw


def decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    if offset >= len(data):
        raise HpackError("string truncated at length byte")
    if data[offset] & 0x80:
        raise HpackError("Huffman-coded strings are not supported")
    length, offset = decode_integer(data, offset, 7)
    if offset + length > len(data):
        raise HpackError(
            f"string of {length} bytes truncated ({len(data) - offset} left)"
        )
    try:
        text = data[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError as error:
        raise HpackError(f"undecodable string literal: {error}") from error
    return text, offset + length


class DynamicTable:
    """The FIFO dynamic table shared by encoder/decoder logic.

    Entries live in a newest-first list; ``find``/``find_name`` are
    O(1) through insertion-counter maps instead of linear scans.  Each
    insertion gets a monotonically increasing counter, so the entry at
    1-based index ``i`` has counter ``insert_count - i + 1``; a map
    hit whose counter has scrolled out of the live window is stale.
    """

    def __init__(self, max_size: int = 4096) -> None:
        self.max_size = max_size
        self._entries: List[Tuple[str, str]] = []
        self._counters: List[int] = []
        self._insert_count = 0
        self._find_map: Dict[Tuple[str, str], int] = {}
        self._name_map: Dict[str, int] = {}
        self._size = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size(self) -> int:
        return self._size

    @staticmethod
    def entry_size(name: str, value: str) -> int:
        return len(name.encode()) + len(value.encode()) + ENTRY_OVERHEAD

    def _evict_last(self) -> None:
        name, value = self._entries.pop()
        counter = self._counters.pop()
        self._size -= self.entry_size(name, value)
        if self._find_map.get((name, value)) == counter:
            del self._find_map[(name, value)]
        if self._name_map.get(name) == counter:
            del self._name_map[name]

    def add(self, name: str, value: str) -> None:
        needed = self.entry_size(name, value)
        while self._entries and self._size + needed > self.max_size:
            self._evict_last()
        if needed <= self.max_size:
            self._insert_count += 1
            self._entries.insert(0, (name, value))
            self._counters.insert(0, self._insert_count)
            self._find_map[(name, value)] = self._insert_count
            self._name_map[name] = self._insert_count
            self._size += needed
        # An entry larger than the table empties it (RFC 7541 §4.4).

    def resize(self, new_max: int) -> None:
        self.max_size = new_max
        while self._entries and self._size > self.max_size:
            self._evict_last()

    def get(self, index: int) -> Tuple[str, str]:
        """1-based index into the dynamic portion of the address space."""
        if not 1 <= index <= len(self._entries):
            raise HpackError(f"dynamic table index {index} out of range")
        return self._entries[index - 1]

    def find(self, name: str, value: str) -> Optional[int]:
        counter = self._find_map.get((name, value))
        if counter is None:
            return None
        # The newest duplicate always outlives older ones (FIFO
        # eviction), so a live map hit is the first-scan match.
        return self._insert_count - counter + 1

    def find_name(self, name: str) -> Optional[int]:
        counter = self._name_map.get(name)
        if counter is None:
            return None
        return self._insert_count - counter + 1


Header = Tuple[str, str]

#: Memoized wire bytes for every exact static-table match -- these
#: never depend on connection state, so one table serves all encoders.
_STATIC_ENCODED: Dict[Header, bytes] = {
    entry: encode_integer(index, 7, 0x80)
    for entry, index in _STATIC_FULL.items()
}


class HpackEncoder:
    """Stateful header-block encoder for one connection direction."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = DynamicTable(max_table_size)

    @property
    def table(self) -> DynamicTable:
        return self._table

    def set_max_table_size(self, size: int) -> None:
        self._table.resize(size)

    def encode(self, headers: Iterable[Header]) -> bytes:
        out = bytearray()
        table = self._table
        for name, value in headers:
            name = name.lower()
            if name in NEVER_INDEX:
                # Literal never indexed (pattern 0001); never touches
                # dynamic state.
                out += self._literal(name, value, first_byte=0x10,
                                     prefix=4)
                continue
            static = _STATIC_ENCODED.get((name, value))
            if static is not None:
                out += static
                continue
            dynamic_index = table.find(name, value)
            if dynamic_index is not None:
                index = dynamic_index + _STATIC_LEN
                if index < 127:
                    out.append(0x80 | index)
                else:
                    out += encode_integer(index, 7, 0x80)
                continue
            # Literal with incremental indexing (pattern 01).
            out += self._literal(name, value, first_byte=0x40, prefix=6)
            table.add(name, value)
        return bytes(out)

    def _encode_one(self, name: str, value: str) -> bytes:
        if name in NEVER_INDEX:
            # Literal never indexed (pattern 0001).
            return self._literal(name, value, first_byte=0x10, prefix=4)
        static_index = _STATIC_FULL.get((name, value))
        if static_index is not None:
            return encode_integer(static_index, 7, 0x80)
        dynamic_index = self._table.find(name, value)
        if dynamic_index is not None:
            return encode_integer(dynamic_index + len(STATIC_TABLE), 7, 0x80)
        # Literal with incremental indexing (pattern 01).
        encoded = self._literal(name, value, first_byte=0x40, prefix=6)
        self._table.add(name, value)
        return encoded

    def _literal(
        self, name: str, value: str, first_byte: int, prefix: int
    ) -> bytes:
        name_index = 0
        static = _STATIC_NAME.get(name)
        if static is not None:
            name_index = static
        elif first_byte != 0x10:
            # Never-indexed literals avoid referencing dynamic state so
            # they survive re-encoding by proxies; others may use it.
            dynamic = self._table.find_name(name)
            if dynamic is not None:
                name_index = dynamic + len(STATIC_TABLE)
        out = bytearray(encode_integer(name_index, prefix, first_byte))
        if name_index == 0:
            out += encode_string(name)
        out += encode_string(value)
        return bytes(out)


class HpackDecoder:
    """Stateful header-block decoder for one connection direction."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = DynamicTable(max_table_size)
        #: Upper bound the decoder will let the encoder resize to.
        self._settings_max = max_table_size
        #: Interned (name, value) tuples: repeated literals across
        #: blocks share one object instead of reallocating per decode.
        self._interned: Dict[Header, Header] = {}

    @property
    def table(self) -> DynamicTable:
        return self._table

    def set_settings_max_table_size(self, size: int) -> None:
        self._settings_max = size
        if self._table.max_size > size:
            self._table.resize(size)

    def _lookup(self, index: int) -> Header:
        if index <= 0:
            raise HpackError("header index 0 is invalid")
        if index <= len(STATIC_TABLE):
            return STATIC_TABLE[index - 1]
        return self._table.get(index - len(STATIC_TABLE))

    def decode(self, block: bytes) -> List[Header]:
        headers: List[Header] = []
        offset = 0
        while offset < len(block):
            byte = block[offset]
            if byte & 0x80:  # indexed field
                index, offset = decode_integer(block, offset, 7)
                headers.append(self._lookup(index))
            elif byte & 0x40:  # literal with incremental indexing
                name, value, offset = self._decode_literal(block, offset, 6)
                pair = (name, value)
                pair = self._interned.setdefault(pair, pair)
                self._table.add(*pair)
                headers.append(pair)
            elif byte & 0x20:  # dynamic table size update
                new_size, offset = decode_integer(block, offset, 5)
                if new_size > self._settings_max:
                    raise HpackError(
                        f"table resize to {new_size} exceeds the "
                        f"settings bound {self._settings_max}"
                    )
                self._table.resize(new_size)
            else:  # literal without indexing (0000) or never indexed (0001)
                name, value, offset = self._decode_literal(block, offset, 4)
                pair = (name, value)
                headers.append(self._interned.setdefault(pair, pair))
        return headers

    def _decode_literal(
        self, block: bytes, offset: int, prefix: int
    ) -> Tuple[str, str, int]:
        name_index, offset = decode_integer(block, offset, prefix)
        if name_index:
            name, _ = self._lookup(name_index)
        else:
            name, offset = decode_string(block, offset)
        value, offset = decode_string(block, offset)
        return name, value, offset
