"""HTTP/2 protocol substrate with ORIGIN frame support (RFC 7540 + 8336).

The package is layered sans-IO-first:

* :mod:`repro.h2.frames` -- wire format serialization/parsing,
  including the ORIGIN frame;
* :mod:`repro.h2.hpack` -- HPACK header compression (RFC 7541);
* :mod:`repro.h2.stream` / :mod:`repro.h2.connection` -- the protocol
  state machines (bytes in, events out);
* :mod:`repro.h2.tls_channel` -- the simulated TLS layer that carries
  frames over :mod:`repro.netsim` transports;
* :mod:`repro.h2.server` / :mod:`repro.h2.client` -- deployable
  endpoints; the server is the ORIGIN-frame implementation the paper
  contributed (§5.3).
"""

from repro.h2.errors import (
    ErrorCode,
    H2Error,
    H2ConnectionError,
    H2StreamError,
    HpackError,
)
from repro.h2.frames import (
    CONNECTION_PREFACE,
    CertificateFrame,
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    parse_frame,
    parse_frames,
)
from repro.h2.hpack import HpackDecoder, HpackEncoder
from repro.h2.settings import SettingId, Settings
from repro.h2.stream import Stream, StreamState
from repro.h2.connection import H2Connection, Role
from repro.h2.server import H2Server, ServerConfig, ServerStats
from repro.h2.client import H2ClientSession, H2Response
from repro.h2.tls_channel import TlsClientConfig

__all__ = [
    "ErrorCode",
    "H2Error",
    "H2ConnectionError",
    "H2StreamError",
    "HpackError",
    "CONNECTION_PREFACE",
    "CertificateFrame",
    "DataFrame",
    "Frame",
    "GoAwayFrame",
    "HeadersFrame",
    "OriginFrame",
    "PingFrame",
    "PriorityFrame",
    "PushPromiseFrame",
    "RstStreamFrame",
    "SettingsFrame",
    "UnknownFrame",
    "WindowUpdateFrame",
    "parse_frame",
    "parse_frames",
    "HpackDecoder",
    "HpackEncoder",
    "SettingId",
    "Settings",
    "Stream",
    "StreamState",
    "H2Connection",
    "Role",
    "H2Server",
    "ServerConfig",
    "ServerStats",
    "H2ClientSession",
    "H2Response",
    "TlsClientConfig",
]
