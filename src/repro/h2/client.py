"""HTTP/2 client session with ORIGIN-set tracking.

A :class:`H2ClientSession` owns one TLS+H2 connection: it connects,
performs the handshake, exchanges SETTINGS, surfaces the server's
ORIGIN frame (if any), and multiplexes requests.  The browser layer's
connection pool decides *which* session may serve a hostname; this
class only reports the facts a policy needs (certificate chain,
origin set, connected IP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.h2 import events as ev
from repro.h2.connection import H2Connection, Role
from repro.h2.errors import ErrorCode, H2ConnectionError
from repro.h2.tls_channel import TlsClientChannel, TlsClientConfig
from repro.netsim.network import Host, Network
from repro.netsim.transport import Transport
from repro.telemetry import NULL_TRACER
from repro.tlspki.certificate import Certificate
from repro.transport.base import (
    DEFAULT_MAX_STREAMS,
    Session,
    SessionCapabilities,
)

Header = Tuple[str, str]

#: The stable request-prefix headers, interned per method so every
#: request reuses the same tuples (their HPACK encodings are memoized
#: static-table hits).
_REQUEST_PREFIX: Dict[str, Tuple[Header, Header]] = {}


@dataclass
class H2Response:
    """A fully received response, with the timestamps HAR entries need."""

    stream_id: int
    status: int
    headers: List[Header]
    body: bytes
    authority: str
    path: str
    sent_at: float = 0.0
    headers_at: float = 0.0
    finished_at: float = 0.0


@dataclass
class PendingRequest:
    authority: str
    path: str
    callback: Callable[[H2Response], None]
    headers: List[Header] = field(default_factory=list)
    body: bytearray = field(default_factory=bytearray)
    status: int = 0
    sent_at: float = 0.0
    headers_at: float = 0.0


class H2ClientSession(Session):
    """One client connection to one server IP (the ``tcp-tls``
    transport's session)."""

    def __init__(
        self,
        network: Network,
        client_host: Host,
        server_ip: str,
        tls_config: TlsClientConfig,
        port: int = 443,
        origin_aware: bool = True,
        secondary_certs: bool = False,
        tracer=None,
        audit=None,
        page: str = "",
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.server_ip = server_ip
        self.port = port
        self.tls_config = tls_config
        self.origin_aware = origin_aware
        self.secondary_certs = secondary_certs
        #: Validated secondary chains (draft-ietf-httpbis-http2-
        #: secondary-certs); they extend this connection's authority.
        self.secondary_chains: List[List[Certificate]] = []
        self.on_secondary_certificate: Optional[
            Callable[[Certificate], None]
        ] = None
        self.conn: Optional[H2Connection] = None
        self.channel: Optional[TlsClientChannel] = None
        self.server_chain: List[Certificate] = []
        self.ready = False
        self.failed: Optional[str] = None
        self.closed = False
        self.connect_started_at: Optional[float] = None
        self.tcp_connected_at: Optional[float] = None
        self.connected_at: Optional[float] = None
        self._pending: Dict[int, PendingRequest] = {}
        #: Requests waiting for a stream slot (MAX_CONCURRENT_STREAMS).
        self._stream_queue: List[tuple] = []
        self._h1 = None  # ALPN fallback protocol, set post-handshake
        self.negotiated_protocol: str = ""
        self._on_ready: List[Callable[[], None]] = []
        self._on_failed: List[Callable[[str], None]] = []
        self.on_origin_received: Optional[
            Callable[[Tuple[str, ...]], None]
        ] = None
        self.responses: List[H2Response] = []
        self.misdirected: List[H2Response] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.audit = audit if audit is not None else NULL_AUDIT
        self.page = page
        self._conn_span = None
        self._stream_spans: Dict[int, object] = {}

    # -- lifecycle ----------------------------------------------------------

    def connect(
        self,
        on_ready: Optional[Callable[[], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        if on_ready is not None:
            self._on_ready.append(on_ready)
        if on_failed is not None:
            self._on_failed.append(on_failed)
        self.connect_started_at = self.network.loop.now()
        if self.tracer.enabled and self._conn_span is None:
            self._conn_span = self.tracer.begin(
                "h2.connection", category="h2",
                sni=self.tls_config.sni, ip=self.server_ip,
            )
        self.network.connect(
            self.client_host,
            self.server_ip,
            self.port,
            self._on_tcp_connected,
            on_refused=lambda error: self._fail(str(error)),
        )

    def _on_tcp_connected(self, transport: Transport) -> None:
        self.tcp_connected_at = self.network.loop.now()
        self.channel = TlsClientChannel(transport, self.tls_config)
        self.channel.on_established = self._on_tls_established
        self.channel.on_failed = self._fail
        self.channel.on_app_data = self._on_app_data
        transport.on_close = self._on_transport_closed
        self.channel.start()

    def _on_tls_established(self) -> None:
        assert self.channel is not None
        self.server_chain = self.channel.server_chain
        negotiated = self.channel.negotiated_alpn
        if not negotiated:
            # The handshake produced no ALPN result at all (empty
            # offer): assuming h2 is RFC 7540 prior knowledge, not a
            # negotiation -- record it instead of masking it.
            negotiated = "h2"
            if self.audit.enabled:
                self.audit.record(
                    "tls", ReasonCode.TLS_ALPN_FALLBACK,
                    page=self.page, hostname=self.tls_config.sni,
                    assumed=negotiated,
                )
        self.negotiated_protocol = negotiated
        if self.negotiated_protocol == "http/1.1":
            # ALPN fallback: speak serial HTTP/1.1 on this channel.
            from repro.h2.http1 import H1ClientProtocol

            self._h1 = H1ClientProtocol(
                self.channel.send_app, self.network.loop.now
            )
            self.channel.on_app_data = self._h1.on_app_data
        else:
            self.conn = H2Connection(
                Role.CLIENT,
                origin_aware=self.origin_aware,
                secondary_certs_aware=self.secondary_certs,
            )
            self.conn.initiate()
        self.connected_at = self.network.loop.now()
        if self._conn_span is not None:
            # Record the phase boundaries now; the span itself stays
            # open until the connection closes or fails.
            self._conn_span.attrs.update(
                tcp_ms=self.tcp_connected_at - self.connect_started_at,
                tls_ms=self.connected_at - self.tcp_connected_at,
                protocol=self.negotiated_protocol,
            )
        self.ready = True
        self._flush()
        for callback in self._on_ready:
            callback()
        self._on_ready.clear()

    def _on_transport_closed(self) -> None:
        self.closed = True
        if not self.ready and self.failed is None:
            self._fail("connection closed during handshake")
            return
        # The connection died mid-flight (e.g. an on-path middlebox
        # tore it down, §6.7): surface the reset to every outstanding
        # request as a status-0 response.
        self._end_conn_span(closed="transport")
        if self._h1 is not None:
            # ALPN fell back to HTTP/1.1: the serial queue lives in the
            # fallback protocol, which surfaces its own dead responses.
            self._h1.fail_all()
            return
        pending = list(self._pending.items())
        self._pending.clear()
        for stream_id, request in pending:
            self._end_stream_span(stream_id, status=0)
            request.callback(
                H2Response(
                    stream_id=stream_id,
                    status=0,
                    headers=[],
                    body=b"",
                    authority=request.authority,
                    path=request.path,
                    sent_at=request.sent_at,
                    headers_at=request.sent_at,
                    finished_at=self.network.loop.now(),
                )
            )
        # Requests still queued behind the peer's concurrent-stream cap
        # were never sent; they die with the connection too.  Without
        # this, a mid-flight teardown leaves their callbacks unfired
        # and the page load waits forever.
        queued, self._stream_queue = self._stream_queue, []
        now = self.network.loop.now()
        for authority, path, callback, _method, _extra in queued:
            callback(
                H2Response(
                    stream_id=-1,
                    status=0,
                    headers=[],
                    body=b"",
                    authority=authority,
                    path=path,
                    sent_at=now,
                    headers_at=now,
                    finished_at=now,
                )
            )

    def _fail(self, reason: str) -> None:
        if self.failed is not None:
            return
        self.failed = reason
        self.closed = True
        self._end_conn_span(failed=reason)
        for callback in self._on_failed:
            callback(reason)
        self._on_failed.clear()

    def _end_conn_span(self, **attrs) -> None:
        if self._conn_span is not None and not self._conn_span.finished:
            self.tracer.end(self._conn_span, **attrs)

    def _end_stream_span(self, stream_id: int, **attrs) -> None:
        span = self._stream_spans.pop(stream_id, None)
        if span is not None:
            self.tracer.end(span, **attrs)

    def close(self) -> None:
        if self.conn is not None and not self.closed:
            self.conn.send_goaway(ErrorCode.NO_ERROR)
            self._flush()
        if self.channel is not None:
            self.channel.close()
        self.closed = True
        self._end_conn_span(closed="client")

    def when_ready(
        self,
        on_ready: Callable[[], None],
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Run ``on_ready`` now if established, else once it is."""
        if self.ready:
            self.network.loop.schedule(0.0, on_ready)
        elif self.failed is not None:
            if on_failed is not None:
                failure = self.failed
                self.network.loop.schedule(0.0, lambda: on_failed(failure))
        else:
            self._on_ready.append(on_ready)
            if on_failed is not None:
                self._on_failed.append(on_failed)

    # -- facts for coalescing policies -----------------------------------------

    @property
    def capabilities(self) -> SessionCapabilities:
        """The capability record pool lookups key on; reflects the
        negotiated protocol once the handshake settles."""
        if self._h1 is not None:
            return SessionCapabilities(alpn="http/1.1", max_streams=1)
        return SessionCapabilities(
            alpn="h2",
            supports_origin_frame=self.origin_aware,
            max_streams=DEFAULT_MAX_STREAMS,
        )

    @property
    def can_multiplex(self) -> bool:
        """HTTP/2 multiplexes; an ALPN h1 fallback does not."""
        return self._h1 is None

    @property
    def h1_busy(self) -> bool:
        return self._h1 is not None and self._h1.busy

    @property
    def leaf_certificate(self) -> Optional[Certificate]:
        return self.server_chain[0] if self.server_chain else None

    @property
    def origin_set(self) -> frozenset:
        if self.conn is None:
            return frozenset()
        return frozenset(self.conn.remote_origin_set)

    def certificate_covers(self, hostname: str) -> bool:
        leaf = self.leaf_certificate
        if leaf is not None and leaf.covers(hostname):
            return True
        return any(
            chain[0].covers(hostname)
            for chain in self.secondary_chains if chain
        )

    def origin_set_covers(self, hostname: str) -> bool:
        origins = self.origin_set
        return (
            f"https://{hostname}" in origins
            or f"https://{hostname}:443" in origins
            or hostname in origins
        )

    # -- requests -----------------------------------------------------------

    def request(
        self,
        authority: str,
        path: str,
        callback: Callable[[H2Response], None],
        method: str = "GET",
        extra_headers: Sequence[Header] = (),
    ) -> int:
        """Issue a request on this connection; returns the stream id."""
        if not self.ready:
            raise H2ConnectionError(
                ErrorCode.INTERNAL_ERROR, "session not ready"
            )
        if self._h1 is not None:
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "h2.stream", category="h2", parent=self._conn_span,
                    authority=authority, path=path, protocol="http/1.1",
                )
                inner = callback

                def traced(response: H2Response) -> None:
                    self.tracer.end(span, status=response.status)
                    inner(response)

                callback = traced
            self._h1.request(authority, path, callback,
                             tuple(extra_headers))
            return 0
        if self.conn is None:
            raise H2ConnectionError(
                ErrorCode.INTERNAL_ERROR, "session not ready"
            )
        if len(self._pending) >= \
                self.conn.remote_settings.max_concurrent_streams:
            # The peer capped concurrent streams: queue like a browser.
            self._stream_queue.append(
                (authority, path, callback, method, tuple(extra_headers))
            )
            return -1
        stream_id = self.conn.get_next_stream_id()
        prefix = _REQUEST_PREFIX.get(method)
        if prefix is None:
            prefix = _REQUEST_PREFIX[method] = (
                (":method", method), (":scheme", "https"),
            )
        headers: List[Header] = [
            *prefix,
            (":authority", authority),
            (":path", path),
        ]
        headers.extend(extra_headers)
        self._pending[stream_id] = PendingRequest(
            authority=authority, path=path, callback=callback,
            sent_at=self.network.loop.now(),
        )
        if self.tracer.enabled:
            self._stream_spans[stream_id] = self.tracer.begin(
                "h2.stream", category="h2", parent=self._conn_span,
                authority=authority, path=path, stream_id=stream_id,
            )
        self.conn.send_headers(stream_id, headers, end_stream=True)
        self._flush()
        return stream_id

    def _drain_stream_queue(self) -> None:
        while self._stream_queue and self.conn is not None and len(
            self._pending
        ) < self.conn.remote_settings.max_concurrent_streams:
            authority, path, callback, method, extra = \
                self._stream_queue.pop(0)
            self.request(authority, path, callback, method=method,
                         extra_headers=extra)

    # -- plumbing ------------------------------------------------------------

    def _on_app_data(self, data: bytes) -> None:
        if self.conn is None:
            return
        try:
            events = self.conn.receive_data(data)
        except H2ConnectionError as error:
            self._flush()
            self._fail(str(error))
            return
        for event in events:
            self._dispatch(event)
        self._flush()

    def _dispatch(self, event: ev.Event) -> None:
        handler = _EVENT_DISPATCH.get(event.__class__)
        if handler is not None:
            handler(self, event)
            return
        # Event subclasses resolve through isinstance, like the
        # original dispatch chain; unrecognized events are ignored.
        for event_class, isinstance_handler in _EVENT_DISPATCH.items():
            if isinstance(event, event_class):
                isinstance_handler(self, event)
                return

    def _on_response_received(self, event: "ev.ResponseReceived") -> None:
        pending = self._pending.get(event.stream_id)
        if pending is not None:
            pending.headers = event.headers
            pending.headers_at = self.network.loop.now()
            for name, value in event.headers:
                if name == ":status":
                    pending.status = int(value)

    def _on_data_received(self, event: "ev.DataReceived") -> None:
        pending = self._pending.get(event.stream_id)
        if pending is not None:
            pending.body += event.data

    def _on_stream_ended(self, event: "ev.StreamEnded") -> None:
        self._complete(event.stream_id)

    def _on_origin_received(self, event: "ev.OriginReceived") -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                "h2.origin_frame", category="h2",
                parent=self._conn_span, sni=self.tls_config.sni,
                origins=list(event.origins),
            )
        if self.audit.enabled:
            self.audit.record(
                "h2", ReasonCode.H2_ORIGIN_FRAME_RECEIVED,
                page=self.page, hostname=self.tls_config.sni,
                origins=len(event.origins),
            )
        if self.on_origin_received is not None:
            self.on_origin_received(event.origins)

    def _on_secondary_certificate(
        self, event: "ev.SecondaryCertificateReceived"
    ) -> None:
        self._accept_secondary_certificate(event.chain_data)

    def _on_goaway_received(self, event: "ev.GoAwayReceived") -> None:
        if event.error_code is not ErrorCode.NO_ERROR:
            if self.audit.enabled:
                self.audit.record(
                    "h2", ReasonCode.H2_GOAWAY,
                    page=self.page, hostname=self.tls_config.sni,
                    error_code=event.error_code.name,
                )
            self._fail(f"GOAWAY: {event.error_code.name}")

    def _accept_secondary_certificate(self, chain_data: bytes) -> None:
        """Validate and adopt a secondary chain; bad chains are
        silently discarded (they confer no authority)."""
        from repro.h2.tls_channel import deserialize_chain
        from repro.tlspki.validation import validate_chain

        try:
            chain = deserialize_chain(chain_data)
        except (ValueError, KeyError):
            return
        if not chain:
            return
        result = validate_chain(
            chain,
            chain[0].subject,
            self.tls_config.now(),
            self.tls_config.trust_store,
            self.tls_config.authorities,
        )
        if not result.ok:
            return
        self.secondary_chains.append(chain)
        if self.on_secondary_certificate is not None:
            self.on_secondary_certificate(chain[0])

    def _complete(self, stream_id: int) -> None:
        pending = self._pending.pop(stream_id, None)
        if pending is None:
            return
        response = H2Response(
            stream_id=stream_id,
            status=pending.status,
            headers=pending.headers,
            body=bytes(pending.body),
            authority=pending.authority,
            path=pending.path,
            sent_at=pending.sent_at,
            headers_at=pending.headers_at or pending.sent_at,
            finished_at=self.network.loop.now(),
        )
        self.responses.append(response)
        self._end_stream_span(stream_id, status=response.status)
        if response.status == 421:
            if self.audit.enabled:
                self.audit.record(
                    "h2", ReasonCode.H2_MISDIRECTED_421,
                    page=self.page, hostname=response.authority,
                    path=response.path, sni=self.tls_config.sni,
                )
            self.misdirected.append(response)
        pending.callback(response)
        self._drain_stream_queue()

    def _flush(self) -> None:
        if self.conn is None or self.channel is None:
            return
        if not self.channel.established or self.channel.transport.closed:
            return
        data = self.conn.data_to_send()
        if data:
            self.channel.send_app(data)


#: Exact-type event dispatch, ordered like the original isinstance
#: chain so the subclass fallback resolves identically.
_EVENT_DISPATCH = {
    ev.ResponseReceived: H2ClientSession._on_response_received,
    ev.DataReceived: H2ClientSession._on_data_received,
    ev.StreamEnded: H2ClientSession._on_stream_ended,
    ev.OriginReceived: H2ClientSession._on_origin_received,
    ev.SecondaryCertificateReceived:
        H2ClientSession._on_secondary_certificate,
    ev.GoAwayReceived: H2ClientSession._on_goaway_received,
}
