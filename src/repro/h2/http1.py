"""Minimal HTTP/1.1 support for ALPN fallback.

Roughly a fifth of the paper dataset's requests were still HTTP/1.1
(Table 3), and HTTP/1.1 connections cannot coalesce across hostnames,
so the crawler needs servers and clients that genuinely negotiate and
speak it.  This module provides text-framed request/response handling
over the simulated TLS channel: persistent connections, serial
request/response, ``Content-Length`` bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple
from collections import deque

from repro.h2.client import H2Response
from repro.h2.tls_channel import TlsClientChannel, TlsClientConfig
from repro.netsim.network import Host, Network
from repro.netsim.transport import Transport

Header = Tuple[str, str]


def build_request(method: str, path: str, headers: List[Header]) -> bytes:
    lines = [f"{method} {path} HTTP/1.1"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def build_response(status: int, headers: List[Header], body: bytes) -> bytes:
    reason = {200: "OK", 404: "Not Found", 421: "Misdirected Request"}.get(
        status, "Status"
    )
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append(f"content-length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


@dataclass
class ParsedMessage:
    start_line: str
    headers: List[Header]
    body: bytes


def parse_message(buffer: bytes) -> Tuple[Optional[ParsedMessage], bytes]:
    """Parse one complete message (head + Content-Length body)."""
    head_end = buffer.find(b"\r\n\r\n")
    if head_end < 0:
        return None, buffer
    head = buffer[:head_end].decode("latin-1")
    lines = head.split("\r\n")
    start_line = lines[0]
    headers: List[Header] = []
    content_length = 0
    for line in lines[1:]:
        if ":" not in line:
            continue
        name, value = line.split(":", 1)
        name = name.strip().lower()
        value = value.strip()
        headers.append((name, value))
        if name == "content-length":
            content_length = int(value)
    body_start = head_end + 4
    if len(buffer) < body_start + content_length:
        return None, buffer
    body = buffer[body_start : body_start + content_length]
    return (
        ParsedMessage(start_line=start_line, headers=headers, body=body),
        buffer[body_start + content_length :],
    )


class H1ServerProtocol:
    """Server-side HTTP/1.1 handling over an established TLS channel.

    ``handler(authority, path, headers) -> (status, headers, body)`` is
    the same signature as the HTTP/2 server's.
    """

    def __init__(
        self,
        send: Callable[[bytes], None],
        handler: Callable[[str, str, List[Header]],
                          Tuple[int, List[Header], bytes]],
        on_request: Optional[Callable[[str, int], None]] = None,
        scheduler: Optional[Callable[[float, Callable[[], None]],
                                     object]] = None,
        think_time_ms: float = 0.0,
    ) -> None:
        self._send = send
        self._handler = handler
        self._on_request = on_request
        self._scheduler = scheduler
        self._think_time_ms = think_time_ms
        self._buffer = b""
        self.requests_served = 0

    def on_app_data(self, data: bytes) -> None:
        self._buffer += data
        while True:
            message, self._buffer = parse_message(self._buffer)
            if message is None:
                return
            self._serve(message)

    def _serve(self, message: ParsedMessage) -> None:
        parts = message.start_line.split(" ")
        path = parts[1] if len(parts) > 1 else "/"
        authority = dict(message.headers).get("host", "")
        self.requests_served += 1
        if self._on_request is not None:
            self._on_request(authority, self.requests_served)
        status, headers, body = self._handler(
            authority, path, message.headers
        )
        response = build_response(status, headers, body)
        if self._scheduler is not None and self._think_time_ms > 0:
            self._scheduler(self._think_time_ms,
                            lambda: self._send(response))
        else:
            self._send(response)


@dataclass
class _QueuedRequest:
    authority: str
    path: str
    callback: Callable[[H2Response], None]
    extra_headers: Tuple[Header, ...] = ()
    sent_at: float = 0.0


class H1ClientProtocol:
    """Client-side HTTP/1.1 over an already-established channel.

    Serial request/response with a queue; used directly by
    :class:`H1ClientSession` and as the ALPN fallback inside
    :class:`~repro.h2.client.H2ClientSession`.
    """

    def __init__(
        self, send: Callable[[bytes], None], now: Callable[[], float]
    ) -> None:
        self._send = send
        self._now = now
        self._queue: Deque[_QueuedRequest] = deque()
        self._in_flight: Optional[_QueuedRequest] = None
        self._buffer = b""
        self._headers_at = 0.0
        self.responses: List[H2Response] = []

    @property
    def busy(self) -> bool:
        return self._in_flight is not None or bool(self._queue)

    def request(
        self,
        authority: str,
        path: str,
        callback: Callable[[H2Response], None],
        extra_headers: Tuple[Header, ...] = (),
    ) -> None:
        self._queue.append(
            _QueuedRequest(authority=authority, path=path,
                           callback=callback,
                           extra_headers=tuple(extra_headers))
        )
        self.pump()

    def pump(self) -> None:
        if self._in_flight is not None or not self._queue:
            return
        request = self._queue.popleft()
        request.sent_at = self._now()
        self._in_flight = request
        self._headers_at = 0.0
        headers = [("host", request.authority)]
        headers.extend(request.extra_headers)
        self._send(build_request("GET", request.path, headers))

    def on_app_data(self, data: bytes) -> None:
        if self._in_flight is None:
            return
        if not self._buffer and self._headers_at == 0.0:
            self._headers_at = self._now()
        self._buffer += data
        message, self._buffer = parse_message(self._buffer)
        if message is None:
            return
        request = self._in_flight
        self._in_flight = None
        status = int(message.start_line.split(" ")[1])
        response = H2Response(
            stream_id=0,
            status=status,
            headers=message.headers,
            body=message.body,
            authority=request.authority,
            path=request.path,
            sent_at=request.sent_at,
            headers_at=self._headers_at or request.sent_at,
            finished_at=self._now(),
        )
        self.responses.append(response)
        request.callback(response)
        self.pump()

    def fail_all(self) -> None:
        """The connection died under us: surface the in-flight request
        and everything queued behind it as status-0 responses (the
        dead-response contract the H2 session uses), so no fetch waits
        forever on a torn-down connection."""
        dead: List[_QueuedRequest] = []
        if self._in_flight is not None:
            dead.append(self._in_flight)
            self._in_flight = None
        dead.extend(self._queue)
        self._queue.clear()
        self._buffer = b""
        now = self._now()
        for request in dead:
            request.callback(
                H2Response(
                    stream_id=0,
                    status=0,
                    headers=[],
                    body=b"",
                    authority=request.authority,
                    path=request.path,
                    sent_at=request.sent_at or now,
                    headers_at=request.sent_at or now,
                    finished_at=now,
                )
            )


class H1ClientSession:
    """A serial HTTP/1.1 client connection.

    API-compatible with :class:`~repro.h2.client.H2ClientSession` for
    the parts the browser engine touches; requests queue and run one at
    a time (no multiplexing), which is exactly why HTTP/1.1 pushed the
    web toward domain sharding in the first place (paper §1).
    """

    can_multiplex = False

    def __init__(
        self,
        network: Network,
        client_host: Host,
        server_ip: str,
        tls_config: TlsClientConfig,
        port: int = 443,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.server_ip = server_ip
        self.port = port
        self.tls_config = tls_config
        self.channel: Optional[TlsClientChannel] = None
        self.ready = False
        self.failed: Optional[str] = None
        self.closed = False
        self.connect_started_at: Optional[float] = None
        self.tcp_connected_at: Optional[float] = None
        self.connected_at: Optional[float] = None
        self._protocol: Optional[H1ClientProtocol] = None
        self._on_ready: List[Callable[[], None]] = []
        self._on_failed: List[Callable[[str], None]] = []
        self.server_chain: List = []

    # -- facts mirroring H2ClientSession --------------------------------------

    @property
    def leaf_certificate(self):
        return self.server_chain[0] if self.server_chain else None

    @property
    def origin_set(self) -> frozenset:
        return frozenset()  # HTTP/1.1 has no ORIGIN frame

    def certificate_covers(self, hostname: str) -> bool:
        leaf = self.leaf_certificate
        return leaf is not None and leaf.covers(hostname)

    def origin_set_covers(self, hostname: str) -> bool:
        return False

    # -- lifecycle ----------------------------------------------------------

    def connect(
        self,
        on_ready: Optional[Callable[[], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        if on_ready is not None:
            self._on_ready.append(on_ready)
        if on_failed is not None:
            self._on_failed.append(on_failed)
        self.connect_started_at = self.network.loop.now()
        self.network.connect(
            self.client_host,
            self.server_ip,
            self.port,
            self._on_tcp_connected,
            on_refused=lambda error: self._fail(str(error)),
        )

    def _on_tcp_connected(self, transport: Transport) -> None:
        self.tcp_connected_at = self.network.loop.now()
        self.channel = TlsClientChannel(transport, self.tls_config)
        self.channel.on_established = self._on_tls_established
        self.channel.on_failed = self._fail
        self.channel.on_app_data = self._on_app_data
        transport.on_close = self._on_transport_closed
        self.channel.start()

    def _on_transport_closed(self) -> None:
        self.closed = True
        if not self.ready and self.failed is None:
            self._fail("connection closed during handshake")
            return
        if self._protocol is not None:
            self._protocol.fail_all()

    def _on_tls_established(self) -> None:
        assert self.channel is not None
        self.server_chain = self.channel.server_chain
        self.connected_at = self.network.loop.now()
        self._protocol = H1ClientProtocol(
            self.channel.send_app, self.network.loop.now
        )
        self.channel.on_app_data = self._protocol.on_app_data
        self.ready = True
        for callback in self._on_ready:
            callback()
        self._on_ready.clear()
        self._protocol.pump()

    def _fail(self, reason: str) -> None:
        if self.failed is not None:
            return
        self.failed = reason
        self.closed = True
        for callback in self._on_failed:
            callback(reason)
        self._on_failed.clear()

    def close(self) -> None:
        if self.channel is not None:
            self.channel.close()
        self.closed = True

    # -- requests ------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._protocol is not None and self._protocol.busy

    @property
    def responses(self) -> List[H2Response]:
        return self._protocol.responses if self._protocol else []

    def when_ready(
        self,
        on_ready: Callable[[], None],
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Run ``on_ready`` now if established, else once it is."""
        if self.ready:
            self.network.loop.schedule(0.0, on_ready)
        elif self.failed is not None:
            if on_failed is not None:
                failure = self.failed
                self.network.loop.schedule(0.0, lambda: on_failed(failure))
        else:
            self._on_ready.append(on_ready)
            if on_failed is not None:
                self._on_failed.append(on_failed)

    def request(
        self,
        authority: str,
        path: str,
        callback: Callable[[H2Response], None],
        method: str = "GET",
        extra_headers=(),
    ) -> int:
        if self._protocol is None:
            raise RuntimeError("H1 session not ready")
        self._protocol.request(authority, path, callback,
                               tuple(extra_headers))
        return 0
