"""HTTP/2 connection state machine.

Sans-IO design: bytes in via :meth:`H2Connection.receive_data` (which
returns events), bytes out via :meth:`data_to_send`.  The transport --
simulated TLS over :mod:`repro.netsim` here -- is someone else's job,
which keeps the protocol core synchronously testable.

ORIGIN frame behaviour (RFC 8336):

* a server constructed with ``origin_set`` advertises it right after
  its SETTINGS frame;
* a client surfaces :class:`~repro.h2.events.OriginReceived` and keeps
  the accumulated origin set on :attr:`remote_origin_set`;
* endpoints built with ``origin_aware=False`` treat ORIGIN as an
  unknown frame and ignore it, which is the spec-mandated fail-open
  the paper relies on (§4.3, §6.7).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.h2 import frames as fr
from repro.h2 import events as ev
from repro.h2.errors import (
    ErrorCode,
    H2ConnectionError,
    H2StreamError,
    HpackError,
)
from repro.h2.hpack import HpackDecoder, HpackEncoder
from repro.h2.settings import SettingId, Settings
from repro.h2.stream import Stream, StreamState

Header = Tuple[str, str]


class Role(enum.Enum):
    CLIENT = "client"
    SERVER = "server"


class H2Connection:
    """One endpoint of an HTTP/2 connection."""

    def __init__(
        self,
        role: Role,
        origin_aware: bool = True,
        origin_set: Sequence[str] = (),
        secondary_certs_aware: bool = False,
    ) -> None:
        self.role = role
        self.origin_aware = origin_aware
        self.secondary_certs_aware = secondary_certs_aware
        #: Reassembly buffers for fragmented CERTIFICATE frames.
        self._certificate_buffers: Dict[int, bytearray] = {}
        #: Origins this endpoint will advertise (server only).
        self.local_origin_set: Tuple[str, ...] = tuple(origin_set)
        #: Origins the peer has advertised on this connection.
        self.remote_origin_set: Set[str] = set()
        self.local_settings = Settings()
        self.remote_settings = Settings()
        self._streams: Dict[int, Stream] = {}
        self._next_stream_id = 1 if role is Role.CLIENT else 2
        self._highest_remote_stream = 0
        self._outbound = bytearray()
        self._recv_buffer = bytearray()
        self._preface_remaining = (
            fr.CONNECTION_PREFACE if role is Role.SERVER else b""
        )
        self._encoder = HpackEncoder()
        self._decoder = HpackDecoder()
        self._initiated = False
        self._goaway_sent = False
        self._goaway_received = False
        self._expected_continuation: Optional[Tuple[int, bytearray, bool]] = None
        self.connection_send_window = self.remote_settings.initial_window_size
        self.connection_recv_window = self.local_settings.initial_window_size
        #: DATA blocked on flow control, drained as windows reopen.
        self._send_queue: Deque[Tuple[int, bytes, bool]] = deque()
        # Diagnostics used by tests and the deployment analysis.
        self.frames_sent: List[fr.Frame] = []
        self.frames_received: List[fr.Frame] = []

    # -- lifecycle --------------------------------------------------------

    def initiate(self, settings: Sequence[Tuple[int, int]] = ()) -> None:
        """Send the preface (client) and initial SETTINGS.

        A server with a configured origin set sends its ORIGIN frame
        immediately after SETTINGS, on stream 0, as RFC 8336 suggests
        doing "as early as possible".
        """
        if self._initiated:
            raise H2ConnectionError(
                ErrorCode.INTERNAL_ERROR, "connection already initiated"
            )
        self._initiated = True
        if self.role is Role.CLIENT:
            self._outbound += fr.CONNECTION_PREFACE
        self._send_frame(fr.SettingsFrame(settings=tuple(settings)))
        for identifier, value in settings:
            self.local_settings.apply(identifier, value)
        if self.role is Role.SERVER and self.origin_aware and self.local_origin_set:
            self.send_origin(self.local_origin_set)

    def data_to_send(self) -> bytes:
        """Drain queued outbound bytes."""
        data = bytes(self._outbound)
        self._outbound.clear()
        return data

    @property
    def open_stream_count(self) -> int:
        return sum(1 for s in self._streams.values() if not s.closed)

    def stream(self, stream_id: int) -> Optional[Stream]:
        return self._streams.get(stream_id)

    # -- sending ------------------------------------------------------------

    def get_next_stream_id(self) -> int:
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        return stream_id

    def _get_or_create_stream(self, stream_id: int) -> Stream:
        stream = self._streams.get(stream_id)
        if stream is None:
            stream = Stream(
                stream_id,
                send_window=self.remote_settings.initial_window_size,
                recv_window=self.local_settings.initial_window_size,
            )
            self._streams[stream_id] = stream
        return stream

    def send_headers(
        self,
        stream_id: int,
        headers: Sequence[Header],
        end_stream: bool = False,
    ) -> None:
        if self._goaway_sent:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "connection is going away"
            )
        stream = self._get_or_create_stream(stream_id)
        stream.send_headers(end_stream)
        block = self._encoder.encode(headers)
        flags = fr.FLAG_END_HEADERS | (
            fr.FLAG_END_STREAM if end_stream else 0
        )
        self._send_frame(
            fr.HeadersFrame(stream_id=stream_id, flags=flags,
                            header_block=block)
        )

    def send_data(
        self, stream_id: int, data: bytes, end_stream: bool = False
    ) -> None:
        """Send DATA, queueing whatever flow control will not yet admit.

        Queued bytes drain automatically as WINDOW_UPDATE frames arrive;
        callers never see flow-control errors for well-behaved peers.
        """
        stream = self._streams.get(stream_id)
        if stream is None:
            raise H2StreamError(
                stream_id, ErrorCode.STREAM_CLOSED, "no such stream"
            )
        self._send_queue.append((stream_id, data, end_stream))
        self._drain_send_queue()

    def _drain_send_queue(self) -> None:
        """Emit as much queued DATA as the current windows admit.

        Entries blocked only on their *stream* window are rotated to
        the back so one stalled stream cannot head-of-line-block the
        rest of the connection.
        """
        queue = self._send_queue
        if not queue:
            return
        max_frame = self.remote_settings.max_frame_size
        streams = self._streams
        skipped = 0
        while queue and skipped < len(queue):
            stream_id, data, end_stream = queue[0]
            stream = streams.get(stream_id)
            if stream is None or stream.closed:
                queue.popleft()
                continue
            if data and self.connection_send_window <= 0:
                return  # nothing can move until a connection update
            if data and stream.send_window <= 0:
                queue.rotate(-1)
                skipped += 1
                continue
            budget = min(self.connection_send_window, stream.send_window)
            chunk = data[: min(budget, max_frame)] if data else b""
            rest = data[len(chunk):]
            last = not rest
            stream.send_data(len(chunk), end_stream and last)
            self.connection_send_window -= len(chunk)
            flags = fr.FLAG_END_STREAM if (end_stream and last) else 0
            self._send_frame(
                fr.DataFrame(stream_id=stream_id, flags=flags, data=chunk)
            )
            skipped = 0
            if rest:
                queue[0] = (stream_id, rest, end_stream)
            else:
                queue.popleft()

    def send_origin(self, origins: Sequence[str]) -> None:
        """Advertise an origin set (server, stream 0)."""
        if self.role is not Role.SERVER:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                "only servers send ORIGIN frames (RFC 8336 §2)",
            )
        self.local_origin_set = tuple(origins)
        self._send_frame(fr.OriginFrame(origins=tuple(origins)))

    def send_rst_stream(
        self, stream_id: int, code: ErrorCode = ErrorCode.CANCEL
    ) -> None:
        stream = self._get_or_create_stream(stream_id)
        stream.reset(code)
        self._send_frame(
            fr.RstStreamFrame(stream_id=stream_id, error_code=code)
        )

    def send_goaway(
        self, code: ErrorCode = ErrorCode.NO_ERROR, debug: bytes = b""
    ) -> None:
        self._goaway_sent = True
        self._send_frame(
            fr.GoAwayFrame(
                last_stream_id=self._highest_remote_stream,
                error_code=code,
                debug_data=debug,
            )
        )

    def send_ping(self, opaque: bytes = b"\x00" * 8) -> None:
        self._send_frame(fr.PingFrame(opaque=opaque))

    def send_window_update(self, stream_id: int, increment: int) -> None:
        if stream_id:
            stream = self._streams.get(stream_id)
            if stream is not None:
                stream.replenish_recv_window(increment)
        else:
            self.connection_recv_window += increment
        self._send_frame(
            fr.WindowUpdateFrame(stream_id=stream_id, increment=increment)
        )

    def _send_frame(self, frame: fr.Frame) -> None:
        self.frames_sent.append(frame)
        frame.serialize_into(self._outbound)

    # -- receiving ------------------------------------------------------------

    def receive_data(self, data: bytes) -> List[ev.Event]:
        """Feed wire bytes; returns the events they produced.

        Protocol violations raise :class:`H2ConnectionError` after
        queueing a GOAWAY, mirroring how a real endpoint fails.
        """
        events: List[ev.Event] = []
        buffer = self._recv_buffer
        buffer += data
        if self._preface_remaining:
            take = min(len(buffer), len(self._preface_remaining))
            if buffer[:take] != self._preface_remaining[:take]:
                raise H2ConnectionError(
                    ErrorCode.PROTOCOL_ERROR, "bad connection preface"
                )
            self._preface_remaining = self._preface_remaining[take:]
            del buffer[:take]
        try:
            parsed = fr.consume_frames(buffer)
            for frame in parsed:
                self.frames_received.append(frame)
                events.extend(self._handle_frame(frame))
        except H2ConnectionError as error:
            self.send_goaway(error.code)
            raise
        return events

    def _handle_frame(self, frame: fr.Frame) -> List[ev.Event]:
        if self._expected_continuation is not None and not isinstance(
            frame, fr.ContinuationFrame
        ):
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                "interleaved frame while expecting CONTINUATION",
            )
        handler = _FRAME_DISPATCH.get(frame.__class__)
        if handler is not None:
            return handler(self, frame)
        # Frame subclasses (e.g. from tests) fall back to isinstance
        # resolution against the same handlers.
        for frame_class, isinstance_handler in _FRAME_DISPATCH.items():
            if isinstance(frame, frame_class):
                return isinstance_handler(self, frame)
        raise H2ConnectionError(
            ErrorCode.INTERNAL_ERROR, f"unhandled frame {frame!r}"
        )

    def _on_goaway(self, frame: fr.GoAwayFrame) -> List[ev.Event]:
        self._goaway_received = True
        return [
            ev.GoAwayReceived(
                last_stream_id=frame.last_stream_id,
                error_code=frame.error_code,
                debug_data=frame.debug_data,
            )
        ]

    def _on_priority(self, frame: fr.PriorityFrame) -> List[ev.Event]:
        return []  # parsed, scheduling hints unused

    def _on_push_promise(self, frame: fr.PushPromiseFrame) -> List[ev.Event]:
        if not self.local_settings.enable_push:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "push is disabled"
            )
        return []

    def _on_unknown(self, frame: fr.UnknownFrame) -> List[ev.Event]:
        # RFC 7540 §4.1: ignore and discard.
        return [
            ev.UnknownFrameReceived(
                raw_type=frame.raw_type,
                stream_id=frame.stream_id,
                payload_length=len(frame.raw_payload),
            )
        ]

    def _on_data(self, frame: fr.DataFrame) -> List[ev.Event]:
        if frame.stream_id == 0:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "DATA on stream 0"
            )
        stream = self._streams.get(frame.stream_id)
        if stream is None:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                f"DATA for unknown stream {frame.stream_id}",
            )
        length = frame.flow_controlled_length
        if length > self.connection_recv_window:
            raise H2ConnectionError(
                ErrorCode.FLOW_CONTROL_ERROR,
                "connection receive window overflow",
            )
        self.connection_recv_window -= length
        try:
            stream.receive_data(length, frame.end_stream)
        except H2StreamError as error:
            self.send_rst_stream(frame.stream_id, error.code)
            return [ev.StreamReset(frame.stream_id, error.code, remote=False)]
        events: List[ev.Event] = [
            ev.DataReceived(
                stream_id=frame.stream_id,
                data=frame.data,
                flow_controlled_length=length,
                end_stream=frame.end_stream,
            )
        ]
        # Auto-replenish windows, as typical implementations do.
        if length:
            self.send_window_update(0, length)
            if not stream.closed:
                self.send_window_update(frame.stream_id, length)
        if frame.end_stream:
            events.append(ev.StreamEnded(frame.stream_id))
        return events

    def _on_headers(self, frame: fr.HeadersFrame) -> List[ev.Event]:
        if frame.stream_id == 0:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "HEADERS on stream 0"
            )
        if not frame.end_headers:
            self._expected_continuation = (
                frame.stream_id,
                bytearray(frame.header_block),
                frame.end_stream,
            )
            return []
        return self._complete_headers(
            frame.stream_id, bytes(frame.header_block), frame.end_stream
        )

    def _on_continuation(self, frame: fr.ContinuationFrame) -> List[ev.Event]:
        if self._expected_continuation is None:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "unexpected CONTINUATION"
            )
        stream_id, block, end_stream = self._expected_continuation
        if frame.stream_id != stream_id:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                f"CONTINUATION for stream {frame.stream_id}, "
                f"expected {stream_id}",
            )
        block += frame.header_block
        if not frame.end_headers:
            self._expected_continuation = (stream_id, block, end_stream)
            return []
        self._expected_continuation = None
        return self._complete_headers(stream_id, bytes(block), end_stream)

    def _complete_headers(
        self, stream_id: int, block: bytes, end_stream: bool
    ) -> List[ev.Event]:
        try:
            headers = self._decoder.decode(block)
        except HpackError as error:
            raise H2ConnectionError(
                ErrorCode.COMPRESSION_ERROR, str(error)
            ) from error
        remote_initiated = (stream_id % 2 == 1) == (self.role is Role.SERVER)
        if remote_initiated and stream_id > self._highest_remote_stream:
            self._highest_remote_stream = stream_id
        stream = self._get_or_create_stream(stream_id)
        try:
            stream.receive_headers(end_stream)
        except H2StreamError as error:
            self.send_rst_stream(stream_id, error.code)
            return [ev.StreamReset(stream_id, error.code, remote=False)]
        if self.role is Role.SERVER:
            events: List[ev.Event] = [
                ev.RequestReceived(stream_id, headers, end_stream)
            ]
        else:
            events = [ev.ResponseReceived(stream_id, headers, end_stream)]
        if end_stream:
            events.append(ev.StreamEnded(stream_id))
        return events

    def _on_settings(self, frame: fr.SettingsFrame) -> List[ev.Event]:
        if frame.is_ack:
            return [ev.SettingsAcked()]
        for identifier, value in frame.settings:
            self.remote_settings.apply(identifier, value)
            if identifier == SettingId.HEADER_TABLE_SIZE:
                self._encoder.set_max_table_size(value)
        self._send_frame(fr.SettingsFrame(flags=fr.FLAG_ACK))
        return [ev.SettingsReceived(settings=frame.settings)]

    def _on_rst(self, frame: fr.RstStreamFrame) -> List[ev.Event]:
        if frame.stream_id == 0:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "RST_STREAM on stream 0"
            )
        stream = self._streams.get(frame.stream_id)
        if stream is None:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                f"RST_STREAM for idle stream {frame.stream_id}",
            )
        stream.reset(frame.error_code)
        return [ev.StreamReset(frame.stream_id, frame.error_code)]

    def _on_ping(self, frame: fr.PingFrame) -> List[ev.Event]:
        if frame.is_ack:
            return [ev.PingAcked(opaque=frame.opaque)]
        self._send_frame(
            fr.PingFrame(flags=fr.FLAG_ACK, opaque=frame.opaque)
        )
        return [ev.PingReceived(opaque=frame.opaque)]

    def _on_window_update(self, frame: fr.WindowUpdateFrame) -> List[ev.Event]:
        if frame.increment == 0:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR, "WINDOW_UPDATE with zero increment"
            )
        if frame.stream_id == 0:
            self.connection_send_window += frame.increment
        else:
            stream = self._streams.get(frame.stream_id)
            if stream is not None:
                stream.window_update(frame.increment)
        self._drain_send_queue()
        return [ev.WindowUpdated(frame.stream_id, frame.increment)]

    def send_certificate(self, cert_id: int, chain_data: bytes) -> None:
        """Provide a secondary certificate chain on stream 0 (server),
        fragmenting to the peer's max frame size."""
        if self.role is not Role.SERVER:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                "only servers provide secondary certificates here",
            )
        max_fragment = self.remote_settings.max_frame_size - 1
        chunks = [
            chain_data[i : i + max_fragment]
            for i in range(0, len(chain_data), max_fragment)
        ] or [b""]
        for index, chunk in enumerate(chunks):
            last = index == len(chunks) - 1
            flags = 0 if last else fr.FLAG_TO_BE_CONTINUED
            self._send_frame(
                fr.CertificateFrame(flags=flags, cert_id=cert_id,
                                    fragment=chunk)
            )

    def _on_certificate(self, frame: fr.CertificateFrame) -> List[ev.Event]:
        if not self.secondary_certs_aware:
            # Fail-open, exactly like an unknown frame type.
            return [
                ev.UnknownFrameReceived(
                    raw_type=fr.TYPE_CERTIFICATE,
                    stream_id=frame.stream_id,
                    payload_length=len(frame.payload()),
                )
            ]
        buffer = self._certificate_buffers.setdefault(
            frame.cert_id, bytearray()
        )
        buffer += frame.fragment
        if frame.to_be_continued:
            return []
        chain_data = bytes(self._certificate_buffers.pop(frame.cert_id))
        return [
            ev.SecondaryCertificateReceived(
                cert_id=frame.cert_id, chain_data=chain_data
            )
        ]

    def _on_origin(self, frame: fr.OriginFrame) -> List[ev.Event]:
        if not self.origin_aware:
            # Fail-open: an ORIGIN-unaware endpoint must treat the
            # frame as unknown and ignore it.
            return [
                ev.UnknownFrameReceived(
                    raw_type=fr.TYPE_ORIGIN,
                    stream_id=frame.stream_id,
                    payload_length=len(frame.payload()),
                )
            ]
        if self.role is Role.SERVER:
            # Clients don't send ORIGIN; ignore per RFC 8336 §2.
            return []
        # RFC 8336 §2.3: the frame replaces the origin set.
        self.remote_origin_set = set(frame.origins)
        return [ev.OriginReceived(origins=frame.origins)]


#: Exact-type frame dispatch, ordered like the original isinstance
#: chain so the subclass fallback in ``_handle_frame`` resolves the
#: same way the chain did.
_FRAME_DISPATCH = {
    fr.DataFrame: H2Connection._on_data,
    fr.HeadersFrame: H2Connection._on_headers,
    fr.ContinuationFrame: H2Connection._on_continuation,
    fr.SettingsFrame: H2Connection._on_settings,
    fr.RstStreamFrame: H2Connection._on_rst,
    fr.PingFrame: H2Connection._on_ping,
    fr.GoAwayFrame: H2Connection._on_goaway,
    fr.WindowUpdateFrame: H2Connection._on_window_update,
    fr.OriginFrame: H2Connection._on_origin,
    fr.CertificateFrame: H2Connection._on_certificate,
    fr.PriorityFrame: H2Connection._on_priority,
    fr.PushPromiseFrame: H2Connection._on_push_promise,
    fr.UnknownFrame: H2Connection._on_unknown,
}
