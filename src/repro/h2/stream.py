"""Per-stream state machine (RFC 7540 §5.1)."""

from __future__ import annotations

import enum
from typing import Optional

from repro.h2.errors import ErrorCode, H2StreamError


class StreamState(enum.Enum):
    IDLE = "idle"
    OPEN = "open"
    HALF_CLOSED_LOCAL = "half-closed (local)"
    HALF_CLOSED_REMOTE = "half-closed (remote)"
    CLOSED = "closed"


class Stream:
    """One HTTP/2 stream with its state and flow-control windows."""

    def __init__(
        self,
        stream_id: int,
        send_window: int,
        recv_window: int,
    ) -> None:
        if stream_id <= 0:
            raise ValueError(f"invalid stream id {stream_id}")
        self.stream_id = stream_id
        self.state = StreamState.IDLE
        self.send_window = send_window
        self.recv_window = recv_window
        self.reset_code: Optional[ErrorCode] = None
        self.headers_received = False
        self.trailers_received = False

    # -- sending ------------------------------------------------------------

    def send_headers(self, end_stream: bool) -> None:
        if self.state is StreamState.IDLE:
            self.state = (
                StreamState.HALF_CLOSED_LOCAL if end_stream
                else StreamState.OPEN
            )
        elif self.state in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            # Trailers, or a response on a half-closed-remote stream.
            if end_stream:
                self._close_local()
        else:
            raise H2StreamError(
                self.stream_id, ErrorCode.STREAM_CLOSED,
                f"cannot send HEADERS in state {self.state.value}",
            )

    def send_data(self, nbytes: int, end_stream: bool) -> None:
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            raise H2StreamError(
                self.stream_id, ErrorCode.STREAM_CLOSED,
                f"cannot send DATA in state {self.state.value}",
            )
        if nbytes > self.send_window:
            raise H2StreamError(
                self.stream_id, ErrorCode.FLOW_CONTROL_ERROR,
                f"DATA of {nbytes} bytes exceeds send window "
                f"{self.send_window}",
            )
        self.send_window -= nbytes
        if end_stream:
            self._close_local()

    def _close_local(self) -> None:
        if self.state is StreamState.OPEN:
            self.state = StreamState.HALF_CLOSED_LOCAL
        elif self.state is StreamState.HALF_CLOSED_REMOTE:
            self.state = StreamState.CLOSED

    # -- receiving ------------------------------------------------------------

    def receive_headers(self, end_stream: bool) -> None:
        if self.state is StreamState.IDLE:
            self.state = (
                StreamState.HALF_CLOSED_REMOTE if end_stream
                else StreamState.OPEN
            )
        elif self.state in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL):
            if self.headers_received:
                self.trailers_received = True
            if end_stream:
                self._close_remote()
        else:
            raise H2StreamError(
                self.stream_id, ErrorCode.STREAM_CLOSED,
                f"HEADERS received in state {self.state.value}",
            )
        self.headers_received = True

    def receive_data(self, nbytes: int, end_stream: bool) -> None:
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL):
            raise H2StreamError(
                self.stream_id, ErrorCode.STREAM_CLOSED,
                f"DATA received in state {self.state.value}",
            )
        if nbytes > self.recv_window:
            raise H2StreamError(
                self.stream_id, ErrorCode.FLOW_CONTROL_ERROR,
                f"peer overflowed receive window by "
                f"{nbytes - self.recv_window} bytes",
            )
        self.recv_window -= nbytes
        if end_stream:
            self._close_remote()

    def _close_remote(self) -> None:
        if self.state is StreamState.OPEN:
            self.state = StreamState.HALF_CLOSED_REMOTE
        elif self.state is StreamState.HALF_CLOSED_LOCAL:
            self.state = StreamState.CLOSED

    # -- reset / windows ------------------------------------------------------

    def reset(self, code: ErrorCode) -> None:
        self.state = StreamState.CLOSED
        self.reset_code = code

    def window_update(self, delta: int) -> None:
        if delta <= 0:
            raise H2StreamError(
                self.stream_id, ErrorCode.PROTOCOL_ERROR,
                f"WINDOW_UPDATE increment must be positive, got {delta}",
            )
        self.send_window += delta

    def replenish_recv_window(self, delta: int) -> None:
        self.recv_window += delta

    @property
    def closed(self) -> bool:
        return self.state is StreamState.CLOSED

    @property
    def can_send(self) -> bool:
        return self.state in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE)

    def __repr__(self) -> str:
        return f"Stream({self.stream_id}, {self.state.value})"
