"""Events produced by :class:`~repro.h2.connection.H2Connection`.

Feeding received bytes into a connection yields a list of these; they
are the connection's only output channel besides queued outbound bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.h2.errors import ErrorCode

Header = Tuple[str, str]


@dataclass
class Event:
    """Base class for connection events."""


@dataclass
class RequestReceived(Event):
    stream_id: int
    headers: List[Header]
    end_stream: bool


@dataclass
class ResponseReceived(Event):
    stream_id: int
    headers: List[Header]
    end_stream: bool


@dataclass
class DataReceived(Event):
    stream_id: int
    data: bytes
    flow_controlled_length: int
    end_stream: bool


@dataclass
class StreamEnded(Event):
    stream_id: int


@dataclass
class StreamReset(Event):
    stream_id: int
    error_code: ErrorCode
    remote: bool = True


@dataclass
class SettingsReceived(Event):
    settings: Tuple[Tuple[int, int], ...]


@dataclass
class SettingsAcked(Event):
    pass


@dataclass
class OriginReceived(Event):
    """The server advertised its origin set (RFC 8336)."""

    origins: Tuple[str, ...]


@dataclass
class SecondaryCertificateReceived(Event):
    """A complete secondary certificate chain arrived (the §6.5
    alternative to large SANs)."""

    cert_id: int
    chain_data: bytes


@dataclass
class PingReceived(Event):
    opaque: bytes


@dataclass
class PingAcked(Event):
    opaque: bytes


@dataclass
class GoAwayReceived(Event):
    last_stream_id: int
    error_code: ErrorCode
    debug_data: bytes = b""


@dataclass
class WindowUpdated(Event):
    stream_id: int
    delta: int


@dataclass
class UnknownFrameReceived(Event):
    """A frame of unrecognized type arrived and was ignored (RFC 7540
    §4.1 mandates discarding it -- the behaviour the §6.7 middlebox
    got wrong)."""

    raw_type: int
    stream_id: int
    payload_length: int


@dataclass
class ConnectionTerminated(Event):
    error_code: ErrorCode
    last_stream_id: int = 0
