"""SETTINGS parameters (RFC 7540 §6.5.2)."""

from __future__ import annotations

import enum
from typing import Dict

from repro.h2.errors import ErrorCode, H2ConnectionError


class SettingId(enum.IntEnum):
    HEADER_TABLE_SIZE = 0x1
    ENABLE_PUSH = 0x2
    MAX_CONCURRENT_STREAMS = 0x3
    INITIAL_WINDOW_SIZE = 0x4
    MAX_FRAME_SIZE = 0x5
    MAX_HEADER_LIST_SIZE = 0x6


#: Protocol defaults (RFC 7540 §6.5.2).
DEFAULT_SETTINGS: Dict[int, int] = {
    SettingId.HEADER_TABLE_SIZE: 4096,
    SettingId.ENABLE_PUSH: 1,
    SettingId.MAX_CONCURRENT_STREAMS: 2**31 - 1,  # "unlimited"
    SettingId.INITIAL_WINDOW_SIZE: 65_535,
    SettingId.MAX_FRAME_SIZE: 16_384,
    SettingId.MAX_HEADER_LIST_SIZE: 2**31 - 1,    # "unlimited"
}

MAX_WINDOW_SIZE = 2**31 - 1
MIN_MAX_FRAME_SIZE = 16_384
MAX_MAX_FRAME_SIZE = 2**24 - 1


def validate_setting(identifier: int, value: int) -> None:
    """Raise on values RFC 7540 §6.5.2 forbids; unknown ids are ignored."""
    if identifier == SettingId.ENABLE_PUSH and value not in (0, 1):
        raise H2ConnectionError(
            ErrorCode.PROTOCOL_ERROR, f"ENABLE_PUSH must be 0 or 1, got {value}"
        )
    if identifier == SettingId.INITIAL_WINDOW_SIZE and value > MAX_WINDOW_SIZE:
        raise H2ConnectionError(
            ErrorCode.FLOW_CONTROL_ERROR,
            f"INITIAL_WINDOW_SIZE {value} exceeds {MAX_WINDOW_SIZE}",
        )
    if identifier == SettingId.MAX_FRAME_SIZE and not (
        MIN_MAX_FRAME_SIZE <= value <= MAX_MAX_FRAME_SIZE
    ):
        raise H2ConnectionError(
            ErrorCode.PROTOCOL_ERROR,
            f"MAX_FRAME_SIZE {value} outside "
            f"[{MIN_MAX_FRAME_SIZE}, {MAX_MAX_FRAME_SIZE}]",
        )


class Settings:
    """The settings in force for one direction of a connection.

    The named parameters are plain attributes refreshed on ``apply``;
    they sit on connection hot paths (every DATA frame consults
    ``max_frame_size``), so they must not cost a dict lookup per read.
    """

    __slots__ = (
        "_values",
        "header_table_size",
        "enable_push",
        "max_concurrent_streams",
        "initial_window_size",
        "max_frame_size",
    )

    def __init__(self) -> None:
        self._values: Dict[int, int] = dict(DEFAULT_SETTINGS)
        self._refresh()

    def _refresh(self) -> None:
        values = self._values
        self.header_table_size = values[SettingId.HEADER_TABLE_SIZE]
        self.enable_push = bool(values[SettingId.ENABLE_PUSH])
        self.max_concurrent_streams = values[
            SettingId.MAX_CONCURRENT_STREAMS
        ]
        self.initial_window_size = values[SettingId.INITIAL_WINDOW_SIZE]
        self.max_frame_size = values[SettingId.MAX_FRAME_SIZE]

    def get(self, identifier: int) -> int:
        return self._values.get(identifier, 0)

    def apply(self, identifier: int, value: int) -> None:
        validate_setting(identifier, value)
        if identifier in SettingId._value2member_map_:
            self._values[identifier] = value
            self._refresh()
        # Unknown identifiers MUST be ignored (RFC 7540 §6.5.2).
