"""HTTP/2 error codes and exceptions (RFC 7540 §7)."""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """Error codes carried in RST_STREAM and GOAWAY frames."""

    NO_ERROR = 0x0
    PROTOCOL_ERROR = 0x1
    INTERNAL_ERROR = 0x2
    FLOW_CONTROL_ERROR = 0x3
    SETTINGS_TIMEOUT = 0x4
    STREAM_CLOSED = 0x5
    FRAME_SIZE_ERROR = 0x6
    REFUSED_STREAM = 0x7
    CANCEL = 0x8
    COMPRESSION_ERROR = 0x9
    CONNECT_ERROR = 0xA
    ENHANCE_YOUR_CALM = 0xB
    INADEQUATE_SECURITY = 0xC
    HTTP_1_1_REQUIRED = 0xD


class H2Error(Exception):
    """Base class for HTTP/2 protocol failures."""


class H2ConnectionError(H2Error):
    """A connection-level error; the connection must be torn down with
    a GOAWAY carrying ``code``."""

    def __init__(self, code: ErrorCode, message: str = "") -> None:
        super().__init__(message or code.name)
        self.code = code


class H2StreamError(H2Error):
    """A stream-level error; the stream is reset with RST_STREAM."""

    def __init__(
        self, stream_id: int, code: ErrorCode, message: str = ""
    ) -> None:
        super().__init__(message or f"stream {stream_id}: {code.name}")
        self.stream_id = stream_id
        self.code = code


class HpackError(H2Error):
    """Header-block decoding failed; fatal at the connection level."""
