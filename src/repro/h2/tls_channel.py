"""Simulated TLS channel over a netsim transport.

Provides the handshake sequencing, certificate presentation, and record
framing that sit between TCP (:class:`~repro.netsim.transport.Transport`)
and HTTP/2.  Records use a 5-byte header (type + 32-bit length), like
TLS records:

* ``HELLO`` -- ClientHello carrying the (plaintext, unless ECH) SNI and
  the offered version;
* ``CERT`` -- server certificate chain, JSON-encoded and padded to the
  chain's realistic DER size so that transfer timing matches;
* ``KEYX`` -- TLS 1.2 client key exchange (adds the extra round trip);
* ``FINISHED`` -- handshake completion, either direction;
* ``APPDATA`` -- application bytes (HTTP/2 frames);
* ``ALERT`` -- fatal failure (e.g. certificate rejected).

Everything crosses the wire as real bytes, so an on-path interposer
(the §6.7 middlebox model) can parse records and inspect the HTTP/2
frames inside APPDATA without any side channel.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.netsim.transport import Transport
from repro.telemetry import NULL_TRACER
from repro.tlspki.ca import CertificateAuthority
from repro.tlspki.certificate import Certificate
from repro.tlspki.validation import TrustStore, validate_chain

# Record framing is shared with the QUIC-flavored session and the
# middlebox model; re-exported here for existing importers.
from repro.transport.framing import (  # noqa: F401
    REC_ALERT,
    REC_APPDATA,
    REC_CERT,
    REC_FINISHED,
    REC_HELLO,
    REC_KEYX,
    REC_SHELLO,
    REC_TICKET,
    RECORD_HEADER_LEN,
    consume_records,
    pack_record,
    parse_records,
)


def serialize_chain(chain: Sequence[Certificate]) -> bytes:
    """JSON chain padded to the realistic wire size of the chain."""
    doc = [
        {
            "subject": c.subject,
            "san": list(c.san),
            "issuer": c.issuer,
            "serial": c.serial,
            "not_before": c.not_before,
            "not_after": c.not_after,
            "is_ca": c.is_ca,
            "public_key": c.public_key.hex(),
            "signature": c.signature.hex(),
        }
        for c in chain
    ]
    raw = json.dumps(doc).encode("utf-8")
    target = sum(c.size_bytes for c in chain)
    if len(raw) < target:
        raw += b"\x00" * (target - len(raw))
    return raw


def deserialize_chain(raw: bytes) -> List[Certificate]:
    text = raw.rstrip(b"\x00").decode("utf-8")
    return [
        Certificate(
            subject=doc["subject"],
            san=tuple(doc["san"]),
            issuer=doc["issuer"],
            serial=doc["serial"],
            not_before=doc["not_before"],
            not_after=doc["not_after"],
            is_ca=doc["is_ca"],
            public_key=bytes.fromhex(doc["public_key"]),
            signature=bytes.fromhex(doc["signature"]),
        )
        for doc in json.loads(text)
    ]


@dataclass
class TlsClientConfig:
    """What a client needs to complete and validate a handshake."""

    sni: str
    trust_store: TrustStore
    authorities: Sequence[CertificateAuthority]
    now: Callable[[], float]
    tls13: bool = True
    ech_enabled: bool = False
    alpn: Tuple[str, ...] = ("h2", "http/1.1")
    #: Shared session-ticket cache (sni -> (ticket, cached chain));
    #: presence of a ticket attempts TLS 1.3 resumption, which skips
    #: certificate transmission and validation entirely.
    session_cache: Optional[dict] = None
    #: Span tracer (:mod:`repro.telemetry`); None means no tracing.
    tracer: Optional[object] = None
    #: Decision-audit log (:mod:`repro.audit`); None means no audit.
    audit: Optional[object] = None


class TicketManager:
    """Server-side session tickets (opaque, in-process)."""

    def __init__(self) -> None:
        self._tickets: dict = {}
        self._counter = 0
        self.resumptions = 0

    def issue(self, sni: str) -> str:
        self._counter += 1
        ticket = f"ticket-{self._counter:08d}"
        self._tickets[ticket] = sni
        return ticket

    def validate(self, ticket: str, sni: str) -> bool:
        ok = self._tickets.get(ticket) == sni
        if ok:
            self.resumptions += 1
        return ok


class TlsChannelError(Exception):
    """Handshake failed (validation error or peer alert)."""


class TlsChannel:
    """One endpoint of the simulated TLS session."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.transport.on_data = self._on_bytes
        self.established = False
        self.negotiated_alpn: Optional[str] = None
        self.on_app_data: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_failed: Optional[Callable[[str], None]] = None
        self._buffer = bytearray()
        #: What an on-path observer saw in the clear ("" if ECH).
        self.observed_sni = ""

    def send_app(self, data: bytes) -> None:
        if not self.established:
            raise TlsChannelError("channel not established")
        self.transport.send(pack_record(REC_APPDATA, data))

    def close(self) -> None:
        if not self.transport.closed:
            self.transport.close()

    def _fail(self, reason: str) -> None:
        if not self.transport.closed:
            self.transport.send(
                pack_record(REC_ALERT, reason.encode("utf-8"))
            )
            self.transport.close()
        if self.on_failed is not None:
            self.on_failed(reason)

    def _on_bytes(self, data: bytes) -> None:
        self._buffer += data
        for record_type, payload in consume_records(self._buffer):
            self._on_record(record_type, payload)

    def _on_record(self, record_type: int, payload: bytes) -> None:
        raise NotImplementedError


class TlsClientChannel(TlsChannel):
    """Client side: sends the hello, validates the presented chain."""

    def __init__(self, transport: Transport, config: TlsClientConfig) -> None:
        super().__init__(transport)
        self.config = config
        self.server_chain: List[Certificate] = []
        self._finished_sent = False
        self.resumed = False
        self._offered_ticket: Optional[str] = None
        self.tracer = config.tracer if config.tracer is not None \
            else NULL_TRACER
        self.audit = config.audit if config.audit is not None \
            else NULL_AUDIT
        self._handshake_span = None

    def start(self) -> None:
        if self.tracer.enabled:
            self._handshake_span = self.tracer.begin(
                "tls.handshake", category="tls", sni=self.config.sni,
                tls13=self.config.tls13, ech=self.config.ech_enabled,
            )
        hello = {
            "sni": "" if self.config.ech_enabled else self.config.sni,
            "real_sni": self.config.sni,
            "tls13": self.config.tls13,
            "alpn": list(self.config.alpn),
        }
        cache = self.config.session_cache
        if cache is not None and self.config.tls13:
            cached = cache.get(self.config.sni)
            if cached is not None:
                self._offered_ticket = cached[0]
                hello["ticket"] = cached[0]
        self.observed_sni = hello["sni"]
        self.transport.send(
            pack_record(REC_HELLO, json.dumps(hello).encode("utf-8"))
        )

    def _on_record(self, record_type: int, payload: bytes) -> None:
        if record_type == REC_SHELLO:
            hello = json.loads(payload.decode("utf-8"))
            self.negotiated_alpn = hello.get("alpn")
        elif record_type == REC_CERT:
            self.server_chain = deserialize_chain(payload)
            validate_span = self.tracer.begin(
                "tls.validate", category="tls", sni=self.config.sni,
                chain_len=len(self.server_chain),
            ) if self.tracer.enabled else None
            result = validate_chain(
                self.server_chain,
                self.config.sni,
                self.config.now(),
                self.config.trust_store,
                self.config.authorities,
            )
            if validate_span is not None:
                self.tracer.end(validate_span, ok=result.ok)
            if not result.ok:
                self._fail("; ".join(result.errors))
                return
            if self.config.tls13:
                # Server's Finished rides with the cert flight in 1.3;
                # send ours and we are done.
                self.transport.send(pack_record(REC_FINISHED, b""))
                self._establish()
            else:
                self.transport.send(pack_record(REC_KEYX, b""))
        elif record_type == REC_FINISHED:
            if payload == b"resumed":
                # The server accepted our ticket: restore the cached
                # chain, skip validation, answer with our Finished.
                cache = self.config.session_cache or {}
                cached = cache.get(self.config.sni)
                if cached is not None:
                    self.server_chain = list(cached[1])
                self.resumed = True
                self.transport.send(pack_record(REC_FINISHED, b""))
                self._establish()
            elif not self.config.tls13:
                self._establish()
        elif record_type == REC_TICKET:
            cache = self.config.session_cache
            if cache is not None:
                cache[self.config.sni] = (
                    payload.decode("ascii"), list(self.server_chain),
                )
        elif record_type == REC_ALERT:
            self._end_handshake_span(
                ok=False, error=payload.decode("utf-8", "replace")
            )
            if self.audit.enabled:
                self.audit.record(
                    "tls", ReasonCode.TLS_HANDSHAKE_FAILED,
                    hostname=self.config.sni,
                    error=payload.decode("utf-8", "replace"),
                )
            if self.on_failed is not None:
                self.on_failed(payload.decode("utf-8", "replace"))
            self.close()
        elif record_type == REC_APPDATA:
            if self.on_app_data is not None:
                self.on_app_data(payload)

    def _fail(self, reason: str) -> None:
        self._end_handshake_span(ok=False, error=reason)
        if self.audit.enabled:
            self.audit.record("tls", ReasonCode.TLS_HANDSHAKE_FAILED,
                              hostname=self.config.sni, error=reason)
        super()._fail(reason)

    def _end_handshake_span(self, **attrs) -> None:
        span = self._handshake_span
        if span is not None and not span.finished:
            self.tracer.end(span, **attrs)

    def _establish(self) -> None:
        if self.established:
            return
        self.established = True
        if self.negotiated_alpn is None and self.config.alpn:
            self.negotiated_alpn = self.config.alpn[0]
        self._end_handshake_span(
            ok=True, resumed=self.resumed, alpn=self.negotiated_alpn,
        )
        if self.audit.enabled:
            self.audit.record(
                "tls",
                ReasonCode.TLS_SESSION_RESUMED if self.resumed
                else ReasonCode.TLS_FULL_HANDSHAKE,
                hostname=self.config.sni,
                alpn=self.negotiated_alpn or "",
            )
        if self.on_established is not None:
            self.on_established()


class TlsServerChannel(TlsChannel):
    """Server side: selects a chain by SNI and completes the handshake.

    ``chain_selector`` maps the SNI to the certificate chain to present
    (or ``None`` to refuse with an alert, like a server with no
    matching certificate).
    """

    def __init__(
        self,
        transport: Transport,
        chain_selector: Callable[[str], Optional[Sequence[Certificate]]],
        supported_alpn=("h2",),
        ticket_manager: Optional[TicketManager] = None,
    ) -> None:
        super().__init__(transport)
        self._chain_selector = chain_selector
        #: Either a protocol tuple or a callable ``sni -> tuple`` for
        #: per-hostname protocol support (mixed fleets behind one IP).
        self.supported_alpn = supported_alpn
        self.ticket_manager = ticket_manager
        self.client_sni = ""
        self.client_tls13 = True
        self.negotiated_alpn = None
        self.resumed = False
        #: The client's full ALPN offer, kept so the application layer
        #: can advertise upgrades (Alt-Svc) only to clients that asked.
        self.client_offered_alpn: Tuple[str, ...] = ()

    def _on_record(self, record_type: int, payload: bytes) -> None:
        if record_type == REC_HELLO:
            hello = json.loads(payload.decode("utf-8"))
            self.observed_sni = hello.get("sni", "")
            self.client_sni = hello.get("real_sni") or hello.get("sni", "")
            self.client_tls13 = bool(hello.get("tls13", True))
            offered = hello.get("alpn") or []
            self.client_offered_alpn = tuple(offered)
            supported = self.supported_alpn
            if callable(supported):
                supported = supported(self.client_sni)
            # Server preference order, restricted to the client's offer.
            self.negotiated_alpn = next(
                (p for p in supported if p in offered), None
            )
            if self.negotiated_alpn is None and offered:
                self._fail(
                    f"no common ALPN protocol (offered {offered}, "
                    f"supported {list(self.supported_alpn)})"
                )
                return
            self.transport.send(
                pack_record(
                    REC_SHELLO,
                    json.dumps({"alpn": self.negotiated_alpn}).encode(),
                )
            )
            ticket = hello.get("ticket")
            if (
                ticket
                and self.client_tls13
                and self.ticket_manager is not None
                and self.ticket_manager.validate(ticket, self.client_sni)
            ):
                # PSK resumption: no certificate flight at all.
                self.resumed = True
                self.transport.send(pack_record(REC_FINISHED, b"resumed"))
                return
            chain = self._chain_selector(self.client_sni)
            if chain is None:
                self._fail(f"no certificate for {self.client_sni!r}")
                return
            self.transport.send(
                pack_record(REC_CERT, serialize_chain(chain))
            )
            if self.client_tls13:
                # Finished accompanies the cert flight.
                pass
        elif record_type == REC_KEYX:
            self.transport.send(pack_record(REC_FINISHED, b""))
            self._establish()
        elif record_type == REC_FINISHED:
            # TLS 1.3 client Finished.
            self._establish()
        elif record_type == REC_ALERT:
            if self.on_failed is not None:
                self.on_failed(payload.decode("utf-8", "replace"))
            self.close()
        elif record_type == REC_APPDATA:
            if self.on_app_data is not None:
                self.on_app_data(payload)

    def _establish(self) -> None:
        if self.established:
            return
        self.established = True
        if self.ticket_manager is not None and not self.resumed:
            # Hand the client a ticket for next time (NewSessionTicket).
            self.transport.send(
                pack_record(
                    REC_TICKET,
                    self.ticket_manager.issue(self.client_sni).encode(),
                )
            )
        if self.on_established is not None:
            self.on_established()
