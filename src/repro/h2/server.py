"""HTTP/2 origin server with ORIGIN frame support.

The deployable piece the paper notes did not exist in the wild: an
HTTP/2 server that advertises its origin set via ORIGIN frames (RFC
8336).  A :class:`ServerConfig` describes the certificates, hostnames,
origin sets, and content; :class:`H2Server` binds it to addresses on
the simulated network, terminates TLS, and answers requests -- with
``421 Misdirected Request`` for authorities it is not configured for
(RFC 7540 §9.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.h2 import events as ev
from repro.h2.connection import H2Connection, Role
from repro.h2.errors import ErrorCode, H2ConnectionError
from repro.h2.tls_channel import TlsServerChannel
from repro.netsim.network import Host, Network
from repro.netsim.transport import Transport
from repro.telemetry import RegistryStats
from repro.tlspki.certificate import Certificate

Header = Tuple[str, str]

#: handler(authority, path, headers) -> (status, extra_headers, body)
RequestHandler = Callable[
    [str, str, List[Header]], Tuple[int, List[Header], bytes]
]


def default_handler(
    authority: str, path: str, headers: List[Header]
) -> Tuple[int, List[Header], bytes]:
    body = f"served {path} for {authority}".encode("utf-8")
    return 200, [("content-type", "text/plain")], body


@dataclass
class ServerConfig:
    """Behaviour of one logical origin server / CDN edge."""

    #: Certificate chains available, selected by SNI against the leaf SAN.
    chains: List[List[Certificate]] = field(default_factory=list)
    #: Hostnames this server will answer for (421 otherwise).  Entries
    #: may be wildcards (``*.example.com``).
    serves: List[str] = field(default_factory=list)
    #: Origin set to advertise per connection, keyed by SNI; the
    #: fallback key ``"*"`` applies to any SNI.
    origin_sets: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Master switch for ORIGIN frames (False = pre-deployment server).
    send_origin_frames: bool = True
    #: Protocols offered in ALPN, server-preference order.  A legacy
    #: origin advertises only ``("http/1.1",)``.
    alpn_protocols: Tuple[str, ...] = ("h2", "http/1.1")
    #: Hostnames (exact) whose virtual host is stuck on HTTP/1.1 even
    #: though the fleet supports h2 -- Table 3's 19% legacy share.
    h1_only_hosts: frozenset = frozenset()
    #: Server processing time per request ("wait"/TTFB component).
    think_time_ms: float = 0.0
    #: Issue TLS session tickets so repeat visitors resume (skipping
    #: certificate transmission and validation).
    enable_resumption: bool = True
    #: Advertised SETTINGS_MAX_CONCURRENT_STREAMS (None = protocol
    #: default, effectively unlimited).
    max_concurrent_streams: Optional[int] = None
    #: Capacity model: concurrent TLS connections this edge will carry
    #: (None = unlimited).  Over-capacity h2 clients are refused with
    #: GOAWAY ENHANCE_YOUR_CALM right after the handshake -- the
    #: handshake is still paid (the refusal has to be authenticated),
    #: which is exactly why overload shows up in handshake load.
    max_concurrent_connections: Optional[int] = None
    #: Whether this fleet also terminates h3 (QUIC).  When True the
    #: world binds a datagram listener next to the TCP one and TCP
    #: responses advertise ``Alt-Svc: h3`` -- but only to clients whose
    #: ALPN offer included h3, so h2-only traffic is byte-identical to
    #: a server without the flag.
    supports_h3: bool = False
    #: Secondary certificate chains (draft-ietf-httpbis-http2-
    #: secondary-certs, the §6.5 alternative) advertised per SNI;
    #: ``"*"`` applies to every connection.
    secondary_chains: Dict[str, List[List[Certificate]]] = field(
        default_factory=dict
    )
    handler: RequestHandler = default_handler

    def secondary_chains_for(self, sni: str) -> List[List[Certificate]]:
        if sni in self.secondary_chains:
            return self.secondary_chains[sni]
        return self.secondary_chains.get("*", [])

    def __post_init__(self) -> None:
        self._chain_index_size = -1
        self._chain_exact: Dict[str, List[Certificate]] = {}
        self._chain_wildcard: Dict[str, List[Certificate]] = {}
        self._serves_index_size = -1
        self._serves_exact: set = set()
        self._serves_wildcard: set = set()

    def _reindex_chains(self) -> None:
        self._chain_exact.clear()
        self._chain_wildcard.clear()
        for chain in self.chains:
            if not chain:
                continue
            for name in chain[0].san:
                if name.startswith("*."):
                    self._chain_wildcard.setdefault(name[2:], chain)
                else:
                    self._chain_exact.setdefault(name, chain)
        self._chain_index_size = len(self.chains)

    def chain_for_sni(self, sni: str) -> Optional[List[Certificate]]:
        if self._chain_index_size != len(self.chains):
            self._reindex_chains()
        chain = self._chain_exact.get(sni)
        if chain is not None:
            return chain
        _, _, parent = sni.partition(".")
        return self._chain_wildcard.get(parent)

    def replace_chains(self, chains: List[List[Certificate]]) -> None:
        """Swap the certificate chains mid-run (rotation/expiry faults).

        The SNI index only rebuilds when the chain *count* changes, so
        an in-place swap must force it stale explicitly.
        """
        self.chains = list(chains)
        self._chain_index_size = -1

    def origin_set_for(self, sni: str) -> Tuple[str, ...]:
        if sni in self.origin_sets:
            return self.origin_sets[sni]
        return self.origin_sets.get("*", ())

    def _reindex_serves(self) -> None:
        self._serves_exact = {
            name for name in self.serves if not name.startswith("*.")
        }
        self._serves_wildcard = {
            name[2:] for name in self.serves if name.startswith("*.")
        }
        self._serves_index_size = len(self.serves)

    def is_authoritative_for(self, hostname: str) -> bool:
        if self._serves_index_size != len(self.serves):
            self._reindex_serves()
        if hostname in self._serves_exact:
            return True
        _, _, parent = hostname.partition(".")
        return parent in self._serves_wildcard


class ServerStats(RegistryStats):
    """Counters the passive-measurement pipeline consumes; backed by
    the unified metrics registry."""

    _prefix = "server."
    _counters = (
        "tls_handshakes",
        "connections",
        "requests",
        "misdirected",
        "origin_frames_sent",
        "overload_goaways",
    )


class ServerConnection:
    """Server-side state for one accepted connection."""

    #: Whether responses on this connection may carry Alt-Svc; the
    #: QUIC subclass turns it off (its clients are already on h3).
    alt_svc_eligible = True
    #: Set by :meth:`H2Server._accept` when the edge was already at
    #: its connection-capacity limit; the handshake still completes,
    #: then the connection is refused with GOAWAY.
    refuse_overload = False

    def __init__(
        self, server: "H2Server", transport: Transport
    ) -> None:
        self.server = server

        def alpn_for_sni(sni: str):
            if sni in server.config.h1_only_hosts:
                return ("http/1.1",)
            return server.config.alpn_protocols

        self.channel = TlsServerChannel(
            transport,
            server.config.chain_for_sni,
            supported_alpn=alpn_for_sni,
            ticket_manager=server.ticket_manager,
        )
        self.conn: Optional[H2Connection] = None
        self.h1: Optional["H1ServerProtocol"] = None
        self.sni = ""
        self.protocol = ""
        self.channel.on_established = self._on_tls_established
        self.channel.on_app_data = self._on_app_data
        #: (sni, authority, arrival_index) per request -- raw material
        #: for the coalescing flag bit of paper §5.2.
        self.request_log: List[Tuple[str, str, int]] = []

    def _on_tls_established(self) -> None:
        self.sni = self.channel.client_sni
        self.protocol = self.channel.negotiated_alpn or "h2"
        self.server.stats.tls_handshakes += 1
        self.server.notify_connection_event("handshake", self)
        if self.refuse_overload and self.protocol != "http/1.1":
            # Over capacity: complete the (already paid-for) handshake,
            # then turn the client away with a retryable GOAWAY.  h1
            # fallback connections are served normally -- they cannot
            # express a graceful connection-level refusal.
            self.server.stats.overload_goaways += 1
            self.conn = H2Connection(Role.SERVER)
            self.conn.initiate()
            self.conn.send_goaway(ErrorCode.ENHANCE_YOUR_CALM)
            self._flush()
            self.server.notify_connection_event("overload_goaway", self)
            self.channel.close()
            return
        if self.protocol == "http/1.1":
            self._start_h1()
            return
        origin_set: Sequence[str] = ()
        if self.server.config.send_origin_frames:
            origin_set = self.server.config.origin_set_for(self.sni)
        secondaries = self.server.config.secondary_chains_for(self.sni)
        self.conn = H2Connection(
            Role.SERVER,
            origin_aware=self.server.config.send_origin_frames,
            origin_set=origin_set,
            secondary_certs_aware=bool(secondaries),
        )
        settings = []
        if self.server.config.max_concurrent_streams is not None:
            from repro.h2.settings import SettingId

            settings.append((
                int(SettingId.MAX_CONCURRENT_STREAMS),
                self.server.config.max_concurrent_streams,
            ))
        self.conn.initiate(settings=settings)
        if origin_set:
            self.server.stats.origin_frames_sent += 1
        if secondaries:
            from repro.h2.tls_channel import serialize_chain

            for cert_id, chain in enumerate(secondaries):
                self.conn.send_certificate(
                    cert_id & 0xFF, serialize_chain(chain)
                )
        self._flush()

    def _start_h1(self) -> None:
        from repro.h2.http1 import H1ServerProtocol

        def handler(authority, path, headers):
            arrival_index = len(self.request_log) + 1
            self.request_log.append((self.sni, authority, arrival_index))
            self.server.stats.requests += 1
            self.server.log_request(self, authority, arrival_index,
                                    headers)
            if not self.server.config.is_authoritative_for(authority):
                self.server.stats.misdirected += 1
                return 421, [], b""
            return self.server.config.handler(authority, path, headers)

        self.h1 = H1ServerProtocol(
            self.channel.send_app,
            handler,
            scheduler=self.server.network.loop.schedule,
            think_time_ms=self.server.config.think_time_ms,
        )

    def _on_app_data(self, data: bytes) -> None:
        if self.h1 is not None:
            self.h1.on_app_data(data)
            return
        if self.conn is None:
            return
        try:
            events = self.conn.receive_data(data)
        except H2ConnectionError:
            self._flush()
            self.channel.close()
            return
        for event in events:
            if isinstance(event, ev.RequestReceived):
                self._handle_request(event)
        self._flush()

    def _handle_request(self, event: ev.RequestReceived) -> None:
        headers = dict(event.headers)
        authority = headers.get(":authority", "")
        path = headers.get(":path", "/")
        arrival_index = len(self.request_log) + 1
        self.request_log.append((self.sni, authority, arrival_index))
        self.server.stats.requests += 1
        self.server.log_request(self, authority, arrival_index,
                                event.headers)

        if not self.server.config.is_authoritative_for(authority):
            # RFC 7540 §9.1.2: not configured for this authority.
            self.server.stats.misdirected += 1
            self._respond(event.stream_id, 421, [], b"")
            return
        status, extra, body = self.server.config.handler(
            authority, path, event.headers
        )
        think = self.server.config.think_time_ms
        if think > 0:
            self.server.network.loop.schedule(
                think,
                lambda: self._respond_and_flush(
                    event.stream_id, status, extra, body
                ),
            )
        else:
            self._respond(event.stream_id, status, extra, body)

    def _respond_and_flush(
        self,
        stream_id: int,
        status: int,
        extra_headers: List[Header],
        body: bytes,
    ) -> None:
        if self.channel.transport.closed:
            return
        self._respond(stream_id, status, extra_headers, body)
        self._flush()

    def _respond(
        self,
        stream_id: int,
        status: int,
        extra_headers: List[Header],
        body: bytes,
    ) -> None:
        assert self.conn is not None
        response_headers = [(":status", str(status))]
        response_headers.extend(extra_headers)
        if (
            self.alt_svc_eligible
            and self.server.config.supports_h3
            and "h3" in getattr(self.channel, "client_offered_alpn", ())
        ):
            # RFC 7838: advertise the h3 endpoint, but only to clients
            # that offered h3 -- anyone else gets the exact bytes a
            # non-h3 server would send.
            response_headers.append(("alt-svc", 'h3=":443"; ma=86400'))
        response_headers.append(("content-length", str(len(body))))
        if body:
            self.conn.send_headers(stream_id, response_headers)
            self.conn.send_data(stream_id, body, end_stream=True)
        else:
            self.conn.send_headers(
                stream_id, response_headers, end_stream=True
            )

    def _flush(self) -> None:
        if self.conn is None or not self.channel.established:
            return
        data = self.conn.data_to_send()
        if data and not self.channel.transport.closed:
            self.channel.send_app(data)


class H2Server:
    """Binds a :class:`ServerConfig` to listening addresses."""

    def __init__(
        self,
        network: Network,
        host: Host,
        config: ServerConfig,
        retain_connections: bool = True,
    ) -> None:
        self.network = network
        self.host = host
        self.config = config
        self.stats = ServerStats()
        from repro.h2.tls_channel import TicketManager

        self.ticket_manager = (
            TicketManager() if config.enable_resumption else None
        )
        #: QUIC session tickets (cross-hostname validity); created on
        #: the first :meth:`listen_quic` so h2-only servers carry no
        #: QUIC state at all.
        self.quic_ticket_manager = None
        #: When False, connection objects are not kept after accept --
        #: large crawls would otherwise accumulate them unboundedly.
        self.retain_connections = retain_connections
        self.connections: List[ServerConnection] = []
        #: Optional observer:
        #: (connection, authority, arrival_index, request_headers).
        self.request_observer: Optional[
            Callable[[ServerConnection, str, int, List[Header]], None]
        ] = None
        #: Optional connection-lifecycle observer: (event, connection)
        #: with event one of ``accepted`` / ``handshake`` /
        #: ``overload_goaway`` / ``closed``.  Edge load accounting
        #: (``repro.traffic``) hangs off this hook.
        self.connection_observer: Optional[
            Callable[[str, ServerConnection], None]
        ] = None
        #: Live TLS connection count and its high-water mark; the
        #: capacity model compares against the former.
        self.active_connections = 0
        self.peak_active_connections = 0

    def listen(self, ip: str, port: int = 443) -> None:
        self.network.listen(self.host, ip, port, self._accept)

    def listen_all(self, port: int = 443) -> None:
        for ip in self.host.addresses:
            self.listen(ip, port)

    def listen_plain(self, ip: str, port: int = 80) -> None:
        """Serve cleartext HTTP/1.1 (no TLS) -- the 1.47% insecure
        requests of Table 3 need somewhere to go."""
        self.network.listen(self.host, ip, port, self._accept_plain)

    def listen_plain_all(self, port: int = 80) -> None:
        for ip in self.host.addresses:
            self.listen_plain(ip, port)

    def listen_quic(self, ip: str, port: int = 443) -> None:
        """Serve h3 on the datagram side of ``port``."""
        if self.quic_ticket_manager is None and \
                self.config.enable_resumption:
            from repro.transport.quicsim import QuicTicketManager

            self.quic_ticket_manager = QuicTicketManager()
        self.network.listen_datagram(self.host, ip, port,
                                     self._accept_quic)

    def listen_quic_all(self, port: int = 443) -> None:
        for ip in self.host.addresses:
            self.listen_quic(ip, port)

    def _accept(self, transport: Transport) -> None:
        self.stats.connections += 1
        connection = ServerConnection(self, transport)
        limit = self.config.max_concurrent_connections
        connection.refuse_overload = (
            limit is not None and self.active_connections >= limit
        )
        self.active_connections += 1
        if self.active_connections > self.peak_active_connections:
            self.peak_active_connections = self.active_connections
        transport.on_close = (
            lambda: self._connection_closed(connection)
        )
        if self.retain_connections:
            self.connections.append(connection)
        self.notify_connection_event("accepted", connection)

    def _connection_closed(self, connection: ServerConnection) -> None:
        self.active_connections -= 1
        self.notify_connection_event("closed", connection)

    def notify_connection_event(
        self, event: str, connection: ServerConnection
    ) -> None:
        if self.connection_observer is not None:
            self.connection_observer(event, connection)

    def _accept_quic(self, transport: Transport) -> None:
        from repro.transport.quicsim import QuicServerConnection

        self.stats.connections += 1
        connection = QuicServerConnection(self, transport)
        if self.retain_connections:
            self.connections.append(connection)

    def _accept_plain(self, transport: Transport) -> None:
        from repro.h2.http1 import H1ServerProtocol

        self.stats.connections += 1

        def handler(authority, path, headers):
            self.stats.requests += 1
            if not self.config.is_authoritative_for(authority):
                self.stats.misdirected += 1
                return 421, [], b""
            return self.config.handler(authority, path, headers)

        protocol = H1ServerProtocol(
            transport.send,
            handler,
            scheduler=self.network.loop.schedule,
            think_time_ms=self.config.think_time_ms,
        )
        transport.on_data = protocol.on_app_data

    def log_request(
        self,
        connection: ServerConnection,
        authority: str,
        arrival_index: int,
        headers: Optional[List[Header]] = None,
    ) -> None:
        if self.request_observer is not None:
            self.request_observer(connection, authority, arrival_index,
                                  headers or [])
